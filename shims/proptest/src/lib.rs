//! Offline drop-in replacement for the subset of [`proptest`] this
//! workspace uses.
//!
//! The build container cannot reach crates.io, so the real proptest
//! cannot be fetched. This shim keeps the property suites
//! source-compatible: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, range and tuple strategies,
//! `prop::collection::vec`, `any::<T>()`, and `Strategy::prop_map`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs'
//!   case number; reproduce by rerunning the (deterministic) test.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test function's name (FNV-1a), so failures reproduce exactly
//!   without a persistence file.
//!
//! [`proptest`]: https://docs.rs/proptest

// The macro-generated test bodies need an RNG without requiring the
// caller to depend on `rand` itself.
#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform generated values (`proptest`'s `prop_map`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Constant strategy (`proptest`'s `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies.

    use super::strategy::Strategy;
    use rand::distributions::Standard;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the whole domain.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl<T: Standard> Arbitrary for T {
        fn arbitrary(rng: &mut SmallRng) -> T {
            rng.gen::<T>()
        }
    }

    /// Strategy over the whole domain of `T`.
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Acceptable size arguments for [`vec()`]: a fixed length or a
    /// half-open range of lengths.
    pub trait IntoSizeRange {
        /// `(lo, hi)` half-open bounds on the generated length.
        fn size_bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn size_bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.size_bounds();
        assert!(lo < hi, "collection::vec: empty size range");
        VecStrategy { element, lo, hi }
    }
}

pub mod test_runner {
    //! Configuration and per-case error plumbing for [`crate::proptest!`].

    /// Subset of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate's default.
            Self { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject(String),
        /// `prop_assert!`-style failure: the property is violated.
        Fail(String),
    }

    /// Per-case outcome used by the generated test body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// FNV-1a of the test name — the deterministic RNG seed.
    pub fn seed_of(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Define property tests: each `fn` runs `config.cases` accepted cases
/// with inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = <$crate::__rand::rngs::SmallRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_of(stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while accepted < config.cases {
                case += 1;
                $(
                    let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )*
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(16) + 256,
                            "{}: too many prop_assume! rejections",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!("{} failed at case #{case}: {msg}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property body; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Everything call sites need in scope (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the real prelude's `prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_generate_in_bounds(
            x in -2.0f64..3.0,
            k in 1usize..7,
            v in prop::collection::vec(0.0f64..1.0, 2..9),
        ) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..7).contains(&k));
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|p| (0.0..1.0).contains(p)));
        }

        #[test]
        fn tuples_and_any(
            points in prop::collection::vec((-1.0f64..1.0, any::<bool>()), 3..6),
            seed in any::<u64>(),
        ) {
            prop_assert!(points.len() >= 3);
            let _ = seed;
            for (x, _flag) in &points {
                prop_assert!((-1.0..1.0).contains(x));
            }
        }

        #[test]
        fn prop_map_transforms(
            s in (0usize..5).prop_map(|v| v * 10),
        ) {
            prop_assert!(s % 10 == 0 && s < 50);
        }

        #[test]
        fn assume_rejects_without_failing(
            n in 0usize..10,
        ) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        use crate::test_runner::seed_of;
        assert_ne!(seed_of("a"), seed_of("b"));
        assert_eq!(seed_of("a"), seed_of("a"));
    }
}
