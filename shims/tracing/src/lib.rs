//! Offline drop-in replacement for the subset of [`tracing`] this
//! workspace uses: named spans whose enter/exit (with measured
//! wall-clock) is reported to a `Collect` sink.
//!
//! The build container cannot reach crates.io, so the real tracing stack
//! cannot be fetched. Rather than a global `Subscriber` dispatcher, the
//! shim binds each span to an explicit collector handle
//! ([`Span::with_collector`]): the workspace runs many pipelines
//! concurrently inside one test process, so per-handle routing is the
//! only way span data ends up attached to the run that produced it. A
//! span without a collector ([`Span::none`]) is a true no-op — it never
//! reads the clock.
//!
//! `chef-obs` layers the metrics registry and JSON export on top; this
//! crate is deliberately nothing but the span/collector contract.
//!
//! [`tracing`]: https://docs.rs/tracing

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::{Duration, Instant};

/// A sink for span lifecycle events (the shim's analogue of a tracing
/// `Subscriber`).
///
/// Implementations must be thread-safe: spans from concurrently running
/// pipelines may report to the same collector.
pub trait Collect: Send + Sync {
    /// A span with this name was entered.
    fn enter(&self, span: &'static str);

    /// A span with this name exited after running for `elapsed`.
    fn exit(&self, span: &'static str, elapsed: Duration);
}

/// A named span, bound to the collector that will receive its timings.
///
/// Mirrors `tracing::Span`: create it, [`Span::entered`] it for an RAII
/// guard, and the guard's drop reports the measured wall-clock to the
/// collector.
#[derive(Clone)]
pub struct Span {
    name: &'static str,
    collector: Option<Arc<dyn Collect>>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("name", &self.name)
            .field("collected", &self.collector.is_some())
            .finish()
    }
}

impl Span {
    /// A disabled span: entering it is free and reports nothing.
    pub fn none() -> Self {
        Self {
            name: "",
            collector: None,
        }
    }

    /// A span reporting to an explicit collector.
    pub fn with_collector(name: &'static str, collector: Arc<dyn Collect>) -> Self {
        Self {
            name,
            collector: Some(collector),
        }
    }

    /// The span's name (`""` for [`Span::none`]).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether this span is disabled (no collector attached).
    pub fn is_none(&self) -> bool {
        self.collector.is_none()
    }

    /// Enter the span, consuming it into an owned RAII guard (the shape
    /// of `tracing::Span::entered`). Disabled spans skip the clock read.
    pub fn entered(self) -> EnteredSpan {
        let start = self.collector.as_ref().map(|c| {
            c.enter(self.name);
            Instant::now()
        });
        EnteredSpan { span: self, start }
    }
}

/// RAII guard of an entered [`Span`]; dropping it reports the span's
/// wall-clock duration to the collector.
#[derive(Debug)]
pub struct EnteredSpan {
    span: Span,
    start: Option<Instant>,
}

impl EnteredSpan {
    /// Exit the span now (equivalent to dropping the guard).
    pub fn exit(self) {}
}

impl Drop for EnteredSpan {
    fn drop(&mut self) {
        if let (Some(collector), Some(start)) = (self.span.collector.as_ref(), self.start) {
            collector.exit(self.span.name, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Log {
        events: Mutex<Vec<(String, &'static str)>>,
    }

    impl Collect for Log {
        fn enter(&self, span: &'static str) {
            self.events.lock().unwrap().push(("enter".into(), span));
        }
        fn exit(&self, span: &'static str, _elapsed: Duration) {
            self.events.lock().unwrap().push(("exit".into(), span));
        }
    }

    #[test]
    fn entered_span_reports_enter_then_exit() {
        let log = Arc::new(Log::default());
        {
            let _guard = Span::with_collector("phase", log.clone()).entered();
            assert_eq!(log.events.lock().unwrap().len(), 1);
        }
        let events = log.events.lock().unwrap();
        assert_eq!(
            *events,
            vec![("enter".into(), "phase"), ("exit".into(), "phase")]
        );
    }

    #[test]
    fn none_span_is_inert() {
        let span = Span::none();
        assert!(span.is_none());
        span.entered().exit(); // must not panic, reports nowhere
    }

    #[test]
    fn explicit_exit_equals_drop() {
        let log = Arc::new(Log::default());
        Span::with_collector("s", log.clone()).entered().exit();
        assert_eq!(log.events.lock().unwrap().len(), 2);
    }
}
