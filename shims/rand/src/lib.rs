//! Offline drop-in replacement for the subset of the [`rand`] crate API
//! this workspace uses.
//!
//! The build container has no network access to crates.io, so the real
//! `rand` cannot be fetched. This shim keeps the workspace's call sites
//! source-compatible: `SmallRng::seed_from_u64`, `Rng::gen_range` over
//! float/integer ranges, `Rng::gen_bool`, and `SliceRandom::shuffle`.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — the
//! same construction the real `rand::rngs::SmallRng` uses on 64-bit
//! targets. Streams are deterministic per seed but are *not* guaranteed
//! to be bit-identical to the real crate's; all in-repo consumers treat
//! seeded randomness statistically, never as golden data.
//!
//! [`rand`]: https://docs.rs/rand

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` constructor is needed
/// in this workspace).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(-1.0..1.0)` or
    /// `rng.gen_range(0..n)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample of a whole type (`bool`, ints, unit-interval floats).
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a double in `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    //! Concrete generators (only `SmallRng`).

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same
    /// algorithm the real crate's 64-bit `SmallRng` wraps.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors:
            // guarantees a non-zero state for every seed.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Distribution traits backing [`super::Rng::gen`] and
    //! [`super::Rng::gen_range`].

    use super::RngCore;

    /// Types samplable uniformly over their "natural" domain
    /// (mirrors `rand::distributions::Standard`).
    pub trait Standard: Sized {
        /// Draw one sample.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            super::unit_f64(rng.next_u64())
        }
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub mod uniform {
        //! Range sampling (mirrors `rand::distributions::uniform`).

        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types uniformly samplable from half-open or inclusive ranges.
        ///
        /// Mirroring the real crate, [`SampleRange`] is a **single
        /// blanket impl** over `Range<T>` / `RangeInclusive<T>` for
        /// `T: SampleUniform` — that shape is what lets type inference
        /// pin `T` from surrounding arithmetic in calls like
        /// `quality + rng.gen_range(-0.15..0.15)`.
        pub trait SampleUniform: Sized + PartialOrd {
            /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when
            /// `inclusive`).
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        macro_rules! impl_sample_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_in<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                    ) -> Self {
                        // Open/closed upper end is indistinguishable for
                        // floats at 53-bit resolution.
                        let u = super::super::unit_f64(rng.next_u64()) as $t;
                        lo + u * (hi - lo)
                    }
                }
            )*};
        }
        impl_sample_uniform_float!(f32, f64);

        /// Unbiased integer sampling in `[0, span)` by rejection
        /// (Lemire-style widening multiply would be faster; clarity wins
        /// here — span is tiny in every in-repo call site).
        #[inline]
        fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let v = rng.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_in<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let span = (hi as i128 - lo as i128) as u64;
                        if inclusive {
                            if span == u64::MAX {
                                return rng.next_u64() as $t;
                            }
                            ((lo as i128) + below(rng, span + 1) as i128) as $t
                        } else {
                            ((lo as i128) + below(rng, span) as i128) as $t
                        }
                    }
                }
            )*};
        }
        impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draw one sample from the range.
            ///
            /// # Panics
            /// Panics on an empty range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "gen_range: empty range");
                T::sample_in(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (a, b) = self.into_inner();
                assert!(a <= b, "gen_range: empty range");
                T::sample_in(rng, a, b, true)
            }
        }
    }
}

pub mod seq {
    //! Sequence helpers (mirrors `rand::seq::SliceRandom`).

    use super::Rng;

    /// Shuffle/choose extensions on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

// Re-exports matching the real crate's layout.
pub use distributions::uniform::{SampleRange, SampleUniform};

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn float_ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < -1.9 && hi > 2.9, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
