//! Offline drop-in replacement for the subset of [`memmap2`] this
//! workspace uses: read-only shared file mappings with residency hints.
//!
//! The build container cannot reach crates.io, so the real memmap2
//! cannot be fetched. This shim declares the three syscall wrappers it
//! needs (`mmap`, `munmap`, `madvise`) as raw `extern "C"` bindings to
//! the platform libc — no `libc` crate — and exposes:
//!
//! * [`Mmap::map`] — map a whole file read-only (`MAP_SHARED`, so the
//!   kernel's page cache backs the mapping and clean pages can be
//!   reclaimed without touching swap),
//! * [`Mmap::advise_willneed`] / [`Mmap::advise_dontneed`] — the two
//!   `madvise` hints the out-of-core store uses for prefetch windows and
//!   post-scan residency release,
//! * [`read_exact_at`] — a positional-read (`pread`) fallback built on
//!   `std::os::unix::fs::FileExt`, for callers that must work when
//!   `mmap` itself fails (exotic filesystems, locked-down sandboxes).
//!
//! An empty file maps to an empty slice without calling `mmap` (a
//! zero-length mapping is `EINVAL` on Linux).
//!
//! [`memmap2`]: https://docs.rs/memmap2

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::os::unix::fs::FileExt;
use std::os::unix::io::AsRawFd;

// Raw libc bindings — the process already links libc through std, so
// declaring the three symbols we need is enough.
extern "C" {
    fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> i32;
    fn madvise(addr: *mut u8, len: usize, advice: i32) -> i32;
}

const PROT_READ: i32 = 0x1;
const MAP_SHARED: i32 = 0x01;
const MAP_FAILED: *mut u8 = usize::MAX as *mut u8;
const MADV_WILLNEED: i32 = 3;
const MADV_DONTNEED: i32 = 4;

/// A read-only shared mapping of an entire file.
///
/// Dereferences to `&[u8]`; the mapping is unmapped on drop. The
/// mapping is page-aligned (the kernel guarantees this), so callers may
/// reinterpret aligned sub-ranges as `&[f64]` after checking alignment.
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// The mapping is read-only and never moves; sharing it across threads
// is exactly as safe as sharing a `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// Returns the underlying `mmap(2)` failure as an [`io::Error`];
    /// callers fall back to positional reads ([`read_exact_at`]).
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: requesting a fresh read-only shared mapping of a file
        // we hold open; the kernel picks the address. Failure is
        // reported via MAP_FAILED and surfaced as an io::Error.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// Hint that `range` of the mapping will be read soon (readahead).
    /// Best-effort: errors are ignored, as a failed hint only costs
    /// performance.
    pub fn advise_willneed(&self, offset: usize, len: usize) {
        self.advise(offset, len, MADV_WILLNEED);
    }

    /// Hint that `range` of the mapping will not be needed again soon,
    /// releasing its resident pages (for a clean file-backed shared
    /// mapping this drops the pages without any writeback). Best-effort.
    pub fn advise_dontneed(&self, offset: usize, len: usize) {
        self.advise(offset, len, MADV_DONTNEED);
    }

    /// Borrow the byte sub-range `[offset, offset + len)` of the
    /// mapping, clamped to the mapping's end. Block-granular integrity
    /// verification reads checksum windows through this instead of
    /// slicing the whole `Deref` view, so a caller's range arithmetic
    /// can never index past the file. An offset at or past the end
    /// yields an empty slice.
    pub fn byte_range(&self, offset: usize, len: usize) -> &[u8] {
        let all: &[u8] = self;
        if offset >= all.len() {
            return &[];
        }
        &all[offset..(offset + len).min(all.len())]
    }

    fn advise(&self, offset: usize, len: usize, advice: i32) {
        if self.ptr.is_null() || offset >= self.len {
            return;
        }
        let len = len.min(self.len - offset);
        // madvise wants a page-aligned address: round the start down.
        let page = page_size();
        let aligned_off = offset & !(page - 1);
        let len = len + (offset - aligned_off);
        // SAFETY: [aligned_off, aligned_off+len) is within our mapping
        // and page-aligned at the start; madvise does not invalidate
        // the mapping for a read-only file-backed range.
        unsafe {
            madvise(self.ptr.add(aligned_off), len, advice);
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: unmapping exactly what Self::map mapped.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        if self.ptr.is_null() {
            &[]
        } else {
            // SAFETY: ptr/len describe a live read-only mapping.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// The system page size (used to align `madvise` ranges). Falls back to
/// 4096 if the `_SC_PAGESIZE` probe is unavailable.
pub fn page_size() -> usize {
    extern "C" {
        fn sysconf(name: i32) -> i64;
    }
    const SC_PAGESIZE: i32 = 30; // Linux value; glibc and musl agree.
                                 // SAFETY: sysconf is async-signal-safe and takes no pointers.
    let v = unsafe { sysconf(SC_PAGESIZE) };
    if v > 0 {
        v as usize
    } else {
        4096
    }
}

/// Positional-read fallback: fill `buf` from `file` at byte `offset`
/// without moving the file cursor (`pread`). Retries short reads; EOF
/// before `buf` is full is an [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    file.read_exact_at(buf, offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("memmap-shim-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp("basic", b"hello mapping");
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(&map[..], b"hello mapping");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp("empty", b"");
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_is_page_aligned_for_f64() {
        let data: Vec<u8> = (0..64u64).flat_map(|x| (x as f64).to_le_bytes()).collect();
        let path = tmp("aligned", &data);
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(map.as_ptr() as usize % std::mem::align_of::<f64>(), 0);
        // SAFETY: alignment just checked; length is a multiple of 8.
        let floats =
            unsafe { std::slice::from_raw_parts(map.as_ptr() as *const f64, map.len() / 8) };
        assert_eq!(floats[63], 63.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn advise_calls_are_safe_no_ops_on_any_range() {
        let path = tmp("advise", &[7u8; 10_000]);
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        map.advise_willneed(0, 10_000);
        map.advise_dontneed(4096, 4096);
        map.advise_dontneed(9_999, 50); // clamped past the end
        map.advise_willneed(20_000, 1); // out of range: ignored
        assert_eq!(map[0], 7);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn byte_range_is_clamped_to_the_mapping() {
        let path = tmp("range", b"abcdefghij");
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(map.byte_range(2, 3), b"cde");
        assert_eq!(map.byte_range(8, 100), b"ij"); // clamped length
        assert_eq!(map.byte_range(10, 1), b""); // at the end
        assert_eq!(map.byte_range(500, 4), b""); // past the end
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pread_fallback_reads_at_offset() {
        let path = tmp("pread", b"0123456789");
        let file = File::open(&path).unwrap();
        let mut buf = [0u8; 4];
        read_exact_at(&file, &mut buf, 3).unwrap();
        assert_eq!(&buf, b"3456");
        assert!(read_exact_at(&file, &mut buf, 8).is_err(), "EOF detected");
        std::fs::remove_file(&path).unwrap();
    }
}
