//! Offline drop-in replacement for the subset of [`rayon`] this
//! workspace uses, implemented on `std::thread::scope`.
//!
//! The build container cannot reach crates.io, so the real rayon cannot
//! be fetched; this shim keeps the same call-site API (`par_iter`,
//! `into_par_iter`, `map`, `map_init`, `fold`+`reduce`, `for_each`,
//! `sum`, `collect`) while making one *stronger* guarantee the selector
//! hot path relies on:
//!
//! **Deterministic chunking.** An input of length `n` is always split
//! into `min(n, 64)` contiguous chunks whose boundaries depend only on
//! `n` — never on the worker count. Chunk results are combined in chunk
//! order. Consequently `fold(..).reduce(..)` produces the *same*
//! floating-point reduction order no matter how many threads run (or
//! whether `RAYON_NUM_THREADS=1`), so parallel gradient sums are
//! reproducible run-to-run and machine-to-machine.
//!
//! Scheduling is work-sharing rather than work-stealing: workers pull
//! the next unclaimed chunk off an atomic counter, which load-balances
//! uneven chunks to within one chunk's granularity. Threads are scoped
//! per top-level call; callers on hot inner loops should gate small
//! inputs (see `chef-model`'s `PAR_GRAIN`).
//!
//! [`rayon`]: https://docs.rs/rayon

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Upper bound on the number of chunks an input is split into. 64 keeps
/// per-call bookkeeping trivial while load-balancing up to 64 workers;
/// chunk boundaries depend only on input length so reductions are
/// deterministic across thread counts.
const MAX_CHUNKS: usize = 64;

/// Number of worker threads: `RAYON_NUM_THREADS` if set and positive,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Deterministic chunk boundaries for an input of length `len`:
/// `min(len, MAX_CHUNKS)` contiguous ranges differing in size by at most
/// one element.
fn chunk_bounds(len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = len.min(MAX_CHUNKS);
    let base = len / chunks;
    let extra = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let size = base + usize::from(c < extra);
        bounds.push(start..start + size);
        start += size;
    }
    bounds
}

/// Run `work` over every chunk of `0..len` and return the per-chunk
/// results **in chunk order**. Runs inline when only one worker is
/// available or there is only one chunk.
fn run_chunks<R, F>(len: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let bounds = chunk_bounds(len);
    let workers = current_num_threads().min(bounds.len());
    if workers <= 1 {
        return bounds.into_iter().map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = bounds.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                let Some(range) = bounds.get(c) else { break };
                let out = work(range.clone());
                *slots[c].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap()
                .expect("worker completed every claimed chunk")
        })
        .collect()
}

/// A parallel pipeline over an indexable source: `len` items produced by
/// `f(i)`. `map` composes producers; terminal operations fan the index
/// space out over the thread pool.
pub struct Par<T, F> {
    len: usize,
    f: F,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T, F> Par<T, F>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    fn new(len: usize, f: F) -> Self {
        Self {
            len,
            f,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of items the pipeline will produce.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Transform each item (lazy; composes with the producer).
    pub fn map<U, G>(self, g: G) -> Par<U, impl Fn(usize) -> U + Sync>
    where
        U: Send,
        G: Fn(T) -> U + Sync,
    {
        let f = self.f;
        Par::new(self.len, move |i| g(f(i)))
    }

    /// Transform each item with per-worker-chunk state created by `init`
    /// (rayon's `map_init`): `init` runs once per chunk, `g` reuses the
    /// state across that chunk's items. Terminal — returns the mapped
    /// items in input order.
    pub fn map_init<S, U, INIT, G>(self, init: INIT, g: G) -> ParCollected<U>
    where
        U: Send,
        INIT: Fn() -> S + Sync,
        G: Fn(&mut S, T) -> U + Sync,
    {
        let f = &self.f;
        let parts = run_chunks(self.len, move |range| {
            let mut state = init();
            range.map(|i| g(&mut state, f(i))).collect::<Vec<U>>()
        });
        ParCollected {
            items: parts.into_iter().flatten().collect(),
        }
    }

    /// Evaluate the pipeline into a collection (order-preserving).
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        let f = &self.f;
        let parts = run_chunks(self.len, move |range| range.map(f).collect::<Vec<T>>());
        C::from(parts.into_iter().flatten().collect())
    }

    /// Run `g` on every item (no ordering guarantee between chunks).
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(T) + Sync,
    {
        let f = &self.f;
        run_chunks(self.len, move |range| range.for_each(|i| g(f(i))));
    }

    /// Chunk-local fold (rayon's `fold`): `identity` seeds one
    /// accumulator per chunk, `fold_op` absorbs that chunk's items in
    /// order. Combine the per-chunk accumulators with
    /// [`ParFolded::reduce`].
    pub fn fold<Acc, ID, FO>(self, identity: ID, fold_op: FO) -> ParFolded<Acc>
    where
        Acc: Send,
        ID: Fn() -> Acc + Sync,
        FO: Fn(Acc, T) -> Acc + Sync,
    {
        let f = &self.f;
        let accs = run_chunks(self.len, move |range| {
            range.fold(identity(), |acc, i| fold_op(acc, f(i)))
        });
        ParFolded { accs }
    }

    /// Parallel reduction: identity-seeded per chunk, chunk results
    /// combined in chunk order (deterministic).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        self.fold(&identity, &op)
            .accs
            .into_iter()
            .fold(identity(), op)
    }

    /// Parallel sum (chunk partial sums added in chunk order).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        let f = &self.f;
        run_chunks(self.len, move |range| range.map(f).sum::<S>())
            .into_iter()
            .sum()
    }
}

/// Items already evaluated by a terminal `map_init`; only `collect` (and
/// friends) remain.
pub struct ParCollected<T> {
    items: Vec<T>,
}

impl<T> ParCollected<T> {
    /// The evaluated items, in input order.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// Per-chunk accumulators produced by [`Par::fold`], combined in chunk
/// order by [`Self::reduce`].
pub struct ParFolded<Acc> {
    accs: Vec<Acc>,
}

impl<Acc> ParFolded<Acc> {
    /// Sequentially combine the chunk accumulators (deterministic order).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> Acc
    where
        ID: Fn() -> Acc,
        OP: Fn(Acc, Acc) -> Acc,
    {
        self.accs.into_iter().fold(identity(), op)
    }
}

/// `.par_iter()` on slices (and through deref, `Vec`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Pipeline type.
    type Iter;

    /// Parallel iterator over borrowed items.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = Par<&'a T, Box<dyn Fn(usize) -> &'a T + Sync + 'a>>;

    fn par_iter(&'a self) -> Self::Iter {
        Par::new(self.len(), Box::new(move |i| &self[i]))
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = Par<&'a T, Box<dyn Fn(usize) -> &'a T + Sync + 'a>>;

    fn par_iter(&'a self) -> Self::Iter {
        self.as_slice().par_iter()
    }
}

/// `.into_par_iter()` on owned/range sources.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Pipeline type.
    type Iter;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = Par<usize, Box<dyn Fn(usize) -> usize + Sync>>;

    fn into_par_iter(self) -> Self::Iter {
        let start = self.start;
        Par::new(self.len(), Box::new(move |i| start + i))
    }
}

/// Everything call sites need in scope (mirrors `rayon::prelude`).
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunks_partition_exactly() {
        for len in [0usize, 1, 5, 63, 64, 65, 1000, 12345] {
            let bounds = chunk_bounds(len);
            let mut covered = 0;
            for (k, r) in bounds.iter().enumerate() {
                assert_eq!(r.start, covered, "len {len} chunk {k}");
                covered = r.end;
            }
            assert_eq!(covered, len);
            assert!(bounds.len() <= MAX_CHUNKS);
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (3..103).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 100);
        assert_eq!(squares[0], 9);
        assert_eq!(squares[99], 102 * 102);
    }

    #[test]
    fn fold_reduce_is_deterministic_and_correct() {
        let v: Vec<f64> = (0..50_000).map(|i| (i as f64).sin()).collect();
        let reference: f64 = {
            // Same chunked order as the parallel path, computed serially.
            let parts: Vec<f64> = chunk_bounds(v.len())
                .into_iter()
                .map(|r| r.map(|i| v[i]).sum())
                .collect();
            parts.iter().sum()
        };
        for _ in 0..3 {
            let par: f64 = v
                .par_iter()
                .fold(|| 0.0, |acc, &x| acc + x)
                .reduce(|| 0.0, |a, b| a + b);
            assert_eq!(par.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn map_init_runs_once_per_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v
            .par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0usize
                },
                |state, &x| {
                    *state += 1;
                    x
                },
            )
            .collect();
        assert_eq!(out, v);
        assert!(inits.load(Ordering::Relaxed) <= MAX_CHUNKS);
    }

    #[test]
    fn sum_matches_serial() {
        let total: usize = (0..1_000usize).into_par_iter().sum();
        assert_eq!(total, 499_500);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..4096).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4096);
    }
}
