//! Offline drop-in replacement for the subset of [`criterion`] this
//! workspace's benches use.
//!
//! The build container cannot reach crates.io, so the real criterion
//! cannot be fetched. This shim keeps the bench sources compatible
//! (`criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`)
//! and reports wall-clock statistics to stdout:
//!
//! ```text
//! selector_round/full        time: median 1.23 ms  mean 1.25 ms  (20 samples)
//! ```
//!
//! Methodology: one untimed warm-up call, then `sample_size` timed
//! samples; each sample times a single closure invocation unless the
//! closure is faster than ~100 µs, in which case invocations are batched
//! per sample to keep timer quantization below 1%. No statistical
//! outlier analysis, plots, or baselines.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Something usable as a bench name: `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Render to the printed name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting `sample_size` samples after a warm-up
    /// call. The routine's output is black-boxed so the optimizer cannot
    /// delete the computation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        // Pick a per-sample batch so one sample lasts ≳100 µs.
        let probe = {
            let t = Instant::now();
            black_box(routine());
            t.elapsed()
        };
        let batch = if probe < Duration::from_micros(100) {
            (Duration::from_micros(100).as_nanos() / probe.as_nanos().max(1)).clamp(1, 10_000)
                as usize
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_name());
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.criterion.report(&name, &bencher.samples);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Parse CLI arguments (accepted and ignored: the shim always runs
    /// every benchmark).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        self.report(name, &bencher.samples);
        self
    }

    fn report(&mut self, name: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:<50} time: median {}  mean {}  ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
    }
}

/// Human-scaled duration formatting (ns/µs/ms/s).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Mirror of `criterion_group!`: bundle bench functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("trivial", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sized", 4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
