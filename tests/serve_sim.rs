//! Deterministic simulation harness for the chef-serve daemon
//! (DESIGN.md §16.5): seeded virtual clocks, scripted annotator
//! latency/drops/duplicates, and zero sleeps anywhere — every wait is a
//! condvar on a job state transition.
//!
//! Headline claims under test:
//!
//! 1. a job whose replies all arrive on time produces a report
//!    **bit-identical** to the synchronous `Pipeline::run`, regardless
//!    of delivery order (jitter, duplicates);
//! 2. the whole multi-tenant scenario replays bit-identically from the
//!    simulation seed (reports *and* event logs);
//! 3. late/missing replies map onto the pipeline's abstain path;
//! 4. the framed protocol serves submissions end-to-end over an
//!    in-memory connection.
//!
//! The file runs under both ci.sh feature configs: default and
//! `--no-default-features` (serial kernels, noop telemetry — the
//! `serve.*` counter assertions are gated on telemetry being real).

use chef_core::{
    AnnotationConfig, InflSelector, LabelStrategy, Pipeline, PipelineConfig, PipelineReport,
    RoundReport, Telemetry,
};
use chef_linalg::Matrix;
use chef_model::{Dataset, LogisticRegression, SoftLabel, WeightedObjective};
use chef_serve::{
    serve_connection, AnnotationRequest, AnnotatorHost, EventKind, Frame, HostDelivery, JobId,
    JobManager, JobRequest, JobState, SchedConfig, SimAnnotator, SimAnnotatorConfig, Verb,
};
use chef_train::SgdConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn fixture(seed: u64) -> (LogisticRegression, Dataset, Dataset, Dataset) {
    fixture_sized(seed, 120)
}

fn fixture_sized(seed: u64, train_count: usize) -> (LogisticRegression, Dataset, Dataset, Dataset) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut make = |count: usize, weak: bool| {
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..count {
            let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
            let sign = if c == 1 { 1.0 } else { -1.0 };
            raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
            raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
            if weak {
                let good = rng.gen_range(0.0..1.0) < 0.65;
                let p = rng.gen_range(0.55..0.95);
                let l = if good == (c == 1) {
                    SoftLabel::new(vec![1.0 - p, p])
                } else {
                    SoftLabel::new(vec![p, 1.0 - p])
                };
                labels.push(l);
            } else {
                labels.push(SoftLabel::onehot(c, 2));
            }
            truth.push(Some(c));
        }
        Dataset::new(
            Matrix::from_vec(count, 2, raw),
            labels,
            vec![!weak; count],
            truth,
            2,
        )
    };
    let train = make(train_count, true);
    let val = make(40, false);
    let test = make(40, false);
    (LogisticRegression::new(2, 2), train, val, test)
}

fn config(telemetry: Telemetry) -> PipelineConfig {
    PipelineConfig {
        budget: 20,
        round_size: 5,
        objective: WeightedObjective::new(0.8, 0.05),
        sgd: SgdConfig {
            lr: 0.1,
            epochs: 6,
            batch_size: 30,
            seed: 3,
            cache_provenance: true,
        },
        annotation: AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.05,
            seed: 11,
        },
        telemetry,
        ..PipelineConfig::default()
    }
}

/// Zero every wall-clock field — the only permitted divergence between
/// an async-served run and a synchronous one.
fn normalized(rounds: &[RoundReport]) -> Vec<RoundReport> {
    rounds
        .iter()
        .cloned()
        .map(|mut r| {
            r.select_time = Duration::ZERO;
            r.update_time = Duration::ZERO;
            r.telemetry.selector.select_ms = 0.0;
            r.telemetry.annotation.annotate_ms = 0.0;
            r.telemetry.constructor.update_ms = 0.0;
            r
        })
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

fn assert_same_outcome(reference: &PipelineReport, served: &PipelineReport) {
    assert_bits_eq(&reference.final_w, &served.final_w, "final_w");
    assert_bits_eq(&reference.final_w_raw, &served.final_w_raw, "final_w_raw");
    assert_eq!(reference.cleaned_total, served.cleaned_total);
    assert_eq!(reference.early_terminated, served.early_terminated);
    assert_eq!(
        normalized(&reference.rounds),
        normalized(&served.rounds),
        "per-round reports (wall-clock normalized)"
    );
    assert_eq!(reference.final_data.len(), served.final_data.len());
    for i in 0..reference.final_data.len() {
        assert_eq!(
            reference.final_data.is_clean(i),
            served.final_data.is_clean(i),
            "clean flag of sample {i}"
        );
        assert_eq!(
            reference.final_data.label(i),
            served.final_data.label(i),
            "label of sample {i}"
        );
    }
}

fn sync_reference(seed: u64) -> PipelineReport {
    let (model, train, val, test) = fixture(seed);
    let mut sel = InflSelector::full();
    Pipeline::new(config(Telemetry::disabled())).run(&model, train, &val, &test, &mut sel)
}

fn request(name: &str, seed: u64, deadline_ms: u64) -> JobRequest {
    let (model, train, val, test) = fixture(seed);
    JobRequest {
        name: name.to_string(),
        cfg: config(Telemetry::disabled()),
        model: Box::new(model),
        train,
        val,
        test,
        selector: Box::new(InflSelector::full()),
        deadline_ms,
        resume_from: None,
    }
}

/// Three tenants, jittered out-of-order delivery, everything on time:
/// each report is bit-identical to its synchronous reference run.
#[test]
fn on_time_async_jobs_match_sync_runs() {
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig {
        seed: 42,
        latency_base_ms: 5,
        latency_jitter_ms: 9, // reorders arrivals within every batch
        ..SimAnnotatorConfig::default()
    })));
    let seeds = [1u64, 2, 3];
    let ids: Vec<JobId> = seeds
        .iter()
        .map(|&s| mgr.submit(request(&format!("tenant-{s}"), s, 1_000)))
        .collect();
    for (&seed, &id) in seeds.iter().zip(&ids) {
        let result = mgr.wait(id).expect("job completes");
        assert!(!result.report.interrupted);
        assert_same_outcome(&sync_reference(seed), &result.report);
    }
}

/// The full multi-tenant scenario — drops, duplicates, jitter — replays
/// bit-identically from the simulation seed: same reports, same event
/// logs, byte-identical exported event documents.
#[test]
fn scenario_replays_bit_identically_from_seed() {
    let run = || {
        let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig {
            seed: 7,
            latency_base_ms: 4,
            latency_jitter_ms: 11,
            drop_prob: 0.2,
            duplicate_prob: 0.25,
            ..SimAnnotatorConfig::default()
        })));
        let ids: Vec<JobId> = (1u64..=3)
            .map(|s| mgr.submit(request(&format!("tenant-{s}"), s, 12)))
            .collect();
        ids.iter()
            .map(|&id| {
                let report = mgr.wait(id).expect("job completes").report;
                let events = mgr.events(id).expect("job exists");
                let doc = chef_serve::export_events(&format!("job-{}", id.0), &events);
                (report, events, doc)
            })
            .collect::<Vec<_>>()
    };
    let first = run();
    let second = run();
    for ((ra, ea, da), (rb, eb, db)) in first.iter().zip(&second) {
        assert_same_outcome(ra, rb);
        assert_eq!(ea, eb, "event logs replay identically");
        assert_eq!(da, db, "exported event documents are byte-identical");
    }
    // Drops actually happened (otherwise this test proves less than it
    // claims): some round abstained at least once.
    let abstained: usize = first
        .iter()
        .flat_map(|(r, _, _)| r.rounds.iter())
        .map(|r| r.ambiguous)
        .sum();
    assert!(abstained > 0, "scripted drops should cause abstains");
}

/// Unit-level: the sim host delivers out of batch order under jitter,
/// emits exactly one deadline marker positioned after every on-time
/// reply and before every late one, and is a pure function of its seed.
#[test]
fn sim_annotator_delivery_sequence_is_ordered_and_deterministic() {
    let (_, train, _, _) = fixture(5);
    let batch = chef_core::AnnotationBatch {
        round: 0,
        num_classes: 2,
        items: (0..12)
            .map(|i| chef_core::BatchItem {
                index: i,
                suggested: Some(i % 2),
                truth: train.ground_truth(i),
            })
            .collect(),
    };
    let req = AnnotationRequest {
        job: JobId(1),
        name: "unit".into(),
        annotation: AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.05,
            seed: 11,
        },
        deadline_ms: 9,
        batch,
    };
    let cfg = SimAnnotatorConfig {
        seed: 99,
        latency_base_ms: 2,
        latency_jitter_ms: 14, // spans the deadline: some replies late
        ..SimAnnotatorConfig::default()
    };
    let deliveries = SimAnnotator::new(cfg.clone()).annotate(&req);
    let replay = SimAnnotator::new(cfg).annotate(&req);
    assert_eq!(deliveries, replay, "delivery sequence replays from seed");

    let deadline_positions: Vec<usize> = deliveries
        .iter()
        .enumerate()
        .filter_map(|(i, d)| matches!(d, HostDelivery::Deadline { .. }).then_some(i))
        .collect();
    assert_eq!(deadline_positions.len(), 1, "exactly one deadline marker");
    let cut = deadline_positions[0];
    let mut prev_at = 0;
    let mut indices_before: Vec<usize> = Vec::new();
    for d in &deliveries[..cut] {
        let HostDelivery::Reply(r) = d else {
            unreachable!()
        };
        assert!(r.at_ms <= 9, "replies before the marker are on time");
        assert!(r.at_ms >= prev_at, "arrival order is by timestamp");
        prev_at = r.at_ms;
        indices_before.push(r.index);
    }
    for d in &deliveries[cut + 1..] {
        let HostDelivery::Reply(r) = d else {
            unreachable!()
        };
        assert!(r.at_ms > 9, "replies after the marker are late");
    }
    assert!(
        indices_before.windows(2).any(|w| w[0] > w[1]),
        "jitter should reorder arrivals out of batch order, got {indices_before:?}"
    );
    assert!(
        !deliveries[cut + 1..].is_empty(),
        "jitter spanning the deadline should strand some replies late"
    );
}

/// Every reply delivered twice: the duplicates are ignored idempotently
/// and the result is still bit-identical to the synchronous run.
#[test]
fn duplicate_replies_are_idempotent() {
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig {
        seed: 3,
        duplicate_prob: 1.0,
        ..SimAnnotatorConfig::default()
    })));
    let id = mgr.submit(request("dupes", 1, 1_000));
    let result = mgr.wait(id).expect("job completes");
    assert_same_outcome(&sync_reference(1), &result.report);
    if mgr.telemetry().is_enabled() {
        let rounds = result.report.rounds.len() as u64;
        let selected: u64 = result
            .report
            .rounds
            .iter()
            .map(|r| r.selected.len() as u64)
            .sum();
        let tel = mgr.telemetry();
        assert_eq!(tel.counter("serve.replies_received"), selected);
        // The collect loop breaks the moment the last slot fills, so the
        // final duplicate of each round is still queued and surfaces at
        // the next round boundary as a stale reply:
        assert_eq!(tel.counter("serve.replies_duplicate"), selected - rounds);
        assert_eq!(tel.counter("serve.replies_late"), rounds);
    }
}

/// Deadline shorter than the minimum latency: every reply is late, every
/// round abstains wholesale (the synchronous timeout path), and the
/// stale replies landing in later rounds are counted and ignored.
#[test]
fn all_late_replies_abstain_every_round() {
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig {
        seed: 5,
        latency_base_ms: 50,
        ..SimAnnotatorConfig::default()
    })));
    let id = mgr.submit(request("too-late", 1, 10));
    let result = mgr.wait(id).expect("job completes");
    let report = &result.report;
    assert_eq!(report.rounds.len(), 4, "budget 20 / round 5 → 4 rounds");
    for r in &report.rounds {
        assert_eq!(r.cleaned, 0, "round {}: nothing cleaned", r.round);
        assert_eq!(
            r.ambiguous,
            r.selected.len(),
            "round {}: all abstain",
            r.round
        );
        assert_eq!(r.telemetry.annotation.abstains, r.selected.len());
        assert_eq!(r.telemetry.annotation.votes, 0);
    }
    assert_eq!(report.cleaned_total, 0);
    if mgr.telemetry().is_enabled() {
        assert_eq!(mgr.telemetry().counter("serve.deadline_expirations"), 4);
        assert_eq!(mgr.telemetry().counter("serve.replies_received"), 0);
        assert!(
            mgr.telemetry().counter("serve.replies_late") >= 15,
            "stale replies of rounds 0-2 surface in later rounds"
        );
    }
}

/// A whole-batch scripted drop: that round abstains entirely, later
/// rounds continue, the job still completes its budget.
#[test]
fn scripted_batch_drop_abstains_that_round() {
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig {
        seed: 8,
        drop_batches: vec![("flaky".into(), 1)],
        ..SimAnnotatorConfig::default()
    })));
    let id = mgr.submit(request("flaky", 2, 1_000));
    let report = mgr.wait(id).expect("job completes").report;
    assert_eq!(report.rounds.len(), 4);
    assert_eq!(report.rounds[1].cleaned, 0);
    assert_eq!(report.rounds[1].ambiguous, report.rounds[1].selected.len());
    let cleaned_elsewhere: usize = report
        .rounds
        .iter()
        .filter(|r| r.round != 1)
        .map(|r| r.cleaned)
        .sum();
    assert!(cleaned_elsewhere > 0, "other rounds proceed normally");
}

/// Pause parks the job at a round boundary; resume continues it to a
/// report bit-identical to the never-paused run. Waits are condvars on
/// state transitions — the test is robust to the job finishing before
/// the pause lands (the race is real; both outcomes are asserted).
#[test]
fn pause_resume_preserves_bit_identity() {
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig {
        seed: 13,
        ..SimAnnotatorConfig::default()
    })));
    let id = mgr.submit(request("pausable", 3, 1_000));
    mgr.pause(id).expect("job exists");
    let state = mgr
        .wait_for(id, |s| s == JobState::Paused)
        .expect("job exists");
    if state == JobState::Paused {
        let status = mgr.status(id).expect("job exists");
        assert_eq!(status.state, JobState::Paused);
        mgr.resume_job(id).expect("job exists");
    }
    let result = mgr.wait(id).expect("job completes");
    assert_same_outcome(&sync_reference(3), &result.report);
    if state == JobState::Paused {
        let kinds: Vec<EventKind> = mgr
            .events(id)
            .expect("job exists")
            .iter()
            .map(|e| e.kind)
            .collect();
        assert!(kinds.contains(&EventKind::Paused));
        assert!(kinds.contains(&EventKind::Resumed));
    }
}

/// Cancel terminates a job; `wait` reports the cancellation and the
/// event log ends with `cancelled`.
#[test]
fn cancel_terminates_job() {
    // Cancel races the run; both outcomes are legitimate and asserted.
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig::default())));
    let id = mgr.submit(request("doomed", 1, 1_000));
    mgr.cancel(id).expect("job exists");
    match mgr.wait(id) {
        Err(chef_serve::ServeError::JobCancelled) => {
            let events = mgr.events(id).expect("job exists");
            assert_eq!(events.last().expect("events").kind, EventKind::Cancelled);
            if mgr.telemetry().is_enabled() {
                assert_eq!(mgr.telemetry().counter("serve.jobs_cancelled"), 1);
            }
        }
        Ok(result) => {
            // The job can legitimately win the race and complete before
            // the cancel lands; then it must be a full, correct run.
            assert_same_outcome(&sync_reference(1), &result.report);
        }
        Err(e) => panic!("unexpected terminal state: {e}"),
    }
}

/// Event-log shape of a clean run: job_start first, job_complete last,
/// dense `seq`, and one (round_start, awaiting_annotation,
/// round_complete) triple per round in order.
#[test]
fn event_log_has_lifecycle_shape() {
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig::default())));
    let id = mgr.submit(request("shapely", 1, 1_000));
    let report = mgr.wait(id).expect("job completes").report;
    let events = mgr.events(id).expect("job exists");
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "seq is dense");
    }
    assert_eq!(events.first().expect("events").kind, EventKind::JobStart);
    assert_eq!(events.last().expect("events").kind, EventKind::JobComplete);
    let rounds = report.rounds.len();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
    assert_eq!(count(EventKind::RoundStart), rounds);
    assert_eq!(count(EventKind::AwaitingAnnotation), rounds);
    assert_eq!(count(EventKind::RoundComplete), rounds);
    // Triples are contiguous and round numbers increase.
    let mut expected_round = 0usize;
    let mut i = 1;
    while i + 2 < events.len() {
        assert_eq!(events[i].kind, EventKind::RoundStart);
        assert_eq!(events[i].round, Some(expected_round));
        assert_eq!(events[i + 1].kind, EventKind::AwaitingAnnotation);
        assert_eq!(events[i + 2].kind, EventKind::RoundComplete);
        assert_eq!(events[i + 2].round, Some(expected_round));
        expected_round += 1;
        i += 3;
    }
    assert_eq!(expected_round, rounds);
}

/// `serve.*` counter accounting on a clean run (telemetry builds only).
#[test]
fn serve_counters_account_for_traffic() {
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig::default())));
    if !mgr.telemetry().is_enabled() {
        return; // noop telemetry build: nothing to count
    }
    let id = mgr.submit(request("counted", 1, 1_000));
    let report = mgr.wait(id).expect("job completes").report;
    let selected: usize = report.rounds.iter().map(|r| r.selected.len()).sum();
    let tel = mgr.telemetry();
    assert_eq!(tel.counter("serve.jobs_submitted"), 1);
    assert_eq!(tel.counter("serve.jobs_completed"), 1);
    assert_eq!(
        tel.counter("serve.batches_emitted"),
        report.rounds.len() as u64
    );
    assert_eq!(
        tel.counter("serve.rounds_completed"),
        report.rounds.len() as u64
    );
    assert_eq!(tel.counter("serve.replies_received"), selected as u64);
    assert_eq!(tel.counter("serve.replies_late"), 0);
    assert_eq!(tel.counter("serve.replies_duplicate"), 0);
    assert_eq!(tel.counter("serve.deadline_expirations"), 0);
}

/// Per-job telemetry export exists in telemetry builds and carries the
/// job's rounds.
#[test]
fn job_telemetry_export_present_when_enabled() {
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig::default())));
    let mut req = request("telemetered", 1, 1_000);
    let tel = Telemetry::enabled();
    req.cfg.telemetry = tel.clone();
    let id = mgr.submit(req);
    let result = mgr.wait(id).expect("job completes");
    if tel.is_enabled() {
        let doc = result.telemetry_json.expect("telemetry export");
        assert!(doc.contains("telemetry.v1"), "versioned schema: {doc}");
    } else {
        assert!(result.telemetry_json.is_none());
    }
}

/// End-to-end over the framed protocol on an in-memory connection:
/// submit a real (tiny) dataset job, poll status, fetch results and the
/// event document; unknown verbs/versions answer structured errors
/// without closing the connection.
#[test]
fn protocol_serves_submit_to_results_end_to_end() {
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig::default())));
    let spec = r#"{"name": "wire-job", "dataset": "MIMIC", "scale": 30, "seed": 5, "budget": 10, "round_size": 5, "deadline_ms": 1000}"#;
    let mut input = String::new();
    input.push_str(&Frame::new(Verb::Submit, spec).encode());
    input.push_str("chef-serve.v1 frobnicate 2\n{}\n"); // unknown verb
    input.push_str("chef-serve.v9 status 2\n{}\n"); // unknown version
    input.push_str(&Frame::new(Verb::Results, r#"{"job": 1}"#).encode());
    input.push_str(&Frame::new(Verb::Status, r#"{"job": 1}"#).encode());
    input.push_str(&Frame::new(Verb::Event, r#"{"job": 1}"#).encode());
    input.push_str(&Frame::new(Verb::Status, r#"{"job": 999}"#).encode());

    let mut reader = std::io::Cursor::new(input.into_bytes());
    let mut out: Vec<u8> = Vec::new();
    serve_connection(&mgr, &mut reader, &mut out).expect("serving succeeds");

    let mut rest = std::str::from_utf8(&out).expect("utf8 output");
    let mut frames = Vec::new();
    while !rest.is_empty() {
        let (f, r) = Frame::decode(rest).expect("well-formed response stream");
        frames.push(f);
        rest = r;
    }
    assert_eq!(frames.len(), 7, "one response per request");
    let json = |i: usize| chef_obs::parse_json(&frames[i].payload).expect("JSON payload");
    assert_eq!(frames[0].verb, Verb::Ok, "submit: {}", frames[0].payload);
    assert_eq!(json(0).get("job").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(frames[1].verb, Verb::Error);
    assert_eq!(
        json(1)
            .get("error")
            .and_then(|v| v.as_str().map(String::from)),
        Some("unknown-verb".into())
    );
    assert_eq!(frames[2].verb, Verb::Error);
    assert_eq!(
        json(2)
            .get("error")
            .and_then(|v| v.as_str().map(String::from)),
        Some("unknown-version".into())
    );
    assert_eq!(frames[3].verb, Verb::Ok, "results: {}", frames[3].payload);
    let results = json(3);
    assert!(results.get("cleaned_total").is_some());
    assert!(results.get("final_test_f1").is_some());
    assert_eq!(frames[4].verb, Verb::Ok);
    assert_eq!(
        json(4)
            .get("state")
            .and_then(|v| v.as_str().map(String::from)),
        Some("completed".into())
    );
    assert_eq!(frames[5].verb, Verb::Event);
    let (job, events) = chef_serve::parse_events(&frames[5].payload).expect("event doc parses");
    assert_eq!(job, "wire-job");
    assert_eq!(events.last().expect("events").kind, EventKind::JobComplete);
    assert_eq!(frames[6].verb, Verb::Error);
    assert!(frames[6].payload.contains("unknown-job"));
}

/// Fairness under the pooled scheduler (DESIGN.md §17): one tenant with
/// 10× the rounds of the others shares a 2-worker pool with three small
/// tenants. Round-robin slicing at round boundaries means every small
/// tenant completes before the big one, each job's slice count is
/// exactly its rounds + 1 (the starvation guard: nobody is skipped,
/// nobody hogs a worker), and every small report stays bit-identical to
/// its solo synchronous reference — interleaving never leaks between
/// tenants.
#[test]
fn pooled_fairness_big_tenant_does_not_starve_smalls() {
    let mgr = JobManager::with_config(
        Box::new(SimAnnotator::new(SimAnnotatorConfig::default())),
        Telemetry::enabled(),
        SchedConfig {
            workers: 2,
            queue_bound: 16,
        },
    );
    let big = {
        let (model, train, val, test) = fixture_sized(9, 600);
        let mut cfg = config(Telemetry::disabled());
        cfg.budget = 200; // 40 rounds vs the smalls' 4
        mgr.submit(JobRequest {
            name: "big".into(),
            cfg,
            model: Box::new(model),
            train,
            val,
            test,
            selector: Box::new(InflSelector::full()),
            deadline_ms: 1_000,
            resume_from: None,
        })
    };
    let small_seeds = [1u64, 2, 3];
    let smalls: Vec<JobId> = small_seeds
        .iter()
        .map(|&s| mgr.submit(request(&format!("small-{s}"), s, 1_000)))
        .collect();
    for (&seed, &id) in small_seeds.iter().zip(&smalls) {
        let report = mgr.wait(id).expect("small job completes").report;
        assert_same_outcome(&sync_reference(seed), &report);
    }
    let big_report = mgr.wait(big).expect("big job completes").report;
    assert_eq!(big_report.rounds.len(), 40, "budget 200 / round 5");

    let stats = mgr.sched_stats();
    assert_eq!(
        stats.completion_order.last(),
        Some(&big),
        "the big tenant finishes last"
    );
    let mut first_three: Vec<JobId> = stats.completion_order[..3].to_vec();
    first_three.sort();
    assert_eq!(
        first_three, smalls,
        "every small tenant completes before the big one"
    );
    for &(id, slices) in &stats.slices {
        let rounds: u64 = if id == big { 40 } else { 4 };
        assert_eq!(
            slices,
            rounds + 1,
            "job {}: one slice per round plus the finishing slice",
            id.0
        );
    }
}

/// `sched.*` observability on a clean multi-tenant run (telemetry
/// builds): the gauges settle to an idle pool, the slice and requeue
/// counters match the deterministic ledger, and nothing was refused
/// admission.
#[test]
fn sched_telemetry_tracks_pool_and_ledger() {
    let mgr = JobManager::with_config(
        Box::new(SimAnnotator::new(SimAnnotatorConfig::default())),
        Telemetry::enabled(),
        SchedConfig {
            workers: 2,
            queue_bound: 8,
        },
    );
    if !mgr.telemetry().is_enabled() {
        return; // noop telemetry build: nothing to observe
    }
    let ids: Vec<JobId> = (1u64..=3)
        .map(|s| mgr.submit(request(&format!("tenant-{s}"), s, 1_000)))
        .collect();
    let total_rounds: u64 = ids
        .iter()
        .map(|&id| mgr.wait(id).expect("job completes").report.rounds.len() as u64)
        .sum();

    // Taking the scheduler lock serializes this snapshot after the last
    // job's finalization, so the gauge reads below cannot race it.
    let stats = mgr.sched_stats();
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.workers_busy, 0);
    assert_eq!(stats.jobs_parked, 0);
    assert_eq!(stats.live_jobs, 0);

    let tel = mgr.telemetry();
    assert_eq!(tel.gauge("sched.queue.depth"), Some(0.0));
    assert_eq!(tel.gauge("sched.workers.busy"), Some(0.0));
    assert_eq!(tel.gauge("sched.jobs.parked"), Some(0.0));
    // One slice per round plus the finishing slice, per job; one
    // requeue per annotated round (the wake when deliveries land).
    assert_eq!(tel.counter("sched.slices"), total_rounds + ids.len() as u64);
    assert_eq!(tel.counter("sched.requeues"), total_rounds);
    assert_eq!(tel.counter("sched.admission_rejects"), 0);
}

/// Admission control at the manager API: with `queue_bound` live jobs
/// admitted, `try_submit` answers the recoverable [`ServeError::Busy`]
/// (counted as an admission reject), and a slot freed by cancellation
/// admits the next tenant.
#[test]
fn bounded_admission_refuses_then_recovers() {
    use chef_serve::ServeError;
    let mgr = JobManager::with_config(
        Box::new(SimAnnotator::new(SimAnnotatorConfig::default())),
        Telemetry::enabled(),
        SchedConfig {
            workers: 1,
            queue_bound: 2,
        },
    );
    let a = mgr.submit(request("a", 1, 1_000));
    let b = mgr.submit(request("b", 2, 1_000));
    let refused = mgr.try_submit(request("c", 3, 1_000));
    assert!(matches!(refused, Err(ServeError::Busy)));
    if mgr.telemetry().is_enabled() {
        assert_eq!(mgr.telemetry().counter("sched.admission_rejects"), 1);
    }
    // Drain one slot (whether the cancel wins the race or the job
    // completes, it leaves the live set either way) and resubmit.
    let _ = mgr.cancel(a);
    let _ = mgr.wait(a);
    let c = mgr
        .try_submit(request("c", 3, 1_000))
        .expect("slot freed: admission recovers");
    let report = mgr.wait(c).expect("job completes").report;
    assert_same_outcome(&sync_reference(3), &report);
    let _ = mgr.wait(b);
}

/// A malformed frame (bad header shape) is answered and then closes the
/// connection — nothing after it is processed.
#[test]
fn malformed_frame_closes_connection_after_structured_error() {
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig::default())));
    let mut input = String::new();
    input.push_str("chef-serve.v1 status\n"); // only 2 header fields
    input.push_str(&Frame::new(Verb::Status, r#"{"job": 1}"#).encode());
    let mut reader = std::io::Cursor::new(input.into_bytes());
    let mut out: Vec<u8> = Vec::new();
    serve_connection(&mgr, &mut reader, &mut out).expect("serving returns cleanly");
    let rest = std::str::from_utf8(&out).expect("utf8");
    let (frame, rest) = Frame::decode(rest).expect("one response frame");
    assert_eq!(frame.verb, Verb::Error);
    assert!(frame.payload.contains("malformed"));
    assert!(
        rest.is_empty(),
        "no second response after a malformed frame"
    );
}
