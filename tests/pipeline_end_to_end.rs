//! End-to-end integration: data generation → weak supervision → CHEF
//! pipeline → evaluation, across all crates.

use chef_core::{
    AnnotationConfig, ConstructorKind, InflSelector, LabelStrategy, Pipeline, PipelineConfig,
};
use chef_data::{generate, paper_suite, DatasetKind, DatasetSpec};
use chef_model::{LogisticRegression, WeightedObjective};
use chef_train::{DeltaGradConfig, SgdConfig};
use chef_weak::{weaken_split, WeakenConfig};

fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "itest",
        kind: DatasetKind::FullyClean,
        train: 400,
        val: 80,
        test: 80,
        dim: 12,
        num_classes: 2,
        class_sep: 1.2,
        positive_rate: 0.5,
        truth_noise: 0.0,
        weak_quality: 0.5,
        annotator_error: 0.05,
    }
}

fn config(budget: usize, b: usize) -> PipelineConfig {
    PipelineConfig {
        budget,
        round_size: b,
        objective: WeightedObjective::new(0.8, 0.1),
        sgd: SgdConfig {
            lr: 0.1,
            epochs: 15,
            batch_size: 64,
            seed: 5,
            cache_provenance: true,
        },
        constructor: ConstructorKind::Retrain,
        annotation: AnnotationConfig {
            strategy: LabelStrategy::SuggestionOnly,
            error_rate: 0.05,
            seed: 3,
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn cleaning_improves_a_randomly_labeled_dataset() {
    let spec = spec();
    let mut split = generate(&spec, 1);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    // Random labels: roughly half the argmaxes are wrong.
    let err = split.train.weak_label_error_rate().unwrap();
    assert!(err > 0.3, "weak error rate {err}");

    let model = LogisticRegression::new(split.train.dim(), 2);
    let mut selector = InflSelector::incremental();
    let report = Pipeline::new(config(60, 10)).run(
        &model,
        split.train,
        &split.val,
        &split.test,
        &mut selector,
    );
    assert_eq!(report.rounds.len(), 6);
    assert!(
        report.final_test_f1() > report.initial_test_f1 + 0.02,
        "test F1 {:.4} → {:.4}",
        report.initial_test_f1,
        report.final_test_f1()
    );
}

#[test]
fn deltagrad_l_constructor_matches_retrain_quality_end_to_end() {
    let spec = spec();
    let mut split = generate(&spec, 2);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    let model = LogisticRegression::new(split.train.dim(), 2);

    let mut cfg_dg = config(40, 10);
    cfg_dg.constructor = ConstructorKind::DeltaGradL(DeltaGradConfig::default());

    let mut s1 = InflSelector::full();
    let mut s2 = InflSelector::full();
    let retrain = Pipeline::new(config(40, 10)).run(
        &model,
        split.train.clone(),
        &split.val,
        &split.test,
        &mut s1,
    );
    let deltagrad =
        Pipeline::new(cfg_dg).run(&model, split.train, &split.val, &split.test, &mut s2);
    assert!(
        (retrain.final_test_f1() - deltagrad.final_test_f1()).abs() < 0.1,
        "Retrain {:.4} vs DeltaGrad-L {:.4}",
        retrain.final_test_f1(),
        deltagrad.final_test_f1()
    );
}

#[test]
fn early_termination_saves_budget() {
    let spec = spec();
    let mut split = generate(&spec, 3);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    let model = LogisticRegression::new(split.train.dim(), 2);

    // Find a reachable target: run once without a target, take a mid-run
    // value.
    let mut probe = InflSelector::full();
    let unbounded = Pipeline::new(config(60, 10)).run(
        &model,
        split.train.clone(),
        &split.val,
        &split.test,
        &mut probe,
    );
    let mid_val = unbounded.rounds[2].val_f1;

    let mut cfg = config(60, 10);
    cfg.target_val_f1 = Some(mid_val);
    let mut selector = InflSelector::full();
    let bounded =
        Pipeline::new(cfg).run(&model, split.train, &split.val, &split.test, &mut selector);
    assert!(bounded.early_terminated);
    assert!(bounded.rounds.len() <= 3, "{} rounds", bounded.rounds.len());
    assert!(bounded.final_val_f1() >= mid_val);
}

#[test]
fn whole_paper_suite_runs_one_round_each() {
    for spec in paper_suite(200) {
        let mut split = generate(&spec, 4);
        weaken_split(&mut split, &spec, &WeakenConfig::default());
        let model = LogisticRegression::new(split.train.dim(), 2);
        let mut selector = InflSelector::incremental();
        let mut cfg = config(5, 5);
        cfg.annotation.error_rate = spec.annotator_error;
        let report =
            Pipeline::new(cfg).run(&model, split.train, &split.val, &split.test, &mut selector);
        assert_eq!(report.rounds.len(), 1, "{}", spec.name);
        assert!(report.final_test_f1().is_finite());
    }
}

#[test]
fn pipeline_is_deterministic() {
    let spec = spec();
    let mut split = generate(&spec, 5);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    let model = LogisticRegression::new(split.train.dim(), 2);
    let run = || {
        let mut selector = InflSelector::incremental();
        Pipeline::new(config(30, 10)).run(
            &model,
            split.train.clone(),
            &split.val,
            &split.test,
            &mut selector,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.final_w, b.final_w);
    assert_eq!(a.cleaned_total, b.cleaned_total);
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.selected, rb.selected);
        assert_eq!(ra.val_f1, rb.val_f1);
    }
}
