//! Property tests for the `chef-serve.v1` frame codec (DESIGN.md §16.3).
//!
//! The codec is the daemon's outer armor: every byte sequence a client
//! can send must either decode to a frame or fail with a structured
//! [`FrameError`] — never a panic, never a silently desynchronized
//! stream. The properties here hammer that contract from both entry
//! points (`Frame::decode` on a string, `Frame::read_from` on a byte
//! reader):
//!
//! - encode∘decode is the identity for every verb × arbitrary payloads
//!   (newlines, quotes, multi-byte UTF-8 included);
//! - concatenated frames decode back in order from one stream;
//! - every strict prefix of a valid frame is `Truncated`/`Malformed`,
//!   never `Ok` — a cut cable cannot manufacture a frame;
//! - oversized declared lengths are rejected *before* any payload byte
//!   is read;
//! - unknown verbs and foreign version tokens produce recoverable
//!   errors that consume exactly one frame, so the next frame on the
//!   connection still decodes;
//! - arbitrary garbage bytes never panic the reader.

use chef_serve::{Frame, FrameError, Verb, MAX_PAYLOAD_BYTES, PROTOCOL_VERSION};
use proptest::prelude::*;
use std::io::Cursor;

/// Character pool for payloads: JSON structure, whitespace (including
/// the newlines the length prefix must shield), and multi-byte UTF-8.
const POOL: &[char] = &[
    'a', 'Z', '0', '9', '{', '}', '[', ']', '"', ':', ',', ' ', '\n', '\t', '\r', '\\', '\'', 'é',
    'λ', '中', '🦀',
];

fn payload_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..POOL.len(), 0..64)
        .prop_map(|ix| ix.into_iter().map(|i| POOL[i]).collect())
}

fn verb_strategy() -> impl Strategy<Value = Verb> {
    (0usize..Verb::ALL.len()).prop_map(|i| Verb::ALL[i])
}

/// Lowercase-alpha tokens: valid header fields (no spaces/newlines)
/// that can collide with real verbs — callers `prop_assume!` them away.
fn token_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..26, 1..12)
        .prop_map(|ix| ix.into_iter().map(|i| (b'a' + i as u8) as char).collect())
}

/// Largest `cut <= at` that is a char boundary of `s`.
fn boundary_at(s: &str, at: usize) -> usize {
    let mut cut = at.min(s.len());
    while !s.is_char_boundary(cut) {
        cut -= 1;
    }
    cut
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity, consumes the whole input, and
    /// `read_from` agrees with `decode`.
    #[test]
    fn roundtrip_exact(verb in verb_strategy(), payload in payload_strategy()) {
        let frame = Frame::new(verb, payload);
        let wire = frame.encode();
        let (back, rest) = Frame::decode(&wire).expect("valid frame decodes");
        prop_assert_eq!(&back, &frame);
        prop_assert!(rest.is_empty(), "decode left {} bytes unconsumed", rest.len());

        let mut cursor = Cursor::new(wire.into_bytes());
        let read = Frame::read_from(&mut cursor).expect("valid frame reads");
        prop_assert_eq!(read, Some(frame));
        prop_assert_eq!(Frame::read_from(&mut cursor).expect("clean EOF"), None);
    }

    /// A stream of concatenated frames decodes back in order, from both
    /// entry points.
    #[test]
    fn stream_of_frames_decodes_in_order(
        frames in prop::collection::vec(
            (verb_strategy(), payload_strategy()).prop_map(|(v, p)| Frame::new(v, p)),
            1..6,
        ),
    ) {
        let wire: String = frames.iter().map(Frame::encode).collect();

        let mut rest = wire.as_str();
        for expected in &frames {
            let (got, tail) = Frame::decode(rest).expect("frame in stream decodes");
            prop_assert_eq!(&got, expected);
            rest = tail;
        }
        prop_assert!(rest.is_empty());

        let mut cursor = Cursor::new(wire.into_bytes());
        for expected in &frames {
            let got = Frame::read_from(&mut cursor).expect("frame in stream reads");
            prop_assert_eq!(got.as_ref(), Some(expected));
        }
        prop_assert_eq!(Frame::read_from(&mut cursor).expect("clean EOF"), None);
    }

    /// No strict prefix of a valid frame ever decodes to a frame: the
    /// result is `Truncated` (retry with more bytes) or `Malformed`,
    /// and `read_from` never yields `Ok(Some)` (empty input is clean
    /// EOF, `Ok(None)`).
    #[test]
    fn prefixes_never_decode(
        verb in verb_strategy(),
        payload in payload_strategy(),
        frac in 0.0f64..1.0,
    ) {
        let wire = Frame::new(verb, payload).encode();
        let cut = boundary_at(&wire, (wire.len() as f64 * frac) as usize);
        prop_assume!(cut < wire.len());

        match Frame::decode(&wire[..cut]) {
            Err(FrameError::Truncated | FrameError::Malformed(_)) => {}
            other => prop_assert!(false, "prefix of {cut} bytes gave {other:?}"),
        }

        let mut cursor = Cursor::new(wire.as_bytes()[..cut].to_vec());
        match Frame::read_from(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "Ok(None) is only clean EOF"),
            Err(FrameError::Truncated | FrameError::Malformed(_)) => {}
            other => prop_assert!(false, "prefix of {cut} bytes read as {other:?}"),
        }
    }

    /// A declared length over the cap is rejected as `Oversized` from
    /// the header alone — no payload bytes are present, and a
    /// payload-reading path would have to report `Truncated` instead.
    #[test]
    fn oversized_rejected_before_payload(excess in 1usize..1_000_000) {
        let len = MAX_PAYLOAD_BYTES + excess;
        let header_only = format!("{PROTOCOL_VERSION} submit {len}\n");
        prop_assert_eq!(Frame::decode(&header_only), Err(FrameError::Oversized(len)));

        let mut cursor = Cursor::new(header_only.into_bytes());
        prop_assert_eq!(Frame::read_from(&mut cursor), Err(FrameError::Oversized(len)));
        prop_assert!(!FrameError::Oversized(len).recoverable());
    }

    /// Unknown verbs and foreign version tokens are *recoverable*: the
    /// bad frame is consumed whole and the next frame on the connection
    /// still decodes.
    #[test]
    fn unknown_verb_and_version_keep_stream_aligned(
        token in token_strategy(),
        payload in payload_strategy(),
        next in (verb_strategy(), payload_strategy()).prop_map(|(v, p)| Frame::new(v, p)),
        foreign_version in any::<bool>(),
    ) {
        prop_assume!(Verb::parse(&token).is_none());
        let bad = if foreign_version {
            format!("{token} submit {}\n{payload}\n", payload.len())
        } else {
            format!("{PROTOCOL_VERSION} {token} {}\n{payload}\n", payload.len())
        };
        let wire = format!("{bad}{}", next.encode());

        let mut cursor = Cursor::new(wire.into_bytes());
        let err = Frame::read_from(&mut cursor).expect_err("bad frame errors");
        if foreign_version {
            prop_assert_eq!(&err, &FrameError::Version(token.clone()));
            prop_assert_eq!(err.code(), "unknown-version");
        } else {
            prop_assert_eq!(&err, &FrameError::UnknownVerb(token.clone()));
            prop_assert_eq!(err.code(), "unknown-verb");
        }
        prop_assert!(err.recoverable(), "{err:?} must keep the connection open");
        prop_assert_eq!(Frame::read_from(&mut cursor).expect("aligned"), Some(next));
    }

    /// Structurally broken headers (wrong field count, unparseable
    /// length) are `Malformed` and unrecoverable.
    #[test]
    fn broken_headers_are_malformed(
        tokens in prop::collection::vec(token_strategy(), 0..6),
        payload in payload_strategy(),
    ) {
        prop_assume!(tokens.len() != 3);
        let header = tokens.join(" ");
        prop_assume!(header.len() <= 100);
        let wire = format!("{header}\n{payload}\n");
        match Frame::decode(&wire) {
            Err(e @ FrameError::Malformed(_)) => prop_assert!(!e.recoverable()),
            other => prop_assert!(false, "header '{header}' gave {other:?}"),
        }
        // An alpha token in the length slot never parses as a number.
        let wire = format!("{PROTOCOL_VERSION} submit notanumber\n{payload}\n");
        prop_assert!(matches!(Frame::decode(&wire), Err(FrameError::Malformed(_))));
    }

    /// Arbitrary garbage bytes never panic the reader; they produce
    /// clean EOF, a frame, or a structured error.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut cursor = Cursor::new(bytes.clone());
        let _ = Frame::read_from(&mut cursor);
        let lossy = String::from_utf8_lossy(&bytes).into_owned();
        let _ = Frame::decode(&lossy);
    }
}

/// Exhaustive (non-property) checks over the closed verb vocabulary.
#[test]
fn verb_wire_names_roundtrip() {
    for verb in Verb::ALL {
        assert_eq!(Verb::parse(verb.as_str()), Some(verb));
    }
    assert_eq!(Verb::ALL.len(), 9, "update Verb::ALL when adding verbs");
    assert_eq!(Verb::parse("submitx"), None);
    assert_eq!(Verb::parse("Submit"), None, "wire names are lowercase");
}

/// The error taxonomy: codes are stable wire strings and recoverability
/// matches the documented contract (only fully-consumed frames keep
/// the connection).
#[test]
fn frame_error_taxonomy() {
    let cases: [(FrameError, &str, bool); 5] = [
        (FrameError::Version("v0".into()), "unknown-version", true),
        (FrameError::UnknownVerb("zap".into()), "unknown-verb", true),
        (
            FrameError::Oversized(MAX_PAYLOAD_BYTES + 1),
            "oversized",
            false,
        ),
        (FrameError::Truncated, "truncated", false),
        (FrameError::Malformed("x".into()), "malformed", false),
    ];
    for (err, code, recoverable) in cases {
        assert_eq!(err.code(), code);
        assert_eq!(err.recoverable(), recoverable, "{err:?}");
        assert!(!err.to_string().is_empty());
    }
}

/// Backpressure at the dispatch layer: a daemon at its admission bound
/// answers `submit` with the recoverable `busy` error code — the
/// connection stays open, every later frame on the stream still gets
/// its aligned response, and a freed slot admits the resubmission.
#[test]
fn busy_reply_keeps_stream_aligned() {
    use chef_serve::{serve_connection, JobManager, SchedConfig, SimAnnotator, SimAnnotatorConfig};

    let mgr = JobManager::with_config(
        Box::new(SimAnnotator::new(SimAnnotatorConfig::default())),
        chef_core::Telemetry::enabled(),
        SchedConfig {
            workers: 1,
            queue_bound: 1,
        },
    );
    let spec = |name: &str| {
        format!(
            r#"{{"name": "{name}", "dataset": "MIMIC", "scale": 30, "seed": 5, "budget": 10, "round_size": 5, "deadline_ms": 1000}}"#
        )
    };
    let mut input = String::new();
    input.push_str(&Frame::new(Verb::Submit, spec("a")).encode());
    // Pause lands at job 1's next round boundary, pinning it live: the
    // daemon is now deterministically at its bound of 1.
    input.push_str(&Frame::new(Verb::Pause, r#"{"job": 1}"#).encode());
    input.push_str(&Frame::new(Verb::Submit, spec("refused")).encode());
    input.push_str(&Frame::new(Verb::Status, r#"{"job": 1}"#).encode());
    input.push_str(&Frame::new(Verb::Cancel, r#"{"job": 1}"#).encode());
    // `results` blocks until job 1 is terminal — by the time the next
    // submit is dispatched, the cancel has freed the admission slot.
    input.push_str(&Frame::new(Verb::Results, r#"{"job": 1}"#).encode());
    input.push_str(&Frame::new(Verb::Submit, spec("b")).encode());
    input.push_str(&Frame::new(Verb::Results, r#"{"job": 2}"#).encode());

    let mut reader = Cursor::new(input.into_bytes());
    let mut out: Vec<u8> = Vec::new();
    serve_connection(&mgr, &mut reader, &mut out).expect("serving succeeds");

    let mut rest = std::str::from_utf8(&out).expect("utf8 output");
    let mut frames = Vec::new();
    while !rest.is_empty() {
        let (f, r) = Frame::decode(rest).expect("well-formed response stream");
        frames.push(f);
        rest = r;
    }
    assert_eq!(frames.len(), 8, "one aligned response per request");
    let json = |i: usize| chef_obs::parse_json(&frames[i].payload).expect("JSON payload");
    let error_code = |i: usize| {
        json(i)
            .get("error")
            .and_then(|v| v.as_str().map(String::from))
    };
    assert_eq!(frames[0].verb, Verb::Ok, "submit a: {}", frames[0].payload);
    assert_eq!(json(0).get("job").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(frames[1].verb, Verb::Ok, "pause: {}", frames[1].payload);
    assert_eq!(frames[2].verb, Verb::Error, "second submit refused");
    assert_eq!(error_code(2), Some("busy".into()));
    assert_eq!(frames[3].verb, Verb::Ok, "status still served after busy");
    assert_eq!(frames[4].verb, Verb::Ok, "cancel: {}", frames[4].payload);
    assert_eq!(frames[5].verb, Verb::Error, "results of a cancelled job");
    assert!(frames[5].payload.contains("cancelled"));
    assert_eq!(
        frames[6].verb,
        Verb::Ok,
        "resubmit admitted after the slot freed"
    );
    assert_eq!(json(6).get("job").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(frames[7].verb, Verb::Ok, "job 2 runs to completion");
    assert!(json(7).get("final_test_f1").is_some());
}

/// A payload that *contains* something shaped like a frame header must
/// not confuse the codec: the length prefix wins over line structure.
#[test]
fn embedded_header_lookalike_is_just_payload() {
    let tricky = format!("{PROTOCOL_VERSION} cancel 3\nabc");
    let frame = Frame::new(Verb::Submit, tricky.clone());
    let wire = frame.encode();
    let (back, rest) = Frame::decode(&wire).expect("decodes");
    assert_eq!(back.payload, tricky);
    assert!(rest.is_empty());

    let mut cursor = Cursor::new(wire.into_bytes());
    assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(frame));
    assert_eq!(Frame::read_from(&mut cursor).unwrap(), None);
}
