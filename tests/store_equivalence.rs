//! Storage-equivalence harness for the out-of-core dataset substrate
//! (DESIGN.md §15).
//!
//! The core claim under test: running the cleaning pipeline on a
//! memory-mapped `store.v1` directory is **bit-identical** to running
//! it on the same data materialized as an in-memory [`Dataset`] — same
//! selector rankings, same suggested labels, same DeltaGrad-L replays,
//! same final parameter bits — across the full Infl selector, the
//! Increm-Infl selector (which additionally exercises the sharded
//! provenance initialization and the per-shard top-b merge), the
//! DeltaGrad-L constructor, the `pread` fallback, and a pathologically
//! small residency window (constant eviction). Since `store.v2` the
//! harness also covers the integrity axis: `LazyFirstTouch` (with and
//! without the background prefetcher) must be bit-identical to `Eager`,
//! and a `store.v1` directory (no per-block checksum table) must still
//! open and produce the same bits. With `fault-inject`, the same
//! equivalence is asserted through a crash + `checkpoint.v1` resume on
//! a freshly opened store, and corruption lanes check that a bit-flip
//! slips past a lazy open but is caught on first touch of its block.
//!
//! Like the other equivalence suites, this file runs in both feature
//! configurations exercised by ci.sh (default and
//! `--no-default-features`): the serial and parallel kernel paths must
//! both uphold the storage-independence claim.

use chef_core::{
    AnnotationConfig, ConstructorKind, InflSelector, LabelStrategy, Pipeline, PipelineConfig,
    StorePipelineReport,
};
use chef_data::{
    generate_train_store, DatasetKind, DatasetSpec, IntegrityMode, MmapStore, StoreOptions,
};
use chef_model::{Dataset, DatasetStore, LogisticRegression, WeightedObjective};
use chef_train::{DeltaGradConfig, SgdConfig};
use chef_weak::random_probabilistic_labels;
use std::path::{Path, PathBuf};

const SEED: u64 = 5;
const WEAKEN_SEED: u64 = SEED ^ 0xabcd;
const CHUNK_ROWS: usize = 128; // 600 rows → 5 shards, the last one short

fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "store_equivalence",
        kind: DatasetKind::FullyClean,
        train: 600,
        val: 120,
        test: 120,
        dim: 6,
        num_classes: 2,
        class_sep: 1.5,
        positive_rate: 0.5,
        truth_noise: 0.0,
        weak_quality: 0.5,
        annotator_error: 0.05,
    }
}

/// Build the on-disk store once per test, returning its directory and
/// the in-memory val/test parts.
fn make_store(tag: &str) -> (PathBuf, Dataset, Dataset) {
    let dir = std::env::temp_dir().join(format!("chef-store-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_, val, test) = generate_train_store(&spec(), SEED, &dir, CHUNK_ROWS).expect("gen store");
    (dir, val, test)
}

fn config(ctor: ConstructorKind) -> PipelineConfig {
    PipelineConfig {
        budget: 20,
        round_size: 10,
        objective: WeightedObjective::new(0.8, 0.2),
        sgd: SgdConfig {
            lr: 0.1,
            epochs: 5,
            batch_size: 32,
            seed: 3,
            cache_provenance: true,
        },
        constructor: ctor,
        annotation: AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.05,
            seed: 11,
        },
        ..PipelineConfig::default()
    }
}

fn selector(incremental: bool) -> InflSelector {
    if incremental {
        InflSelector::incremental()
    } else {
        InflSelector::full()
    }
}

/// Run the pipeline on the store served through mmap (with `opts`).
fn run_on_store(
    dir: &Path,
    opts: StoreOptions,
    ctor: ConstructorKind,
    incremental: bool,
    val: &Dataset,
    test: &Dataset,
) -> StorePipelineReport {
    let mut store = MmapStore::open_with(dir, opts).expect("open store");
    random_probabilistic_labels(&mut store, WEAKEN_SEED);
    let model = LogisticRegression::new(store.dim(), store.num_classes());
    let mut sel = selector(incremental);
    Pipeline::new(config(ctor)).run_store(&model, &mut store, val, test, &mut sel)
}

/// Run the pipeline on the same data materialized in memory.
fn run_in_memory(
    dir: &Path,
    ctor: ConstructorKind,
    incremental: bool,
    val: &Dataset,
    test: &Dataset,
) -> StorePipelineReport {
    let mut data = MmapStore::open(dir).expect("open store").to_dataset();
    random_probabilistic_labels(&mut data, WEAKEN_SEED);
    let model = LogisticRegression::new(data.dim(), data.num_classes());
    let mut sel = selector(incremental);
    Pipeline::new(config(ctor)).run_store(&model, &mut data, val, test, &mut sel)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

fn assert_equivalent(mem: &StorePipelineReport, store: &StorePipelineReport) {
    assert_eq!(mem.rounds.len(), store.rounds.len(), "round count");
    for (k, (a, b)) in mem.rounds.iter().zip(&store.rounds).enumerate() {
        let sel_a: Vec<_> = a.selected.iter().map(|s| (s.index, s.suggested)).collect();
        let sel_b: Vec<_> = b.selected.iter().map(|s| (s.index, s.suggested)).collect();
        assert_eq!(sel_a, sel_b, "round {k}: selections (index + suggestion)");
        assert_eq!(a.cleaned, b.cleaned, "round {k}: cleaned count");
        assert_eq!(a.val_f1.to_bits(), b.val_f1.to_bits(), "round {k}: val F1");
        assert_eq!(
            a.test_f1.to_bits(),
            b.test_f1.to_bits(),
            "round {k}: test F1"
        );
    }
    assert_bits_eq(&mem.final_w, &store.final_w, "final_w");
    assert_bits_eq(&mem.final_w_raw, &store.final_w_raw, "final_w_raw");
    assert_eq!(mem.cleaned_total, store.cleaned_total);
    assert_eq!(
        mem.initial_val_f1.to_bits(),
        store.initial_val_f1.to_bits(),
        "initial val F1"
    );
}

#[test]
fn full_infl_selector_is_bit_identical_across_stores() {
    let (dir, val, test) = make_store("full");
    let mem = run_in_memory(&dir, ConstructorKind::Retrain, false, &val, &test);
    let store = run_on_store(
        &dir,
        StoreOptions::default(),
        ConstructorKind::Retrain,
        false,
        &val,
        &test,
    );
    assert_equivalent(&mem, &store);
    assert!(mem.cleaned_total > 0, "fixture must actually clean");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn increm_selector_is_bit_identical_across_stores() {
    // Exercises the shard-aware provenance initialization and the
    // per-shard rank + deterministic k-way merge (DESIGN.md §15.4).
    let (dir, val, test) = make_store("increm");
    let mem = run_in_memory(&dir, ConstructorKind::Retrain, true, &val, &test);
    let store = run_on_store(
        &dir,
        StoreOptions::default(),
        ConstructorKind::Retrain,
        true,
        &val,
        &test,
    );
    assert_equivalent(&mem, &store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deltagrad_replay_is_bit_identical_across_stores() {
    let ctor = ConstructorKind::DeltaGradL(DeltaGradConfig::default());
    let (dir, val, test) = make_store("deltagrad");
    let mem = run_in_memory(&dir, ctor, false, &val, &test);
    let store = run_on_store(&dir, StoreOptions::default(), ctor, false, &val, &test);
    assert_equivalent(&mem, &store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pread_fallback_is_bit_identical() {
    let (dir, val, test) = make_store("pread");
    let mem = run_in_memory(&dir, ConstructorKind::Retrain, false, &val, &test);
    let store = run_on_store(
        &dir,
        StoreOptions {
            force_pread: true,
            ..StoreOptions::default()
        },
        ConstructorKind::Retrain,
        false,
        &val,
        &test,
    );
    assert_equivalent(&mem, &store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lazy_first_touch_is_bit_identical_to_eager() {
    // The integrity mode must only change *when* checksums are checked,
    // never what the selector sees — with or without the background
    // prefetch thread warming blocks ahead of the residency window.
    let (dir, val, test) = make_store("lazy");
    let mem = run_in_memory(&dir, ConstructorKind::Retrain, false, &val, &test);
    let lazy = run_on_store(
        &dir,
        StoreOptions {
            integrity: IntegrityMode::LazyFirstTouch,
            ..StoreOptions::default()
        },
        ConstructorKind::Retrain,
        false,
        &val,
        &test,
    );
    assert_equivalent(&mem, &lazy);
    let lazy_no_prefetch = run_on_store(
        &dir,
        StoreOptions {
            integrity: IntegrityMode::LazyFirstTouch,
            background_prefetch: false,
            ..StoreOptions::default()
        },
        ConstructorKind::Retrain,
        false,
        &val,
        &test,
    );
    assert_equivalent(&mem, &lazy_no_prefetch);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v1_manifest_store_is_still_bit_identical() {
    // Backward compat: a directory written before store.v2 has no
    // per-block checksum table. Demote the manifest to the v1 dialect
    // (drop block lines, flip the version header) and require the
    // pipeline to produce the same bits in every integrity mode.
    let (dir, val, test) = make_store("v1compat");
    let v2_path = dir.join(chef_data::store::MANIFEST_FILE_V2);
    let v2 = std::fs::read_to_string(&v2_path).unwrap();
    let mut v1 = String::new();
    for line in v2.lines() {
        if line.starts_with("block_bytes=")
            || line.starts_with("blocks=")
            || line.starts_with("labels_fnv64=")
        {
            continue;
        }
        if line == chef_data::store::STORE_VERSION_V2 {
            v1.push_str(chef_data::store::STORE_VERSION);
        } else {
            v1.push_str(line);
        }
        v1.push('\n');
    }
    std::fs::write(dir.join(chef_data::store::MANIFEST_FILE), v1).unwrap();
    std::fs::remove_file(&v2_path).unwrap();

    let mem = run_in_memory(&dir, ConstructorKind::Retrain, false, &val, &test);
    for integrity in [
        IntegrityMode::Eager,
        IntegrityMode::LazyFirstTouch,
        IntegrityMode::Off,
    ] {
        let store = run_on_store(
            &dir,
            StoreOptions {
                integrity,
                ..StoreOptions::default()
            },
            ConstructorKind::Retrain,
            false,
            &val,
            &test,
        );
        assert_equivalent(&mem, &store);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tiny_residency_window_changes_nothing_but_paging() {
    // residency_chunks = 1 forces an eviction on almost every chunk
    // transition; evicted pages must refault with identical contents.
    let (dir, val, test) = make_store("window");
    let mem = run_in_memory(&dir, ConstructorKind::Retrain, false, &val, &test);
    let store = run_on_store(
        &dir,
        StoreOptions {
            residency_chunks: 1,
            ..StoreOptions::default()
        },
        ConstructorKind::Retrain,
        false,
        &val,
        &test,
    );
    assert_equivalent(&mem, &store);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash-recovery on an out-of-core store: kill the run mid-loop, then
/// resume on a **freshly opened** store (as a restarted process would)
/// and require the outcome to match an uninterrupted store run.
#[cfg(feature = "fault-inject")]
mod fault_inject {
    use super::*;
    use chef_core::{CheckpointConfig, FaultPlan};
    use chef_data::StoreError;

    #[test]
    fn checkpoint_resume_works_on_mmap_store() {
        let (dir, val, test) = make_store("resume");
        let ck_ref = std::env::temp_dir().join(format!("chef-seq-ck-ref-{}", std::process::id()));
        let ck_int = std::env::temp_dir().join(format!("chef-seq-ck-int-{}", std::process::id()));
        for d in [&ck_ref, &ck_int] {
            let _ = std::fs::remove_dir_all(d);
        }
        let model = LogisticRegression::new(6, 2);
        let with_ck = |ck: &PathBuf, faults: FaultPlan| {
            let mut cfg = config(ConstructorKind::Retrain);
            cfg.checkpoint = Some(CheckpointConfig {
                dir: ck.clone(),
                every_rounds: 1,
                keep: 3,
            });
            cfg.faults = faults;
            Pipeline::new(cfg)
        };

        // Reference: uninterrupted run on the store.
        let mut store = MmapStore::open(&dir).expect("open store");
        random_probabilistic_labels(&mut store, WEAKEN_SEED);
        let mut sel = selector(false);
        let reference = with_ck(&ck_ref, FaultPlan::default())
            .run_store(&model, &mut store, &val, &test, &mut sel);
        assert!(!reference.interrupted);

        // Interrupted: crash after round 0, checkpoint survives.
        let mut store = MmapStore::open(&dir).expect("open store");
        random_probabilistic_labels(&mut store, WEAKEN_SEED);
        let mut sel = selector(false);
        let interrupted = with_ck(&ck_int, FaultPlan::crash_after(0))
            .run_store(&model, &mut store, &val, &test, &mut sel);
        assert!(interrupted.interrupted);

        // Resume on a freshly opened store, as a restarted process
        // would: re-open, re-weaken (the run's pristine starting state),
        // replay label patches, finish.
        let mut store = MmapStore::open(&dir).expect("open store");
        random_probabilistic_labels(&mut store, WEAKEN_SEED);
        let mut sel = selector(false);
        let resumed = with_ck(&ck_int, FaultPlan::default())
            .resume_latest_store(&model, &mut store, &val, &test, &mut sel, &ck_int)
            .expect("resume_latest_store");
        assert!(!resumed.interrupted);

        assert_bits_eq(&reference.final_w, &resumed.final_w, "final_w");
        assert_bits_eq(&reference.final_w_raw, &resumed.final_w_raw, "final_w_raw");
        assert_eq!(reference.cleaned_total, resumed.cleaned_total);
        assert_eq!(reference.rounds.len(), resumed.rounds.len());
        for (k, (a, b)) in reference.rounds.iter().zip(&resumed.rounds).enumerate() {
            let sel_a: Vec<_> = a.selected.iter().map(|s| (s.index, s.suggested)).collect();
            let sel_b: Vec<_> = b.selected.iter().map(|s| (s.index, s.suggested)).collect();
            assert_eq!(sel_a, sel_b, "round {k} selections");
        }
        // The cleaned labels live on the resumed store itself.
        let cleaned = store.num_clean();
        assert_eq!(cleaned, resumed.cleaned_total);

        for d in [&dir, &ck_ref, &ck_int] {
            std::fs::remove_dir_all(d).unwrap();
        }
    }

    #[test]
    fn torn_shard_is_rejected_at_open() {
        let (dir, _val, _test) = make_store("torn");
        let chunk = dir.join(chef_data::store::chunk_file_name(2));
        let bytes = std::fs::read(&chunk).unwrap();
        std::fs::write(&chunk, &bytes[..bytes.len() - 16]).unwrap();
        assert!(matches!(MmapStore::open(&dir), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_store_version_is_rejected_at_open() {
        let (dir, _val, _test) = make_store("version");
        let manifest = dir.join(chef_data::store::MANIFEST_FILE_V2);
        let text = std::fs::read_to_string(&manifest).unwrap();
        std::fs::write(&manifest, text.replacen("v2", "v9", 1)).unwrap();
        assert!(matches!(MmapStore::open(&dir), Err(StoreError::Version(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_passes_lazy_open_but_fails_on_first_touch() {
        // A flipped bit deep in the last shard: eager open must reject
        // it up front; a lazy open must succeed in O(manifest) work and
        // then surface `Corrupt` exactly when the damaged block is first
        // touched — after which the store stays poisoned.
        let (dir, _val, _test) = make_store("bitflip");
        let chunk = dir.join(chef_data::store::chunk_file_name(4));
        let mut bytes = std::fs::read(&chunk).unwrap();
        let last = bytes.len() - 9;
        bytes[last] ^= 0x10;
        std::fs::write(&chunk, &bytes).unwrap();

        assert!(matches!(MmapStore::open(&dir), Err(StoreError::Corrupt(_))));

        let store = MmapStore::open_with(
            &dir,
            StoreOptions {
                integrity: IntegrityMode::LazyFirstTouch,
                background_prefetch: false,
                ..StoreOptions::default()
            },
        )
        .expect("lazy open must not touch shard bytes");
        // Earlier shards are intact and verify on demand.
        store.verify_rows(0, 4 * CHUNK_ROWS).expect("clean shards");
        // First touch of the damaged shard's block reports corruption...
        assert!(matches!(
            store.verify_rows(4 * CHUNK_ROWS, store.len()),
            Err(StoreError::Corrupt(_))
        ));
        // ...and the store is poisoned from then on, even for ranges
        // that verified fine before.
        assert!(matches!(
            store.verify_rows(0, CHUNK_ROWS),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
