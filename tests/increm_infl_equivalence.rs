//! Integration: Increm-Infl returns exactly the same top-b as the Full
//! evaluation across realistic multi-round pipelines (the paper's Exp2
//! correctness observation), and its pruning grows with dataset size.

use chef_core::increm::IncremInfl;
use chef_core::influence::{influence_vector, rank_infl_with_vector, InflConfig};
use chef_core::ConstructorKind;
use chef_core::{AnnotationConfig, AnnotationPhase, LabelStrategy, ModelConstructor, Selection};
use chef_data::generate;
use chef_model::{LogisticRegression, WeightedObjective};
use chef_train::SgdConfig;
use chef_weak::{weaken_split, WeakenConfig};

struct RoundState {
    model: LogisticRegression,
    obj: WeightedObjective,
    data: chef_model::Dataset,
    val: chef_model::Dataset,
    w: Vec<f64>,
    increm: IncremInfl,
}

/// Drive the pipeline manually for `rounds` rounds and hand back the
/// state just before the next selection.
fn advance(dataset: &str, scale: usize, rounds: usize, b: usize) -> RoundState {
    let spec = chef_data::by_name(dataset, scale).unwrap();
    let mut split = generate(&spec, 31);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    let model = LogisticRegression::new(split.train.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.1);
    let sgd = SgdConfig {
        lr: 0.1,
        epochs: 12,
        batch_size: 128,
        seed: 2,
        cache_provenance: true,
    };
    let ctor = ModelConstructor::new(ConstructorKind::Retrain, sgd);
    let annotate = AnnotationPhase::new(AnnotationConfig {
        strategy: LabelStrategy::SuggestionOnly,
        error_rate: 0.05,
        seed: 4,
    });
    let mut data = split.train.clone();
    let init = ctor.initial_train(&model, &obj, &data);
    let mut trace = init.trace;
    let mut w = init.w;
    let increm = IncremInfl::initialize(&model, &data, &w);
    for _ in 0..rounds {
        let pool = data.uncleaned_indices();
        let v = influence_vector(&model, &obj, &data, &split.val, &w, &InflConfig::default());
        let (scores, _) = increm.select(&model, &data, &w, &v, &pool, b, obj.gamma);
        let selections: Vec<Selection> = scores
            .iter()
            .map(|s| Selection {
                index: s.index,
                suggested: Some(s.suggested),
            })
            .collect();
        let old = data.clone();
        let _ = annotate.annotate(&mut data, &selections);
        let changed: Vec<usize> = selections
            .iter()
            .map(|s| s.index)
            .filter(|&i| data.is_clean(i))
            .collect();
        let upd = ctor.update(&model, &obj, &old, &data, &changed, &trace);
        w = upd.w;
        trace = upd.trace;
    }
    RoundState {
        model,
        obj,
        data,
        val: split.val,
        w,
        increm,
    }
}

#[test]
fn increm_equals_full_after_five_rounds() {
    for dataset in ["MIMIC", "Twitter"] {
        let st = advance(dataset, 50, 5, 10);
        let pool = st.data.uncleaned_indices();
        let v = influence_vector(
            &st.model,
            &st.obj,
            &st.data,
            &st.val,
            &st.w,
            &InflConfig::default(),
        );
        let (inc, stats) =
            st.increm
                .select(&st.model, &st.data, &st.w, &v, &pool, 10, st.obj.gamma);
        let mut full = rank_infl_with_vector(&st.model, &st.data, &st.w, &v, &pool, st.obj.gamma);
        full.truncate(10);
        let a: Vec<usize> = inc.iter().map(|s| s.index).collect();
        let b: Vec<usize> = full.iter().map(|s| s.index).collect();
        assert_eq!(a, b, "{dataset}: increm != full ({stats:?})");
        // The suggested labels must agree as well.
        let sa: Vec<usize> = inc.iter().map(|s| s.suggested).collect();
        let sb: Vec<usize> = full.iter().map(|s| s.suggested).collect();
        assert_eq!(sa, sb, "{dataset}");
    }
}

#[test]
fn pruning_power_grows_with_dataset_size() {
    // Same workload at two scales: the larger pool prunes a larger
    // fraction (the drift ‖w_k − w0‖ shrinks relative to the influence
    // spread as B/n falls) — the mechanism behind the paper's Table 2
    // ordering. Allow generous slack; this is a trend check.
    let frac = |scale: usize| {
        let st = advance("MIMIC", scale, 3, 10);
        let pool = st.data.uncleaned_indices();
        let v = influence_vector(
            &st.model,
            &st.obj,
            &st.data,
            &st.val,
            &st.w,
            &InflConfig::default(),
        );
        let (_, stats) =
            st.increm
                .candidates(&st.model, &st.data, &st.w, &v, &pool, 10, st.obj.gamma);
        stats.candidates as f64 / stats.pool as f64
    };
    let small = frac(100); // ~780 training samples
    let large = frac(20); // ~3900 training samples
    assert!(
        large <= small + 0.10,
        "pruned fraction did not improve with size: small-scale {small:.3}, large-scale {large:.3}"
    );
}
