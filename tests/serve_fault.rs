//! Fault-injection harness for the chef-serve daemon (`--features
//! fault-inject`): kill-mid-round, torn-checkpoint-under-serve, and the
//! stale-traffic-after-resume drills, all deterministic and sleep-free.
//!
//! The acceptance scenario lives here too: N=3 concurrent tenants with
//! out-of-order annotators, one job killed at the awaiting-annotation
//! point and resumed from its `checkpoint.v1` directory, every final
//! report bit-identical to the synchronous `Pipeline::run` — including
//! the variant where a timed-out batch abstains identically to the
//! synchronous injected-timeout path.
//!
//! ci.sh runs this file in both feature configs: `--features
//! fault-inject` (default features on top) and `--no-default-features
//! --features fault-inject`.

use chef_core::{
    AnnotationConfig, CheckpointConfig, FaultPlan, InflSelector, LabelStrategy, Pipeline,
    PipelineConfig, PipelineReport, RoundReport, Telemetry,
};
use chef_linalg::Matrix;
use chef_model::{Dataset, LogisticRegression, SoftLabel, WeightedObjective};
use chef_serve::{JobManager, JobRequest, JobState, ServeError, SimAnnotator, SimAnnotatorConfig};
use chef_train::SgdConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn fixture(seed: u64) -> (LogisticRegression, Dataset, Dataset, Dataset) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut make = |count: usize, weak: bool| {
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..count {
            let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
            let sign = if c == 1 { 1.0 } else { -1.0 };
            raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
            raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
            if weak {
                let good = rng.gen_range(0.0..1.0) < 0.65;
                let p = rng.gen_range(0.55..0.95);
                let l = if good == (c == 1) {
                    SoftLabel::new(vec![1.0 - p, p])
                } else {
                    SoftLabel::new(vec![p, 1.0 - p])
                };
                labels.push(l);
            } else {
                labels.push(SoftLabel::onehot(c, 2));
            }
            truth.push(Some(c));
        }
        Dataset::new(
            Matrix::from_vec(count, 2, raw),
            labels,
            vec![!weak; count],
            truth,
            2,
        )
    };
    let train = make(120, true);
    let val = make(40, false);
    let test = make(40, false);
    (LogisticRegression::new(2, 2), train, val, test)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chef-serve-fault-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(
    faults: FaultPlan,
    checkpoint_dir: Option<&Path>,
    telemetry: Telemetry,
) -> PipelineConfig {
    PipelineConfig {
        budget: 20,
        round_size: 5,
        objective: WeightedObjective::new(0.8, 0.05),
        sgd: SgdConfig {
            lr: 0.1,
            epochs: 6,
            batch_size: 30,
            seed: 3,
            cache_provenance: true,
        },
        annotation: AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.05,
            seed: 11,
        },
        checkpoint: checkpoint_dir.map(|dir| CheckpointConfig {
            dir: dir.to_path_buf(),
            every_rounds: 1,
            keep: 3,
        }),
        faults,
        telemetry,
        ..PipelineConfig::default()
    }
}

fn normalized(rounds: &[RoundReport]) -> Vec<RoundReport> {
    rounds
        .iter()
        .cloned()
        .map(|mut r| {
            r.select_time = Duration::ZERO;
            r.update_time = Duration::ZERO;
            r.telemetry.selector.select_ms = 0.0;
            r.telemetry.annotation.annotate_ms = 0.0;
            r.telemetry.constructor.update_ms = 0.0;
            r
        })
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

fn assert_same_outcome(reference: &PipelineReport, served: &PipelineReport) {
    assert_bits_eq(&reference.final_w, &served.final_w, "final_w");
    assert_bits_eq(&reference.final_w_raw, &served.final_w_raw, "final_w_raw");
    assert_eq!(reference.cleaned_total, served.cleaned_total);
    assert_eq!(reference.early_terminated, served.early_terminated);
    assert_eq!(
        normalized(&reference.rounds),
        normalized(&served.rounds),
        "per-round reports (wall-clock normalized)"
    );
    for i in 0..reference.final_data.len() {
        assert_eq!(
            reference.final_data.is_clean(i),
            served.final_data.is_clean(i),
            "clean flag of sample {i}"
        );
        assert_eq!(
            reference.final_data.label(i),
            served.final_data.label(i),
            "label of sample {i}"
        );
    }
}

fn sync_reference(seed: u64, faults: FaultPlan, checkpoint_dir: Option<&Path>) -> PipelineReport {
    let (model, train, val, test) = fixture(seed);
    let mut sel = InflSelector::full();
    Pipeline::new(config(faults, checkpoint_dir, Telemetry::disabled()))
        .run(&model, train, &val, &test, &mut sel)
}

fn request(
    name: &str,
    seed: u64,
    faults: FaultPlan,
    checkpoint_dir: Option<&Path>,
    resume_from: Option<&Path>,
) -> JobRequest {
    let (model, train, val, test) = fixture(seed);
    JobRequest {
        name: name.to_string(),
        cfg: config(faults, checkpoint_dir, Telemetry::disabled()),
        model: Box::new(model),
        train,
        val,
        test,
        selector: Box::new(InflSelector::full()),
        deadline_ms: 1_000,
        resume_from: resume_from.map(Path::to_path_buf),
    }
}

fn sim(seed: u64) -> SimAnnotatorConfig {
    SimAnnotatorConfig {
        seed,
        latency_base_ms: 5,
        latency_jitter_ms: 9, // out-of-order within every batch
        ..SimAnnotatorConfig::default()
    }
}

/// A whole batch dropped by the annotator host abstains **identically**
/// to the synchronous pipeline's injected annotator timeout: the served
/// report is bit-identical to a sync run with
/// `FaultPlan::annotator_timeout_rounds = [1]`.
#[test]
fn dropped_batch_equals_sync_injected_timeout() {
    let reference = sync_reference(
        1,
        FaultPlan {
            annotator_timeout_rounds: vec![1],
            ..FaultPlan::default()
        },
        None,
    );
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig {
        drop_batches: vec![("tenant".into(), 1)],
        ..sim(21)
    })));
    let id = mgr.submit(request("tenant", 1, FaultPlan::default(), None, None));
    let served = mgr.wait(id).expect("job completes").report;
    assert_same_outcome(&reference, &served);
    assert_eq!(served.rounds[1].cleaned, 0, "round 1 abstained wholesale");
}

/// The acceptance scenario: three concurrent tenants under jittered
/// out-of-order annotation, the middle one killed at the
/// awaiting-annotation point of round 2 and resumed from its checkpoint
/// directory — every final report bit-identical to the synchronous run.
#[test]
fn killed_job_resumes_bit_identically_among_live_tenants() {
    let dir_victim = scratch("kill-victim");
    let dir_ref = scratch("kill-ref");
    let mgr = JobManager::new(Box::new(SimAnnotator::new(sim(33))));

    let alpha = mgr.submit(request("alpha", 1, FaultPlan::default(), None, None));
    let victim = mgr.submit(request(
        "victim",
        2,
        FaultPlan {
            kill_mid_round: Some(2),
            ..FaultPlan::default()
        },
        Some(&dir_victim),
        None,
    ));
    let gamma = mgr.submit(request("gamma", 3, FaultPlan::default(), None, None));

    // The victim dies mid-round; rounds 0 and 1 reached its checkpoint.
    match mgr.wait(victim) {
        Err(ServeError::JobFailed(msg)) => {
            assert!(msg.contains("killed mid-round 2"), "got: {msg}")
        }
        other => panic!("victim should fail, got {other:?}"),
    }
    let status = mgr.status(victim).expect("victim exists");
    assert_eq!(status.state, JobState::Failed);
    assert_eq!(status.round, 2, "two rounds completed before the kill");

    // Resubmit under the same tenant name, resuming from the directory.
    let resumed = mgr.submit(request(
        "victim",
        2,
        FaultPlan::default(),
        Some(&dir_victim),
        Some(&dir_victim),
    ));

    let report_alpha = mgr.wait(alpha).expect("alpha completes").report;
    let report_victim = mgr.wait(resumed).expect("resumed victim completes").report;
    let report_gamma = mgr.wait(gamma).expect("gamma completes").report;

    assert!(!report_victim.interrupted);
    assert_eq!(report_victim.rounds.len(), 4);
    assert_same_outcome(
        &sync_reference(1, FaultPlan::default(), None),
        &report_alpha,
    );
    assert_same_outcome(
        &sync_reference(2, FaultPlan::default(), Some(&dir_ref)),
        &report_victim,
    );
    assert_same_outcome(
        &sync_reference(3, FaultPlan::default(), None),
        &report_gamma,
    );
    if mgr.telemetry().is_enabled() {
        assert_eq!(mgr.telemetry().counter("serve.jobs_killed"), 1);
        assert_eq!(mgr.telemetry().counter("serve.jobs_completed"), 3);
    }
    let _ = std::fs::remove_dir_all(&dir_victim);
    let _ = std::fs::remove_dir_all(&dir_ref);
}

/// Torn checkpoint under serve: the generation written after round 1 is
/// truncated mid-file, the job is killed at round 2, and the resume must
/// fall back to the round-0 generation (counted in
/// `resume.corrupt_fallbacks`), re-run rounds 1-3, and still match the
/// uninterrupted run bit-for-bit.
#[test]
fn torn_checkpoint_under_serve_falls_back_a_generation() {
    let dir = scratch("torn-serve");
    let dir_ref = scratch("torn-serve-ref");
    let mgr = JobManager::new(Box::new(SimAnnotator::new(sim(44))));

    let victim = mgr.submit(request(
        "torn",
        2,
        FaultPlan {
            torn_write_after_round: Some(1),
            kill_mid_round: Some(2),
            ..FaultPlan::default()
        },
        Some(&dir),
        None,
    ));
    assert!(matches!(mgr.wait(victim), Err(ServeError::JobFailed(_))));

    // Resume: newest generation is torn, the checksum catches it, the
    // round-0 generation carries the restart.
    let resume_tel = Telemetry::enabled();
    let mut req = request("torn", 2, FaultPlan::default(), Some(&dir), Some(&dir));
    req.cfg.telemetry = resume_tel.clone();
    let resumed = mgr.submit(req);
    let report = mgr.wait(resumed).expect("resumed job completes").report;
    assert!(!report.interrupted);
    assert_same_outcome(
        &sync_reference(2, FaultPlan::default(), Some(&dir_ref)),
        &report,
    );
    if resume_tel.is_enabled() {
        assert!(
            resume_tel.counter("resume.corrupt_fallbacks") >= 1,
            "the torn generation must have been skipped"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_ref);
}

/// Stale traffic after a resume: the host re-delivers the dead job's
/// stragglers (same tenant name, same round number as the resumed job's
/// first batch). Determinism makes them carry identical outcomes, the
/// slot-filling logic absorbs them idempotently, and the result is still
/// bit-identical.
#[test]
fn stale_replies_after_resume_are_absorbed() {
    let dir = scratch("stale-resume");
    let dir_ref = scratch("stale-resume-ref");
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig {
        replay_stale: true,
        ..sim(55)
    })));

    let victim = mgr.submit(request(
        "ghosted",
        3,
        FaultPlan {
            kill_mid_round: Some(2),
            ..FaultPlan::default()
        },
        Some(&dir),
        None,
    ));
    assert!(matches!(mgr.wait(victim), Err(ServeError::JobFailed(_))));

    let resumed = mgr.submit(request(
        "ghosted",
        3,
        FaultPlan::default(),
        Some(&dir),
        Some(&dir),
    ));
    let report = mgr.wait(resumed).expect("resumed job completes").report;
    assert_same_outcome(
        &sync_reference(3, FaultPlan::default(), Some(&dir_ref)),
        &report,
    );
    if mgr.telemetry().is_enabled() {
        // The predecessor's round-2 replies arrive first and, because
        // the restored loop re-selects the identical batch, fill every
        // resumed round-2 slot — `collect_round` completes on stale
        // traffic alone. The job's own fresh replies are then strays the
        // next round boundary drains as `serve.replies_late` (they never
        // reach the duplicate branch: the collect loop exits the moment
        // the batch is full). Vote determinism per sample index is what
        // makes the stale fills outcome-identical, which the
        // `assert_same_outcome` above already proved.
        assert!(
            mgr.telemetry().counter("serve.replies_late") >= 5,
            "stale replay should have left a full batch of stray replies"
        );
        assert_eq!(
            mgr.telemetry().counter("serve.deadline_expirations"),
            0,
            "stale fills must satisfy the round before its deadline"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_ref);
}

/// Sync-side sanity: the synchronous driver ignores `kill_mid_round`
/// entirely (it has no mid-round await point) — a plan carrying it runs
/// to completion and matches a plan without it.
#[test]
fn sync_driver_ignores_kill_mid_round() {
    let clean = sync_reference(1, FaultPlan::default(), None);
    let with_kill = sync_reference(
        1,
        FaultPlan {
            kill_mid_round: Some(2),
            ..FaultPlan::default()
        },
        None,
    );
    assert!(!with_kill.interrupted);
    assert_same_outcome(&clean, &with_kill);
}
