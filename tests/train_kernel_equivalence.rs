//! Equivalence tests for the batched training/replay engine.
//!
//! Three guarantees from DESIGN.md §13 are pinned here, in both feature
//! configurations (`--features parallel` and `--no-default-features`):
//!
//! 1. the GEMM-backed `grad_block` (logistic regression) and the generic
//!    per-sample fallback (MLP) agree with a reference per-sample
//!    weighted gradient sum to ≤1e-10;
//! 2. the full SGD trajectory through `WeightedObjective::batch_grad` is
//!    *bit-identical* between the dispatched path and the always-compiled
//!    serial twin — every cached `w_t` and `∇F(w_t, B_t)`;
//! 3. the flat `TraceStore` provenance arena replays through
//!    DeltaGrad-L exactly as the old per-iteration `Vec<Vec<f64>>`
//!    clones did: rows match a reference nested-vector capture bitwise,
//!    and a trace rebuilt from that nested capture produces a bitwise
//!    identical DeltaGrad outcome.

use chef_linalg::{vector, Matrix, Workspace};
use chef_model::{
    Dataset, KernelPath, LogisticRegression, Mlp, Model, SoftLabel, WeightedObjective,
};
use chef_train::{
    deltagrad_update, train, BatchPlan, DeltaGradConfig, SgdConfig, TraceStore, TrainTrace,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: usize = 1200;
const DIM: usize = 6;
const CLASSES: usize = 3;
const GAMMA: f64 = 0.8;

/// Multiclass weak-label fixture large enough that full-dataset batches
/// cross the parallel gradient grain (512) and several `GRAD_BLOCK`
/// boundaries.
fn fixture(seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut raw = Vec::with_capacity(N * DIM);
    let mut labels = Vec::with_capacity(N);
    let mut truth = Vec::with_capacity(N);
    for i in 0..N {
        let c = i % CLASSES;
        for d in 0..DIM {
            let center = if d % CLASSES == c { 1.2 } else { -0.4 };
            raw.push(center + rng.gen_range(-1.0..1.0));
        }
        let mut probs = vec![0.0; CLASSES];
        let conf = rng.gen_range(0.5..0.9);
        for (k, p) in probs.iter_mut().enumerate() {
            *p = if k == c {
                conf
            } else {
                (1.0 - conf) / (CLASSES - 1) as f64
            };
        }
        labels.push(SoftLabel::new(probs));
        truth.push(Some(c));
    }
    Dataset::new(
        Matrix::from_vec(N, DIM, raw),
        labels,
        vec![false; N],
        truth,
        CLASSES,
    )
}

fn random_w(model: &dyn Model, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..model.num_params())
        .map(|_| rng.gen_range(-0.5..0.5))
        .collect()
}

/// Reference minibatch gradient: the per-sample `grad_ws` loop that
/// `grad_block` replaced, summed in batch order — exactly the default
/// trait implementation.
fn reference_weighted_grad_sum(
    model: &dyn Model,
    data: &Dataset,
    batch: &[usize],
    gamma: f64,
    w: &[f64],
) -> Vec<f64> {
    let m = model.num_params();
    let mut out = vec![0.0; m];
    let mut g = vec![0.0; m];
    let mut ws = Workspace::new();
    for &i in batch {
        model.grad_ws(w, data.feature(i), data.label(i), &mut g, &mut ws);
        vector::axpy(data.weight(i, gamma), &g, &mut out);
    }
    out
}

#[test]
fn logreg_grad_block_matches_per_sample_reference() {
    let data = fixture(31);
    let model = LogisticRegression::new(DIM, CLASSES);
    let w = random_w(&model, 32);
    let mut ws = Workspace::new();
    // Consecutive (borrowed feature rows) and strided (gathered) batches.
    let consecutive: Vec<usize> = (100..100 + 700).collect();
    let strided: Vec<usize> = (0..700).map(|r| r * 7 % N).collect();
    for batch in [&consecutive, &strided] {
        let mut got = vec![0.0; model.num_params()];
        let path = model.grad_block(&w, &data, batch, GAMMA, &mut got, &mut ws);
        assert_eq!(path, KernelPath::Gemm);
        let want = reference_weighted_grad_sum(&model, &data, batch, GAMMA, &w);
        for (g, r) in got.iter().zip(&want) {
            assert!((g - r).abs() <= 1e-10 * (1.0 + r.abs()), "{g} vs {r}");
        }
    }
}

#[test]
fn mlp_grad_block_falls_back_to_per_sample_loop() {
    let data = fixture(33);
    let model = Mlp::new(DIM, 4, CLASSES);
    let w = random_w(&model, 34);
    let mut ws = Workspace::new();
    let batch: Vec<usize> = (0..600).map(|r| r * 11 % N).collect();
    let mut got = vec![0.0; model.num_params()];
    let path = model.grad_block(&w, &data, &batch, GAMMA, &mut got, &mut ws);
    assert_eq!(path, KernelPath::PerSample);
    // The fallback *is* the per-sample loop, so agreement is exact.
    let want = reference_weighted_grad_sum(&model, &data, &batch, GAMMA, &w);
    assert_eq!(got, want);
}

#[test]
fn batch_grad_dispatch_is_bit_identical_to_serial_twin() {
    let data = fixture(35);
    let model = LogisticRegression::new(DIM, CLASSES);
    let obj = WeightedObjective::new(GAMMA, 0.03);
    let w = random_w(&model, 36);
    for n in [64, 511, 512, 1024, N] {
        let batch: Vec<usize> = (0..n).collect();
        let mut dispatched = vec![0.0; model.num_params()];
        let mut serial = vec![0.0; model.num_params()];
        obj.batch_grad(&model, &data, &batch, &w, &mut dispatched);
        obj.batch_grad_serial(&model, &data, &batch, &w, &mut serial);
        assert_eq!(dispatched, serial, "batch len {n}");
    }
}

#[test]
fn sgd_trajectory_is_bit_identical_to_serial_replay() {
    // `train` runs on the dispatched `batch_grad`; a hand-rolled loop on
    // the serial twin must reproduce every iterate exactly, including
    // with batches above the parallel grain.
    let data = fixture(37);
    let model = LogisticRegression::new(DIM, CLASSES);
    let obj = WeightedObjective::new(GAMMA, 0.02);
    let cfg = SgdConfig {
        lr: 0.1,
        epochs: 3,
        batch_size: 600,
        seed: 9,
        cache_provenance: true,
    };
    let out = train(&model, &obj, &data, &model.init_params(), &cfg);
    let trace = out.trace.unwrap();

    let plan = BatchPlan::new(data.len(), cfg.batch_size, cfg.epochs, cfg.seed);
    let mut w = model.init_params();
    let mut g = vec![0.0; model.num_params()];
    for (t, batch) in plan.iter() {
        obj.batch_grad_serial(&model, &data, &batch, &w, &mut g);
        assert_eq!(w.as_slice(), trace.params.row(t), "params, iteration {t}");
        assert_eq!(g.as_slice(), trace.grads.row(t), "grads, iteration {t}");
        vector::axpy(-cfg.lr, &g, &mut w);
    }
    assert_eq!(w, out.w);
}

#[test]
fn trace_store_replays_deltagrad_like_nested_vec_clones() {
    let data = fixture(38);
    let model = LogisticRegression::new(DIM, CLASSES);
    let obj = WeightedObjective::new(GAMMA, 0.02);
    let m = model.num_params();
    let cfg = SgdConfig {
        epochs: 3,
        batch_size: 150,
        cache_provenance: true,
        ..SgdConfig::default()
    };
    let out = train(&model, &obj, &data, &model.init_params(), &cfg);
    let trace = out.trace.unwrap();

    // The arena's rows are exactly the per-iteration clones the old
    // `Vec<Vec<f64>>` cache would have stored.
    let nested_params: Vec<Vec<f64>> = (0..trace.params.len())
        .map(|t| trace.params.row(t).to_vec())
        .collect();
    let nested_grads: Vec<Vec<f64>> = (0..trace.grads.len())
        .map(|t| trace.grads.row(t).to_vec())
        .collect();

    // Flip a handful of labels to deterministic clean ones.
    let mut new_data = data.clone();
    let changed: Vec<usize> = (0..40).map(|k| k * 29 % N).collect();
    for &i in &changed {
        let c = new_data.ground_truth(i).unwrap();
        new_data.clean_label(i, SoftLabel::onehot(c, CLASSES));
    }

    // Replaying from a trace rebuilt out of the nested clones must be
    // bitwise indistinguishable from replaying the arena-backed trace.
    let rebuilt = TrainTrace {
        plan: trace.plan.clone(),
        params: TraceStore::from_flat(m, nested_params.concat()),
        grads: TraceStore::from_flat(m, nested_grads.concat()),
        epoch_checkpoints: trace.epoch_checkpoints.clone(),
        lr: trace.lr,
    };
    let dg = DeltaGradConfig::default();
    let a = deltagrad_update(&model, &obj, &data, &new_data, &changed, &trace, &dg);
    let b = deltagrad_update(&model, &obj, &data, &new_data, &changed, &rebuilt, &dg);
    assert_eq!(a.w, b.w);
    assert_eq!(a.trace.params, b.trace.params);
    assert_eq!(a.trace.grads, b.trace.grads);
    assert_eq!(a.trace.epoch_checkpoints, b.trace.epoch_checkpoints);
    assert_eq!(a.stats.explicit_iters, b.stats.explicit_iters);
    assert_eq!(a.stats.approx_iters, b.stats.approx_iters);
}

#[test]
fn val_grad_dispatch_is_bit_identical_to_serial_twin() {
    let data = fixture(39);
    let model = LogisticRegression::new(DIM, CLASSES);
    let obj = WeightedObjective::new(GAMMA, 0.05);
    let w = random_w(&model, 40);
    let mut dispatched = vec![0.0; model.num_params()];
    let mut serial = vec![0.0; model.num_params()];
    obj.val_grad(&model, &data, &w, &mut dispatched);
    obj.val_grad_serial(&model, &data, &w, &mut serial);
    assert_eq!(dispatched, serial);
}
