//! Integration: the parallel selector hot path is equivalent to the
//! serial one.
//!
//! `rank_infl_with_vector` and `IncremInfl::candidates` dispatch to the
//! thread pool when the `parallel` feature is on; their `*_serial`
//! twins are always compiled. Both must produce the same ranked
//! indices and suggested labels from the same seeds, with scores
//! drifting by at most 1e-10 (per-candidate scores carry no
//! cross-sample floating-point reduction, so in practice they are
//! bit-identical — the tolerance covers only the model-layer gradient
//! reductions feeding the shared influence vector). ci.sh runs this
//! test with the feature both enabled and disabled; in the disabled
//! configuration every pair trivially agrees, which pins the serial
//! fallback as the semantic reference.

use chef_core::increm::IncremInfl;
use chef_core::influence::{
    influence_vector, rank_infl_with_vector, rank_infl_with_vector_serial, InflConfig,
};
use chef_data::generate;
use chef_model::{Dataset, LogisticRegression, WeightedObjective};
use chef_train::{train, SgdConfig};
use chef_weak::{weaken_split, WeakenConfig};

struct Fixture {
    model: LogisticRegression,
    obj: WeightedObjective,
    data: Dataset,
    val: Dataset,
    w0: Vec<f64>,
    w: Vec<f64>,
    v: Vec<f64>,
}

/// A weakly-labeled problem large enough that every parallel grain gate
/// in chef-model (512) and chef-core (128) actually engages.
fn fixture(seed: u64) -> Fixture {
    let spec = chef_data::by_name("MIMIC", 20).unwrap();
    let mut split = generate(&spec, seed);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    let model = LogisticRegression::new(split.train.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.1);
    let cfg = SgdConfig {
        lr: 0.1,
        epochs: 8,
        batch_size: 1024,
        seed: 7,
        cache_provenance: false,
    };
    let w_init = vec![0.0; chef_model::Model::num_params(&model)];
    let w0 = train(&model, &obj, &split.train, &w_init, &cfg).w;
    // Drift a little past w0 so the Increm-Infl bounds are non-trivial.
    let drift = SgdConfig {
        lr: 0.05,
        epochs: 2,
        batch_size: 1024,
        seed: 8,
        cache_provenance: false,
    };
    let w = train(&model, &obj, &split.train, &w0, &drift).w;
    let v = influence_vector(
        &model,
        &obj,
        &split.train,
        &split.val,
        &w,
        &InflConfig::default(),
    );
    Fixture {
        model,
        obj,
        data: split.train,
        val: split.val,
        w0,
        w,
        v,
    }
}

#[test]
fn rank_infl_parallel_equals_serial() {
    let f = fixture(17);
    let pool = f.data.uncleaned_indices();
    assert!(pool.len() >= 512, "fixture too small: {}", pool.len());
    let par = rank_infl_with_vector(&f.model, &f.data, &f.w, &f.v, &pool, f.obj.gamma);
    let ser = rank_infl_with_vector_serial(&f.model, &f.data, &f.w, &f.v, &pool, f.obj.gamma);
    assert_eq!(par.len(), ser.len());
    for (a, b) in par.iter().zip(&ser) {
        assert_eq!(a.index, b.index, "ranked order diverged");
        assert_eq!(a.suggested, b.suggested, "sample {}", a.index);
        assert!(
            (a.score - b.score).abs() <= 1e-10,
            "sample {}: {} vs {}",
            a.index,
            a.score,
            b.score
        );
    }
}

#[test]
fn increm_candidates_parallel_equals_serial() {
    let f = fixture(23);
    let inc = IncremInfl::initialize(&f.model, &f.data, &f.w0);
    let pool = f.data.uncleaned_indices();
    let b = 25;
    let (cp, sp) = inc.candidates(&f.model, &f.data, &f.w, &f.v, &pool, b, f.obj.gamma);
    let (cs, ss) = inc.candidates_serial(&f.model, &f.data, &f.w, &f.v, &pool, b, f.obj.gamma);
    assert_eq!(cp, cs, "candidate sets diverged");
    assert_eq!(sp.pool, ss.pool);
    assert_eq!(sp.candidates, ss.candidates);

    // The full Increm-Infl round built on top must agree with a serial
    // Full evaluation in both indices and suggested labels.
    let (mut ranked, _) = inc.select(&f.model, &f.data, &f.w, &f.v, &pool, b, f.obj.gamma);
    ranked.truncate(b);
    let mut full = rank_infl_with_vector_serial(&f.model, &f.data, &f.w, &f.v, &pool, f.obj.gamma);
    full.truncate(b);
    let ai: Vec<usize> = ranked.iter().map(|s| s.index).collect();
    let bi: Vec<usize> = full.iter().map(|s| s.index).collect();
    assert_eq!(ai, bi);
    let al: Vec<usize> = ranked.iter().map(|s| s.suggested).collect();
    let bl: Vec<usize> = full.iter().map(|s| s.suggested).collect();
    assert_eq!(al, bl);
}

#[test]
fn parallel_results_are_reproducible_run_to_run() {
    // The rayon shim chunks by input length only and reduces in chunk
    // order, so repeated parallel evaluations must agree bit-for-bit —
    // this is what rules out thread-count-dependent float drift.
    let f = fixture(29);
    let pool = f.data.uncleaned_indices();
    let v2 = influence_vector(
        &f.model,
        &f.obj,
        &f.data,
        &f.val,
        &f.w,
        &InflConfig::default(),
    );
    for (a, b) in f.v.iter().zip(&v2) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "influence vector not reproducible"
        );
    }
    let r1 = rank_infl_with_vector(&f.model, &f.data, &f.w, &f.v, &pool, f.obj.gamma);
    let r2 = rank_infl_with_vector(&f.model, &f.data, &f.w, &f.v, &pool, f.obj.gamma);
    for (a, b) in r1.iter().zip(&r2) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.suggested, b.suggested);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
}
