//! Golden-file tests for the `serve-events.v1` lifecycle-event schema
//! (DESIGN.md §16.4).
//!
//! Mirrors the guarantees `schema_roundtrip.rs` pins for the other
//! versioned formats:
//!
//! 1. **Byte fidelity** — a fully populated event log exports
//!    byte-identically to the committed golden file, and export → parse
//!    → re-export is the identity (for the golden document and for a
//!    log produced by a *live* daemon job);
//! 2. **Version rejection** — a document declaring an unknown schema
//!    version is refused with an error naming both the found and the
//!    supported version, never a panic.
//!
//! Regenerate the golden file after an *intentional* format change with
//! `CHEF_REGEN_GOLDEN=1 cargo test -p chef-serve --test serve_events_schema`.

use chef_serve::{
    export_events, parse_events, EventKind, JobEvent, JobManager, SimAnnotator, SimAnnotatorConfig,
    EVENTS_SCHEMA_VERSION,
};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .join("tests/golden/serve_events_v1_golden.json")
}

fn regen() -> bool {
    std::env::var_os("CHEF_REGEN_GOLDEN").is_some()
}

/// A hand-built log exercising every field shape the writer can emit:
/// all nine event kinds, round-scoped and unscoped events, present and
/// absent detail strings (including characters JSON must escape).
fn golden_events() -> Vec<JobEvent> {
    let ev = |seq, kind, round, detail: &str| JobEvent {
        seq,
        kind,
        round,
        detail: detail.to_string(),
    };
    vec![
        ev(0, EventKind::JobStart, None, ""),
        ev(1, EventKind::RoundStart, Some(0), "selected=5"),
        ev(
            2,
            EventKind::AwaitingAnnotation,
            Some(0),
            "deadline_ms=1000",
        ),
        ev(
            3,
            EventKind::RoundComplete,
            Some(0),
            "cleaned=4 ambiguous=1",
        ),
        ev(4, EventKind::Paused, Some(1), ""),
        ev(5, EventKind::Resumed, Some(1), ""),
        ev(6, EventKind::RoundStart, Some(1), "selected=5"),
        ev(
            7,
            EventKind::AwaitingAnnotation,
            Some(1),
            "deadline_ms=1000",
        ),
        ev(
            8,
            EventKind::Error,
            Some(1),
            "killed mid-round 1 \"injected\"\n",
        ),
        ev(9, EventKind::Cancelled, None, ""),
        ev(
            10,
            EventKind::JobComplete,
            None,
            "rounds=2 cleaned_total=8 interrupted=true",
        ),
    ]
}

#[test]
fn export_matches_golden_byte_for_byte() {
    let doc = export_events("golden-tenant", &golden_events());
    let path = golden_path();
    if regen() {
        std::fs::write(&path, &doc).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect(
        "golden file missing — run CHEF_REGEN_GOLDEN=1 cargo test -p chef-serve --test serve_events_schema",
    );
    assert_eq!(
        doc, golden,
        "serve-events.v1 export drifted from the committed golden file"
    );
}

#[test]
fn golden_document_roundtrips() {
    if regen() {
        return;
    }
    let golden = std::fs::read_to_string(golden_path()).expect(
        "golden file missing — run CHEF_REGEN_GOLDEN=1 cargo test -p chef-serve --test serve_events_schema",
    );
    let (job, events) = parse_events(&golden).expect("golden document parses");
    assert_eq!(job, "golden-tenant");
    assert_eq!(events, golden_events());
    assert_eq!(
        export_events(&job, &events),
        golden,
        "parse → re-export must be byte-identical"
    );
}

/// The export path wired through a *live* daemon job (spec-submitted,
/// sim-annotated) also round-trips, and its log is schema-complete:
/// dense `seq`, known kinds only, a `job_start`/`job_complete` envelope.
#[test]
fn live_job_event_log_roundtrips() {
    let mgr = JobManager::new(Box::new(SimAnnotator::new(SimAnnotatorConfig {
        seed: 9,
        latency_base_ms: 3,
        latency_jitter_ms: 5,
        ..SimAnnotatorConfig::default()
    })));
    let spec =
        r#"{"name":"live","dataset":"MIMIC","scale":30,"seed":5,"budget":10,"round_size":5}"#;
    let req = chef_serve::job_request_from_spec(spec).expect("spec parses");
    let id = mgr.submit(req);
    mgr.wait(id).expect("job completes");

    let events = mgr.events(id).expect("job has an event log");
    let doc = export_events("live", &events);
    let (job, parsed) = parse_events(&doc).expect("live export parses");
    assert_eq!(job, "live");
    assert_eq!(parsed, events);
    assert_eq!(export_events(&job, &parsed), doc);

    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "seq must be dense from 0");
    }
    assert_eq!(events.first().map(|e| e.kind), Some(EventKind::JobStart));
    assert_eq!(events.last().map(|e| e.kind), Some(EventKind::JobComplete));
}

#[test]
fn unknown_version_rejected_naming_both_versions() {
    let future = r#"{"schema":"serve-events.v2","job":"x","events":[]}"#;
    let err = parse_events(future).expect_err("future version must be refused");
    let msg = err.to_string();
    assert!(
        msg.contains("serve-events.v2") && msg.contains(EVENTS_SCHEMA_VERSION),
        "error must name found and supported versions, got: {msg}"
    );

    let missing = r#"{"job":"x","events":[]}"#;
    assert!(parse_events(missing).is_err(), "schema field is mandatory");
}

/// Unknown event *kinds* inside a well-versioned document are also
/// structured errors — forward-compatibility is explicit, not silent.
#[test]
fn unknown_event_kind_rejected() {
    let doc = format!(
        r#"{{"schema":"{EVENTS_SCHEMA_VERSION}","job":"x","events":[{{"seq":0,"kind":"warp_core_breach"}}]}}"#
    );
    let err = parse_events(&doc).expect_err("unknown kind must be refused");
    assert!(err.to_string().contains("warp_core_breach"));
}
