//! Equivalence tests for the batched, structure-aware influence kernels.
//!
//! The GEMM-backed `score_block`/`hvp_block` fast path (logistic
//! regression) and the generic per-sample fallback (MLP) must produce
//! the same rankings, suggested labels and Hessian-vector products as
//! the reference per-sample implementations — to ~1e-10 for the closed
//! form, in both feature configurations (`--features parallel` and
//! `--no-default-features`). The pool is sized above every parallel
//! grain so the threaded block dispatch is exercised when compiled in.

use chef_core::{
    rank_infl_top_b, rank_infl_with_vector, rank_infl_with_vector_per_sample,
    rank_infl_with_vector_serial, InflScore,
};
use chef_linalg::{vector, Matrix, Workspace};
use chef_model::{
    Dataset, KernelPath, LogisticRegression, Mlp, Model, SoftLabel, WeightedObjective,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: usize = 600;
const DIM: usize = 7;
const CLASSES: usize = 3;
const GAMMA: f64 = 0.8;

/// Multiclass weak-label fixture large enough to cross the parallel
/// scoring grain (128) and several `SCORE_BLOCK` boundaries.
fn fixture(seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut raw = Vec::with_capacity(N * DIM);
    let mut labels = Vec::with_capacity(N);
    let mut truth = Vec::with_capacity(N);
    for i in 0..N {
        let c = i % CLASSES;
        for d in 0..DIM {
            let center = if d % CLASSES == c { 1.5 } else { -0.5 };
            raw.push(center + rng.gen_range(-1.0..1.0));
        }
        let mut probs = vec![0.0; CLASSES];
        let conf = rng.gen_range(0.5..0.9);
        for (k, p) in probs.iter_mut().enumerate() {
            *p = if k == c {
                conf
            } else {
                (1.0 - conf) / (CLASSES - 1) as f64
            };
        }
        labels.push(SoftLabel::new(probs));
        truth.push(Some(c));
    }
    Dataset::new(
        Matrix::from_vec(N, DIM, raw),
        labels,
        vec![false; N],
        truth,
        CLASSES,
    )
}

/// A non-degenerate parameter/influence-vector pair (no training needed:
/// the kernels must agree at *any* `w`, `v`).
fn w_and_v(model: &dyn Model, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..model.num_params())
        .map(|_| rng.gen_range(-0.5..0.5))
        .collect();
    let v: Vec<f64> = (0..model.num_params())
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    (w, v)
}

fn assert_rankings_close(batched: &[InflScore], reference: &[InflScore], tol: f64) {
    assert_eq!(batched.len(), reference.len());
    for (b, r) in batched.iter().zip(reference) {
        assert_eq!(b.index, r.index, "ranking order diverged");
        assert_eq!(
            b.suggested, r.suggested,
            "suggested label diverged at {}",
            b.index
        );
        assert!(
            (b.score - r.score).abs() <= tol * (1.0 + r.score.abs()),
            "index {}: batched {} vs reference {}",
            b.index,
            b.score,
            r.score
        );
    }
}

#[test]
fn logreg_reports_gemm_kernel_and_mlp_falls_back() {
    let logreg = LogisticRegression::new(DIM, CLASSES);
    let mlp = Mlp::new(DIM, 4, CLASSES);
    assert_eq!(logreg.scoring_kernel(), KernelPath::Gemm);
    assert_eq!(mlp.scoring_kernel(), KernelPath::PerSample);
    assert_eq!(KernelPath::Gemm.name(), "gemm");
    assert_eq!(KernelPath::PerSample.name(), "per_sample");
}

#[test]
fn logreg_batched_ranking_matches_per_sample_reference() {
    let data = fixture(11);
    let model = LogisticRegression::new(DIM, CLASSES);
    let (w, v) = w_and_v(&model, 12);
    let pool = data.uncleaned_indices();
    let batched = rank_infl_with_vector(&model, &data, &w, &v, &pool, GAMMA);
    let reference = rank_infl_with_vector_per_sample(&model, &data, &w, &v, &pool, GAMMA);
    assert_rankings_close(&batched, &reference, 1e-10);
}

#[test]
fn logreg_batched_parallel_and_serial_are_bit_identical() {
    let data = fixture(13);
    let model = LogisticRegression::new(DIM, CLASSES);
    let (w, v) = w_and_v(&model, 14);
    let pool = data.uncleaned_indices();
    let dispatched = rank_infl_with_vector(&model, &data, &w, &v, &pool, GAMMA);
    let serial = rank_infl_with_vector_serial(&model, &data, &w, &v, &pool, GAMMA);
    assert_eq!(dispatched.len(), serial.len());
    for (a, b) in dispatched.iter().zip(&serial) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.suggested, b.suggested);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
}

#[test]
fn gamma_one_drops_upweight_term_in_batched_path() {
    // With γ = 1 the (1−γ) label-gradient term must vanish from the
    // batched scores exactly as it does from the per-sample path.
    let data = fixture(15);
    let model = LogisticRegression::new(DIM, CLASSES);
    let (w, v) = w_and_v(&model, 16);
    let pool = data.uncleaned_indices();
    let batched = rank_infl_with_vector(&model, &data, &w, &v, &pool, 1.0);
    let reference = rank_infl_with_vector_per_sample(&model, &data, &w, &v, &pool, 1.0);
    assert_rankings_close(&batched, &reference, 1e-10);
}

#[test]
fn mlp_fallback_ranking_matches_per_sample_reference() {
    let data = fixture(17);
    let model = Mlp::new(DIM, 4, CLASSES);
    let (w, v) = w_and_v(&model, 18);
    let pool = data.uncleaned_indices();
    let batched = rank_infl_with_vector(&model, &data, &w, &v, &pool, GAMMA);
    let reference = rank_infl_with_vector_per_sample(&model, &data, &w, &v, &pool, GAMMA);
    // The fallback routes through the same per-sample gradients, so the
    // agreement is exact up to summation order (identical here).
    assert_rankings_close(&batched, &reference, 1e-12);
}

#[test]
fn top_b_selection_equals_full_sort_prefix() {
    let data = fixture(19);
    let model = LogisticRegression::new(DIM, CLASSES);
    let (w, v) = w_and_v(&model, 20);
    let pool = data.uncleaned_indices();
    let full = rank_infl_with_vector(&model, &data, &w, &v, &pool, GAMMA);
    for b in [0, 1, 7, 128, N, N + 5] {
        let top = rank_infl_top_b(&model, &data, &w, &v, &pool, GAMMA, b);
        assert_eq!(top.len(), b.min(N), "b = {b}");
        for (t, f) in top.iter().zip(&full) {
            assert_eq!(t.index, f.index, "b = {b}");
            assert_eq!(t.suggested, f.suggested);
            assert_eq!(t.score.to_bits(), f.score.to_bits());
        }
    }
}

/// Reference HVP: the allocating per-sample loop `batch_hvp` replaced.
fn reference_batch_hvp(
    model: &dyn Model,
    obj: &WeightedObjective,
    data: &Dataset,
    batch: &[usize],
    w: &[f64],
    v: &[f64],
) -> Vec<f64> {
    let m = model.num_params();
    let mut out = vec![0.0; m];
    let mut h = vec![0.0; m];
    for &i in batch {
        model.hvp(w, data.feature(i), data.label(i), v, &mut h);
        vector::axpy(data.weight(i, obj.gamma), &h, &mut out);
    }
    if !batch.is_empty() {
        vector::scale(1.0 / batch.len() as f64, &mut out);
    }
    vector::axpy(obj.l2, v, &mut out);
    out
}

#[test]
fn logreg_blocked_hvp_matches_per_sample_reference() {
    let data = fixture(21);
    let model = LogisticRegression::new(DIM, CLASSES);
    let obj = WeightedObjective::new(GAMMA, 0.05);
    let (w, v) = w_and_v(&model, 22);
    let batch: Vec<usize> = (0..N).collect();
    let mut got = vec![0.0; model.num_params()];
    obj.batch_hvp(&model, &data, &batch, &w, &v, &mut got);
    let want = reference_batch_hvp(&model, &obj, &data, &batch, &w, &v);
    for (g, r) in got.iter().zip(&want) {
        assert!((g - r).abs() <= 1e-10 * (1.0 + r.abs()), "{g} vs {r}");
    }
    // Serial twin agrees too.
    let mut serial = vec![0.0; model.num_params()];
    obj.batch_hvp_serial(&model, &data, &batch, &w, &v, &mut serial);
    for (g, r) in serial.iter().zip(&want) {
        assert!((g - r).abs() <= 1e-10 * (1.0 + r.abs()), "{g} vs {r}");
    }
}

#[test]
fn mlp_blocked_hvp_matches_per_sample_reference() {
    let data = fixture(23);
    let model = Mlp::new(DIM, 4, CLASSES);
    let obj = WeightedObjective::new(GAMMA, 0.05);
    let (w, v) = w_and_v(&model, 24);
    let batch: Vec<usize> = (0..N).collect();
    let mut got = vec![0.0; model.num_params()];
    obj.batch_hvp(&model, &data, &batch, &w, &v, &mut got);
    let want = reference_batch_hvp(&model, &obj, &data, &batch, &w, &v);
    for (g, r) in got.iter().zip(&want) {
        assert!((g - r).abs() <= 1e-10 * (1.0 + r.abs()), "{g} vs {r}");
    }
}

#[test]
fn raw_score_block_contract_holds_for_both_models() {
    // The trait contract: class_dots[r*C + c] = vᵀ∇_w(−log p⁽ᶜ⁾),
    // label_dots[r] = vᵀ∇_wF — checked against direct gradient dots.
    let data = fixture(25);
    let models: [(&dyn Model, KernelPath, f64); 2] = [
        (
            &LogisticRegression::new(DIM, CLASSES),
            KernelPath::Gemm,
            1e-10,
        ),
        (&Mlp::new(DIM, 4, CLASSES), KernelPath::PerSample, 1e-12),
    ];
    for (model, expect_path, tol) in models {
        let (w, v) = w_and_v(model, 26);
        let block: Vec<usize> = (0..64).map(|r| r * 9 % N).collect();
        let mut class_dots = vec![0.0; block.len() * CLASSES];
        let mut label_dots = vec![0.0; block.len()];
        let mut ws = Workspace::new();
        let path = model.score_block(
            &w,
            &data,
            &block,
            &v,
            &mut class_dots,
            &mut label_dots,
            &mut ws,
        );
        assert_eq!(path, expect_path);
        let mut g = vec![0.0; model.num_params()];
        for (r, &i) in block.iter().enumerate() {
            for c in 0..CLASSES {
                model.class_grad(&w, data.feature(i), c, &mut g);
                let want = vector::dot(&v, &g);
                let got = class_dots[r * CLASSES + c];
                assert!(
                    (got - want).abs() <= tol * (1.0 + want.abs()),
                    "class dot {i}/{c}: {got} vs {want}"
                );
            }
            model.grad(&w, data.feature(i), data.label(i), &mut g);
            let want = vector::dot(&v, &g);
            assert!(
                (label_dots[r] - want).abs() <= tol * (1.0 + want.abs()),
                "label dot {i}: {} vs {want}",
                label_dots[r]
            );
        }
    }
}
