//! Equivalence tests for the [`KernelBackend`] precision/ILP variants.
//!
//! The numerics contract (DESIGN.md §14) pinned here, in both feature
//! configurations (`--features parallel` and `--no-default-features`):
//!
//! * `Reference` **is** the pre-backend code path — `new()` defaults to
//!   it, so every older golden/equivalence suite keeps pinning it.
//! * `UnrolledF64` is deterministic, serial/parallel bit-identical, and
//!   agrees with `Reference` to ≤1e-10 relative — bit-identically on
//!   `grad_block`, where `Reference` already runs the unrolled forward
//!   panel.
//! * `MixedF32` is deterministic and agrees with `Reference` to ≤1e-4
//!   relative on rankings, gradients and HVPs.

use chef_core::{rank_infl_top_b, rank_infl_with_vector, rank_infl_with_vector_serial, InflScore};
use chef_linalg::{Matrix, Workspace};
use chef_model::{Dataset, KernelBackend, KernelPath, LogisticRegression, Model, SoftLabel};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: usize = 600;
const DIM: usize = 7;
const CLASSES: usize = 3;
const GAMMA: f64 = 0.8;

/// Multiclass weak-label fixture large enough to cross the parallel
/// scoring grain (128) and several `SCORE_BLOCK` boundaries.
fn fixture(seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut raw = Vec::with_capacity(N * DIM);
    let mut labels = Vec::with_capacity(N);
    let mut truth = Vec::with_capacity(N);
    for i in 0..N {
        let c = i % CLASSES;
        for d in 0..DIM {
            let center = if d % CLASSES == c { 1.5 } else { -0.5 };
            raw.push(center + rng.gen_range(-1.0..1.0));
        }
        let mut probs = vec![0.0; CLASSES];
        let conf = rng.gen_range(0.5..0.9);
        for (k, p) in probs.iter_mut().enumerate() {
            *p = if k == c {
                conf
            } else {
                (1.0 - conf) / (CLASSES - 1) as f64
            };
        }
        labels.push(SoftLabel::new(probs));
        truth.push(Some(c));
    }
    Dataset::new(
        Matrix::from_vec(N, DIM, raw),
        labels,
        vec![false; N],
        truth,
        CLASSES,
    )
}

/// A non-degenerate parameter/influence-vector pair (no training needed:
/// the backends must agree at *any* `w`, `v`).
fn w_and_v(model: &dyn Model, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..model.num_params())
        .map(|_| rng.gen_range(-0.5..0.5))
        .collect();
    let v: Vec<f64> = (0..model.num_params())
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    (w, v)
}

fn assert_rankings_close(got: &[InflScore], reference: &[InflScore], tol: f64) {
    assert_eq!(got.len(), reference.len());
    for (g, r) in got.iter().zip(reference) {
        assert_eq!(g.index, r.index, "ranking order diverged");
        assert_eq!(
            g.suggested, r.suggested,
            "suggested label diverged at {}",
            g.index
        );
        assert!(
            (g.score - r.score).abs() <= tol * (1.0 + r.score.abs()),
            "index {}: {} vs reference {}",
            g.index,
            g.score,
            r.score
        );
    }
}

fn grad_of(model: &LogisticRegression, data: &Dataset, batch: &[usize], w: &[f64]) -> Vec<f64> {
    let mut ws = Workspace::new();
    let mut out = vec![0.0; model.num_params()];
    let path = model.grad_block(w, data, batch, GAMMA, &mut out, &mut ws);
    assert_eq!(path, KernelPath::Gemm);
    out
}

fn hvp_of(
    model: &LogisticRegression,
    data: &Dataset,
    batch: &[usize],
    w: &[f64],
    v: &[f64],
) -> Vec<f64> {
    let mut ws = Workspace::new();
    let mut out = vec![0.0; model.num_params()];
    let path = model.hvp_block(w, data, batch, GAMMA, v, &mut out, &mut ws);
    assert_eq!(path, KernelPath::Gemm);
    out
}

#[test]
fn backends_report_their_names_and_default_is_reference() {
    let model = LogisticRegression::new(DIM, CLASSES);
    assert_eq!(model.kernel_backend(), KernelBackend::Reference);
    for backend in KernelBackend::ALL {
        let m = LogisticRegression::new(DIM, CLASSES).with_backend(backend);
        assert_eq!(m.kernel_backend(), backend);
        assert_eq!(m.scoring_kernel(), KernelPath::Gemm);
    }
    assert_eq!(KernelBackend::Reference.name(), "reference");
    assert_eq!(KernelBackend::UnrolledF64.name(), "unrolled_f64");
    assert_eq!(KernelBackend::MixedF32.name(), "mixed_f32");
}

#[test]
fn unrolled_ranking_matches_reference_to_tolerance() {
    let data = fixture(31);
    let reference = LogisticRegression::new(DIM, CLASSES);
    let unrolled = LogisticRegression::new(DIM, CLASSES).with_backend(KernelBackend::UnrolledF64);
    let (w, v) = w_and_v(&reference, 32);
    let pool = data.uncleaned_indices();
    let want = rank_infl_with_vector(&reference, &data, &w, &v, &pool, GAMMA);
    let got = rank_infl_with_vector(&unrolled, &data, &w, &v, &pool, GAMMA);
    assert_rankings_close(&got, &want, 1e-10);
}

#[test]
fn unrolled_ranking_is_deterministic_and_serial_parallel_bit_identical() {
    let data = fixture(33);
    let model = LogisticRegression::new(DIM, CLASSES).with_backend(KernelBackend::UnrolledF64);
    let (w, v) = w_and_v(&model, 34);
    let pool = data.uncleaned_indices();
    let first = rank_infl_with_vector(&model, &data, &w, &v, &pool, GAMMA);
    let again = rank_infl_with_vector(&model, &data, &w, &v, &pool, GAMMA);
    let serial = rank_infl_with_vector_serial(&model, &data, &w, &v, &pool, GAMMA);
    for (a, b) in first.iter().zip(&again).chain(first.iter().zip(&serial)) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.suggested, b.suggested);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
}

#[test]
fn unrolled_grad_block_is_bit_identical_to_reference() {
    // Reference's grad_block forward panel already runs the unrolled
    // kernel, so UnrolledF64 must agree bit-for-bit there.
    let data = fixture(35);
    let reference = LogisticRegression::new(DIM, CLASSES);
    let unrolled = LogisticRegression::new(DIM, CLASSES).with_backend(KernelBackend::UnrolledF64);
    let (w, _) = w_and_v(&reference, 36);
    let batch: Vec<usize> = (0..N).collect();
    let want = grad_of(&reference, &data, &batch, &w);
    let got = grad_of(&unrolled, &data, &batch, &w);
    for (g, r) in got.iter().zip(&want) {
        assert_eq!(g.to_bits(), r.to_bits());
    }
}

#[test]
fn unrolled_hvp_block_matches_reference_to_tolerance() {
    let data = fixture(37);
    let reference = LogisticRegression::new(DIM, CLASSES);
    let unrolled = LogisticRegression::new(DIM, CLASSES).with_backend(KernelBackend::UnrolledF64);
    let (w, v) = w_and_v(&reference, 38);
    let batch: Vec<usize> = (0..N).collect();
    let want = hvp_of(&reference, &data, &batch, &w, &v);
    let got = hvp_of(&unrolled, &data, &batch, &w, &v);
    for (g, r) in got.iter().zip(&want) {
        assert!((g - r).abs() <= 1e-10 * (1.0 + r.abs()), "{g} vs {r}");
    }
}

#[test]
fn mixed_f32_ranking_matches_reference_within_documented_tolerance() {
    let data = fixture(41);
    let reference = LogisticRegression::new(DIM, CLASSES);
    let mixed = LogisticRegression::new(DIM, CLASSES).with_backend(KernelBackend::MixedF32);
    let (w, v) = w_and_v(&reference, 42);
    let pool = data.uncleaned_indices();
    let want = rank_infl_with_vector(&reference, &data, &w, &v, &pool, GAMMA);
    let got = rank_infl_with_vector(&mixed, &data, &w, &v, &pool, GAMMA);
    // Scores must agree to the documented ≤1e-4; near-ties may swap
    // ranks, so compare scores by index rather than by rank position.
    assert_eq!(got.len(), want.len());
    let mut by_index: Vec<Option<f64>> = vec![None; N];
    for s in &want {
        by_index[s.index] = Some(s.score);
    }
    for s in &got {
        let r = by_index[s.index].expect("index sets diverged");
        assert!(
            (s.score - r).abs() <= 1e-4 * (1.0 + r.abs()),
            "index {}: mixed {} vs reference {}",
            s.index,
            s.score,
            r
        );
    }
}

#[test]
fn mixed_f32_ranking_is_deterministic_and_serial_parallel_bit_identical() {
    let data = fixture(43);
    let model = LogisticRegression::new(DIM, CLASSES).with_backend(KernelBackend::MixedF32);
    let (w, v) = w_and_v(&model, 44);
    let pool = data.uncleaned_indices();
    let first = rank_infl_with_vector(&model, &data, &w, &v, &pool, GAMMA);
    let again = rank_infl_with_vector(&model, &data, &w, &v, &pool, GAMMA);
    let serial = rank_infl_with_vector_serial(&model, &data, &w, &v, &pool, GAMMA);
    for (a, b) in first.iter().zip(&again).chain(first.iter().zip(&serial)) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.suggested, b.suggested);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
    // Top-b selection is the exact prefix on this backend too.
    for b in [1, 17, 256] {
        let top = rank_infl_top_b(&model, &data, &w, &v, &pool, GAMMA, b);
        for (t, f) in top.iter().zip(&first) {
            assert_eq!(t.index, f.index);
            assert_eq!(t.score.to_bits(), f.score.to_bits());
        }
    }
}

#[test]
fn mixed_f32_grad_and_hvp_match_reference_within_tolerance() {
    let data = fixture(45);
    let reference = LogisticRegression::new(DIM, CLASSES);
    let mixed = LogisticRegression::new(DIM, CLASSES).with_backend(KernelBackend::MixedF32);
    let (w, v) = w_and_v(&reference, 46);
    let batch: Vec<usize> = (0..N).collect();
    let want_g = grad_of(&reference, &data, &batch, &w);
    let got_g = grad_of(&mixed, &data, &batch, &w);
    // The summed batch gradient scales with |batch|; compare per-sample
    // magnitudes against the documented ≤1e-4 relative contract.
    let scale = batch.len() as f64;
    for (g, r) in got_g.iter().zip(&want_g) {
        assert!(
            (g - r).abs() <= 1e-4 * (scale + r.abs()),
            "grad: {g} vs {r}"
        );
    }
    let want_h = hvp_of(&reference, &data, &batch, &w, &v);
    let got_h = hvp_of(&mixed, &data, &batch, &w, &v);
    for (g, r) in got_h.iter().zip(&want_h) {
        assert!((g - r).abs() <= 1e-4 * (scale + r.abs()), "hvp: {g} vs {r}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: on random parameter/vector draws every backend's
    /// score_block agrees with Reference within its documented
    /// tolerance, and UnrolledF64 twice in a row is bit-stable.
    #[test]
    fn prop_backend_score_blocks_agree(seed in 0u64..500) {
        let data = fixture(seed);
        let reference = LogisticRegression::new(DIM, CLASSES);
        let (w, v) = w_and_v(&reference, seed ^ 0x5eed);
        let block: Vec<usize> = (0..96).map(|r| (r * 13 + seed as usize) % N).collect();
        let run = |m: &LogisticRegression| {
            let mut class_dots = vec![0.0; block.len() * CLASSES];
            let mut label_dots = vec![0.0; block.len()];
            let mut ws = Workspace::new();
            m.score_block(&w, &data, &block, &v, &mut class_dots, &mut label_dots, &mut ws);
            (class_dots, label_dots)
        };
        let (ref_cd, ref_ld) = run(&reference);
        for (backend, tol) in [(KernelBackend::UnrolledF64, 1e-10), (KernelBackend::MixedF32, 1e-4)] {
            let m = LogisticRegression::new(DIM, CLASSES).with_backend(backend);
            let (cd, ld) = run(&m);
            let (cd2, ld2) = run(&m);
            for (a, b) in cd.iter().zip(&cd2).chain(ld.iter().zip(&ld2)) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} not deterministic", backend.name());
            }
            for (g, r) in cd.iter().zip(&ref_cd).chain(ld.iter().zip(&ref_ld)) {
                prop_assert!(
                    (g - r).abs() <= tol * (1.0 + r.abs()),
                    "{}: {} vs {}", backend.name(), g, r
                );
            }
        }
    }
}
