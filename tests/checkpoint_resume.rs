//! Replay-equivalence harness for the checkpoint/resume subsystem
//! (DESIGN.md §12), driven by deterministic fault injection
//! (`--features fault-inject`).
//!
//! The core claim under test: run the pipeline to round `R`, kill it,
//! resume from the surviving `checkpoint.v1` generation, let it finish —
//! and the final weights, the cleaned-label set, and the per-round
//! telemetry are **bit-identical** to a run that was never interrupted.
//! Wall-clock fields (`select_ms`, span durations, …) are the only
//! permitted divergence and are normalized before comparison; the
//! restored *prefix* of rounds must additionally carry the interrupted
//! session's exact durations, which is what makes
//! `PipelineReport::total_select_time`/`total_update_time` aggregate
//! correctly across a crash.
//!
//! The whole file runs in both feature configurations exercised by
//! ci.sh: default features + `fault-inject`, and
//! `--no-default-features --features fault-inject` (serial kernels, noop
//! telemetry).

use chef_core::{
    AnnotationConfig, CheckpointConfig, CheckpointError, ConstructorKind, FaultPlan, InflSelector,
    LabelStrategy, Pipeline, PipelineConfig, PipelineReport, RoundReport, Telemetry,
};
use chef_linalg::Matrix;
use chef_model::{Dataset, LogisticRegression, SoftLabel, WeightedObjective};
use chef_train::SgdConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn fixture(seed: u64) -> (LogisticRegression, Dataset, Dataset, Dataset) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut make = |count: usize, weak: bool| {
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..count {
            let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
            let sign = if c == 1 { 1.0 } else { -1.0 };
            raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
            raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
            if weak {
                let good = rng.gen_range(0.0..1.0) < 0.65;
                let p = rng.gen_range(0.55..0.95);
                let l = if good == (c == 1) {
                    SoftLabel::new(vec![1.0 - p, p])
                } else {
                    SoftLabel::new(vec![p, 1.0 - p])
                };
                labels.push(l);
            } else {
                labels.push(SoftLabel::onehot(c, 2));
            }
            truth.push(Some(c));
        }
        Dataset::new(
            Matrix::from_vec(count, 2, raw),
            labels,
            vec![!weak; count],
            truth,
            2,
        )
    };
    let train = make(120, true);
    let val = make(40, false);
    let test = make(40, false);
    (LogisticRegression::new(2, 2), train, val, test)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chef-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_config(dir: &Path, faults: FaultPlan, telemetry: Telemetry) -> PipelineConfig {
    PipelineConfig {
        budget: 20,
        round_size: 5,
        objective: WeightedObjective::new(0.8, 0.05),
        sgd: SgdConfig {
            lr: 0.1,
            epochs: 6,
            batch_size: 30,
            seed: 3,
            cache_provenance: true,
        },
        annotation: AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.05,
            seed: 11,
        },
        checkpoint: Some(CheckpointConfig {
            dir: dir.to_path_buf(),
            every_rounds: 1,
            keep: 3,
        }),
        faults,
        telemetry,
        ..PipelineConfig::default()
    }
}

fn selector(incremental: bool) -> InflSelector {
    if incremental {
        InflSelector::incremental()
    } else {
        InflSelector::full()
    }
}

/// Zero every wall-clock field: the one permitted divergence between an
/// interrupted-and-resumed run and an uninterrupted one.
fn normalized(rounds: &[RoundReport]) -> Vec<RoundReport> {
    rounds
        .iter()
        .cloned()
        .map(|mut r| {
            r.select_time = Duration::ZERO;
            r.update_time = Duration::ZERO;
            r.telemetry.selector.select_ms = 0.0;
            r.telemetry.annotation.annotate_ms = 0.0;
            r.telemetry.constructor.update_ms = 0.0;
            r
        })
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

fn assert_same_outcome(reference: &PipelineReport, resumed: &PipelineReport) {
    assert_bits_eq(&reference.final_w, &resumed.final_w, "final_w");
    assert_bits_eq(&reference.final_w_raw, &resumed.final_w_raw, "final_w_raw");
    assert_eq!(reference.cleaned_total, resumed.cleaned_total);
    assert_eq!(reference.early_terminated, resumed.early_terminated);
    assert_eq!(
        reference.initial_val_f1.to_bits(),
        resumed.initial_val_f1.to_bits()
    );
    assert_eq!(
        normalized(&reference.rounds),
        normalized(&resumed.rounds),
        "per-round reports (wall-clock normalized)"
    );
    assert_eq!(reference.final_data.len(), resumed.final_data.len());
    for i in 0..reference.final_data.len() {
        assert_eq!(
            reference.final_data.is_clean(i),
            resumed.final_data.is_clean(i),
            "clean flag of sample {i}"
        );
        assert_eq!(
            reference.final_data.label(i),
            resumed.final_data.label(i),
            "label of sample {i}"
        );
    }
}

/// The full kill-and-resume drill: reference run, crashed run, resumed
/// run, then every equivalence assertion. `faults_common` (timeouts,
/// checkpoint mangling) applies identically to all three runs so the
/// comparison stays apples-to-apples; the crash is added on top for the
/// interrupted run only.
fn check_replay_equivalence(
    ctor: ConstructorKind,
    incremental: bool,
    crash_after: usize,
    faults_common: FaultPlan,
    tag: &str,
) {
    let (model, train, val, test) = fixture(1);
    let dir_ref = scratch(&format!("{tag}-ref"));
    let dir_int = scratch(&format!("{tag}-int"));
    let mangled = faults_common.torn_write_after_round.is_some()
        || faults_common.bitflip_after_round.is_some();

    // 1. Reference: never interrupted.
    let tel_ref = Telemetry::enabled();
    let mut cfg = base_config(&dir_ref, faults_common.clone(), tel_ref.clone());
    cfg.constructor = ctor;
    let mut sel = selector(incremental);
    let reference = Pipeline::new(cfg).run(&model, train.clone(), &val, &test, &mut sel);
    assert!(!reference.interrupted);
    assert_eq!(reference.rounds.len(), 4, "fixture should run 4 rounds");

    // 2. Same run, killed after round `crash_after` completes.
    let mut faults = faults_common.clone();
    faults.crash_after_round = Some(crash_after);
    let mut cfg = base_config(&dir_int, faults, Telemetry::enabled());
    cfg.constructor = ctor;
    let mut sel = selector(incremental);
    let interrupted = Pipeline::new(cfg).run(&model, train.clone(), &val, &test, &mut sel);
    assert!(interrupted.interrupted);
    assert_eq!(interrupted.rounds.len(), crash_after + 1);

    // 3. Resume from the surviving generations and finish.
    let tel_res = Telemetry::enabled();
    let mut cfg = base_config(&dir_int, faults_common.clone(), tel_res.clone());
    cfg.constructor = ctor;
    let mut sel = selector(incremental);
    let resumed = Pipeline::new(cfg)
        .resume_latest(&model, train.clone(), &val, &test, &mut sel, &dir_int)
        .expect("resume_latest");
    assert!(!resumed.interrupted);

    assert_same_outcome(&reference, &resumed);

    if !mangled {
        // The restored prefix must carry the interrupted session's exact
        // durations and telemetry — this is what makes the report totals
        // aggregate across the crash.
        for i in 0..=crash_after {
            assert_eq!(
                resumed.rounds[i].select_time, interrupted.rounds[i].select_time,
                "restored select_time of round {i}"
            );
            assert_eq!(
                resumed.rounds[i].update_time, interrupted.rounds[i].update_time,
                "restored update_time of round {i}"
            );
            assert_eq!(
                resumed.rounds[i].telemetry, interrupted.rounds[i].telemetry,
                "restored telemetry of round {i}"
            );
        }
        assert_eq!(resumed.init_time, interrupted.init_time);
        let prefix: Duration = interrupted.rounds.iter().map(|r| r.select_time).sum();
        assert!(resumed.total_select_time() >= prefix);
    }

    // 4. Counter totals match an uninterrupted run (telemetry builds).
    if tel_ref.is_enabled() {
        for key in [
            "pipeline.rounds",
            "selector.scored",
            "selector.pruned",
            "annotation.votes",
            "annotation.cleaned",
            "annotation.abstains",
            "constructor.exact_steps",
            "constructor.replay_steps",
        ] {
            assert_eq!(
                tel_ref.counter(key),
                tel_res.counter(key),
                "replayed counter {key}"
            );
        }
        assert!(tel_res.counter("resume.rounds_skipped") > 0);
        assert_eq!(tel_res.rounds_recorded(), 4);
    }

    let _ = std::fs::remove_dir_all(&dir_ref);
    let _ = std::fs::remove_dir_all(&dir_int);
}

#[test]
fn retrain_resume_after_first_round_is_bit_identical() {
    check_replay_equivalence(
        ConstructorKind::Retrain,
        false,
        0,
        FaultPlan::default(),
        "retrain-r0",
    );
}

#[test]
fn retrain_resume_mid_run_is_bit_identical() {
    check_replay_equivalence(
        ConstructorKind::Retrain,
        false,
        1,
        FaultPlan::default(),
        "retrain-r1",
    );
}

#[test]
fn retrain_crash_after_final_round_resumes_to_a_finished_run() {
    // Crash lands after the budget is already spent: resume replays the
    // restored rounds and returns without executing anything new.
    check_replay_equivalence(
        ConstructorKind::Retrain,
        false,
        3,
        FaultPlan::default(),
        "retrain-r3",
    );
}

#[test]
fn deltagrad_incremental_resume_is_bit_identical() {
    // The hard case: DeltaGrad-L replays SGD against the checkpointed
    // provenance trace, and Increm-Infl prunes against the checkpointed
    // frozen w⁽⁰⁾ provenance — both must survive the round-trip exactly.
    check_replay_equivalence(
        ConstructorKind::DeltaGradL(chef_train::DeltaGradConfig::default()),
        true,
        1,
        FaultPlan::default(),
        "deltagrad-r1",
    );
}

#[test]
fn annotator_timeouts_abstain_without_breaking_equivalence() {
    let faults = FaultPlan {
        annotator_timeout_rounds: vec![1],
        ..FaultPlan::default()
    };
    check_replay_equivalence(ConstructorKind::Retrain, false, 2, faults, "timeout-r2");

    // And the timed-out round really did abstain wholesale.
    let (model, train, val, test) = fixture(1);
    let dir = scratch("timeout-solo");
    let cfg = base_config(
        &dir,
        FaultPlan {
            annotator_timeout_rounds: vec![1],
            ..FaultPlan::default()
        },
        Telemetry::disabled(),
    );
    let mut sel = InflSelector::full();
    let report = Pipeline::new(cfg).run(&model, train, &val, &test, &mut sel);
    assert_eq!(report.rounds[1].cleaned, 0);
    assert_eq!(report.rounds[1].ambiguous, report.rounds[1].selected.len());
    assert_eq!(report.rounds[1].telemetry.annotation.votes, 0);
    assert!(report.rounds[0].cleaned > 0, "round 0 was not timed out");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoint_write_falls_back_a_generation() {
    // The newest generation is torn mid-write; resume must detect the
    // truncation via the checksum header, fall back to the previous
    // generation, re-execute the lost round, and still match.
    let faults = FaultPlan {
        torn_write_after_round: Some(2),
        ..FaultPlan::default()
    };
    check_replay_equivalence(ConstructorKind::Retrain, false, 2, faults, "torn-r2");
}

#[test]
fn bit_flipped_checkpoint_falls_back_a_generation() {
    let faults = FaultPlan {
        bitflip_after_round: Some(2),
        ..FaultPlan::default()
    };
    check_replay_equivalence(ConstructorKind::Retrain, false, 2, faults, "bitflip-r2");
}

#[test]
fn resume_with_mismatched_seed_is_rejected() {
    let (model, train, val, test) = fixture(1);
    let dir = scratch("mismatch");
    let cfg = base_config(&dir, FaultPlan::crash_after(1), Telemetry::disabled());
    let mut sel = InflSelector::full();
    let _ = Pipeline::new(cfg).run(&model, train.clone(), &val, &test, &mut sel);

    let mut cfg = base_config(&dir, FaultPlan::default(), Telemetry::disabled());
    cfg.annotation.seed = 999; // a different annotator RNG stream
    let mut sel = InflSelector::full();
    let err = Pipeline::new(cfg)
        .resume_latest(&model, train, &val, &test, &mut sel, &dir)
        .unwrap_err();
    assert!(
        matches!(err, CheckpointError::Mismatch(_)),
        "expected Mismatch, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_empty_directory_is_a_clear_error() {
    let (model, train, val, test) = fixture(1);
    let dir = scratch("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = base_config(&dir, FaultPlan::default(), Telemetry::disabled());
    let mut sel = InflSelector::full();
    let err = Pipeline::new(cfg)
        .resume_latest(&model, train, &val, &test, &mut sel, &dir)
        .unwrap_err();
    assert!(
        matches!(err, CheckpointError::NoCheckpoint(_)),
        "expected NoCheckpoint, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
