//! Integration test for the telemetry.v1 observability layer.
//!
//! Runs the full pipeline (Increm-Infl selector + DeltaGrad-L
//! constructor) with telemetry enabled and asserts the structured
//! per-round breakdown: pruning counters, gradient/HVP evaluation
//! counts, annotation vote counts, and replay-vs-exact step counts.
//! The registry/export assertions are gated on the `telemetry` feature;
//! the plain-count assertions hold in both feature configurations.

use chef_core::{
    AnnotationConfig, ConstructorKind, InflSelector, LabelStrategy, Pipeline, PipelineConfig,
    Telemetry,
};
use chef_linalg::Matrix;
use chef_model::{Dataset, LogisticRegression, SoftLabel, WeightedObjective};
use chef_train::{DeltaGradConfig, SgdConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N_TRAIN: usize = 120;
const NUM_CLASSES: usize = 2;

fn make(count: usize, weak: bool, rng: &mut SmallRng) -> Dataset {
    let mut raw = Vec::new();
    let mut labels = Vec::new();
    let mut truth = Vec::new();
    for _ in 0..count {
        let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
        let sign = if c == 1 { 1.0 } else { -1.0 };
        raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
        raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
        if weak {
            let good = rng.gen_range(0.0..1.0) < 0.65;
            let p = rng.gen_range(0.55..0.95);
            let l = if good == (c == 1) {
                SoftLabel::new(vec![1.0 - p, p])
            } else {
                SoftLabel::new(vec![p, 1.0 - p])
            };
            labels.push(l);
        } else {
            labels.push(SoftLabel::onehot(c, NUM_CLASSES));
        }
        truth.push(Some(c));
    }
    Dataset::new(
        Matrix::from_vec(count, 2, raw),
        labels,
        vec![!weak; count],
        truth,
        NUM_CLASSES,
    )
}

fn config(telemetry: Telemetry) -> PipelineConfig {
    PipelineConfig {
        budget: 15,
        round_size: 5,
        objective: WeightedObjective::new(0.8, 0.05),
        sgd: SgdConfig {
            lr: 0.1,
            epochs: 6,
            batch_size: 30,
            seed: 3,
            cache_provenance: true,
        },
        constructor: ConstructorKind::DeltaGradL(DeltaGradConfig::default()),
        annotation: AnnotationConfig {
            strategy: LabelStrategy::SuggestionPlusHumans(2),
            error_rate: 0.05,
            seed: 11,
        },
        telemetry,
        ..PipelineConfig::default()
    }
}

#[test]
fn pipeline_emits_structured_round_telemetry() {
    let mut rng = SmallRng::seed_from_u64(7);
    let train = make(N_TRAIN, true, &mut rng);
    let val = make(40, false, &mut rng);
    let test = make(40, false, &mut rng);
    let model = LogisticRegression::new(2, NUM_CLASSES);

    let telemetry = Telemetry::enabled();
    let pipeline = Pipeline::new(config(telemetry.clone()));
    let mut selector = InflSelector::incremental();
    let report = pipeline.run(&model, train, &val, &test, &mut selector);

    assert_eq!(report.rounds.len(), 3, "budget 15 / round 5 = 3 rounds");

    // Expected per-candidate gradient cost of Eq. 6 with γ < 1: C class
    // gradients plus one full gradient for the up-weight term.
    let grads_per_score = NUM_CLASSES + 1;
    // DeltaGrad replays the full SGD iteration schedule each update.
    let iters_per_update = 6 * N_TRAIN.div_ceil(30);

    let mut total_scored = 0u64;
    let mut total_pruned = 0u64;
    for (k, r) in report.rounds.iter().enumerate() {
        let t = &r.telemetry;
        assert_eq!(t.round, k);

        // ---- Selector phase: pruned vs. scored (Theorem 1). ----
        let sel = &t.selector;
        assert_eq!(sel.selector, "Infl+Increm");
        assert!(sel.pool > 0);
        assert_eq!(
            sel.pruned + sel.scored,
            sel.pool,
            "round {k}: every candidate is either pruned or scored"
        );
        assert!(sel.scored >= r.selected.len(), "scored at least b samples");
        assert_eq!(sel.grad_evals, sel.scored * grads_per_score);
        assert!(sel.hvp_evals > 0, "the CG solve applied the Hessian");
        let expected_rate = sel.pruned as f64 / sel.pool as f64;
        assert!((sel.bound_hit_rate - expected_rate).abs() < 1e-12);

        // ---- Annotation phase: votes, conflicts, abstains. ----
        let ann = &t.annotation;
        assert_eq!(ann.requested, r.selected.len());
        assert_eq!(ann.cleaned + ann.abstains, ann.requested);
        assert_eq!(ann.cleaned, r.cleaned);
        assert_eq!(ann.abstains, r.ambiguous);
        // 2 humans + 1 suggestion per sample with known ground truth.
        assert_eq!(ann.votes, 3 * ann.requested);
        assert!(ann.conflicts <= ann.requested);

        // ---- Constructor phase: replay vs. exact steps. ----
        let ctor = &t.constructor;
        assert_eq!(ctor.kind, "deltagrad-l");
        assert_eq!(ctor.lbfgs_history, DeltaGradConfig::default().m0);
        assert_eq!(ctor.epochs, 6);
        assert_eq!(
            ctor.exact_steps + ctor.replay_steps,
            iters_per_update,
            "round {k}: every SGD iteration is either exact or replayed"
        );
        assert!(ctor.exact_steps > 0, "j₀ burn-in forces exact steps");
        assert!(ctor.replay_steps > 0, "most iterations replay via L-BFGS");

        total_scored += sel.scored as u64;
        total_pruned += sel.pruned as u64;
    }

    // Later rounds must actually exercise the Theorem-1 bound.
    assert!(total_pruned > 0, "Increm-Infl never pruned anything");

    // ---- Registry + export (requires the `telemetry` feature). ----
    #[cfg(feature = "telemetry")]
    {
        assert!(telemetry.is_enabled());
        assert_eq!(telemetry.rounds_recorded(), report.rounds.len());
        assert_eq!(telemetry.counter("selector.scored"), total_scored);
        assert_eq!(telemetry.counter("selector.pruned"), total_pruned);
        assert_eq!(
            telemetry.counter("increm.provenance_grads"),
            (N_TRAIN * (NUM_CLASSES + 1)) as u64,
            "provenance initialization: one full + C class gradients per sample"
        );
        assert_eq!(telemetry.counter("pipeline.rounds"), 3);
        // chef-train reports through the same handle: the initial training
        // plus every constructor update ran under a `train.sgd` span.
        assert!(telemetry.counter("train.epochs") >= 6);

        let json = telemetry
            .export_json("pipeline")
            .expect("enabled telemetry exports");
        for needle in [
            "\"schema\":\"telemetry.v1\"",
            "\"kind\":\"pipeline\"",
            "\"available_cores\":",
            "\"telemetry_feature\":true",
            "\"counters\":{",
            "\"selector.scored\":",
            "\"increm.provenance_grads\":",
            "\"spans\":{",
            "\"pipeline.init\"",
            "\"round.select\"",
            "\"round.annotate\"",
            "\"round.update\"",
            "\"round.eval\"",
            "\"train.sgd\"",
            "\"histograms\":{",
            "\"train.batch_ms\"",
            "\"rounds\":[",
            "\"pruned\":",
            "\"replay_steps\":",
        ] {
            assert!(
                json.contains(needle),
                "{needle} missing from export:\n{json}"
            );
        }
    }

    // With the feature off the same handle is a no-op ZST: the pipeline
    // still carries the structured breakdown, but nothing was recorded
    // and nothing can be exported.
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = total_scored;
        assert!(!telemetry.is_enabled());
        assert_eq!(telemetry.counter("selector.scored"), 0);
        assert!(telemetry.export_json("pipeline").is_none());
    }
}

#[test]
fn disabled_handle_records_nothing() {
    let mut rng = SmallRng::seed_from_u64(9);
    let train = make(60, true, &mut rng);
    let val = make(30, false, &mut rng);
    let model = LogisticRegression::new(2, NUM_CLASSES);

    let telemetry = Telemetry::disabled();
    let mut cfg = config(telemetry.clone());
    cfg.budget = 5;
    let pipeline = Pipeline::new(cfg);
    let mut selector = InflSelector::full();
    let report = pipeline.run(&model, train, &val, &val, &mut selector);

    // The structured breakdown is still populated from plain counts…
    assert_eq!(report.rounds.len(), 1);
    assert_eq!(report.rounds[0].telemetry.selector.selector, "Infl");
    assert_eq!(report.rounds[0].telemetry.selector.pruned, 0);
    // …but the disabled handle recorded nothing and exports nothing.
    assert_eq!(telemetry.counter("pipeline.rounds"), 0);
    assert!(telemetry.export_json("pipeline").is_none());
    assert_eq!(telemetry.rounds_recorded(), 0);
}
