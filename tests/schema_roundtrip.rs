//! Golden-file round-trip tests for the three versioned on-disk formats:
//! `telemetry.v1` (exported JSON), `checkpoint.v1` (header + JSON +
//! binary payload) and `store.v1` (the out-of-core dataset manifest,
//! DESIGN.md §15).
//!
//! Two guarantees are pinned here:
//!
//! 1. **Byte fidelity** — serialize → parse → re-serialize is
//!    byte-identical, both for the committed golden files (guarding
//!    against silent format drift across releases) and for freshly
//!    produced documents;
//! 2. **Version rejection** — a document declaring an unknown schema
//!    version is refused with an error naming both versions, never a
//!    panic.
//!
//! Regenerate the golden files after an *intentional* format change with
//! `CHEF_REGEN_GOLDEN=1 cargo test --test schema_roundtrip`.

use chef_core::{Checkpoint, CheckpointError, LabelPatch, RoundReport, Selection};
use chef_obs::{expect_schema, parse_json, JsonWriter, RoundTelemetry, SelectorTelemetry};
use chef_train::{BatchPlan, TraceStore, TrainTrace};
use std::path::PathBuf;
use std::time::Duration;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .join("tests/golden")
}

fn regen() -> bool {
    std::env::var_os("CHEF_REGEN_GOLDEN").is_some()
}

/// A small but fully populated checkpoint — every section of the format
/// (label patches, round reports with telemetry, DeltaGrad-L trace,
/// Increm-Infl provenance) is exercised.
fn golden_checkpoint() -> Checkpoint {
    use chef_core::{IncremSnapshot, IncremStats, SelectorCheckpoint};
    let m = 3;
    Checkpoint {
        round: 2,
        spent: 10,
        cleaned_total: 8,
        early_terminated: false,
        initial_val_f1: 0.625,
        initial_test_f1: 0.5987654321,
        init_ns: 1_234_567,
        annotation_seed: 11,
        sgd_seed: 3,
        attempted: vec![1, 4, 9],
        labels: vec![
            LabelPatch {
                index: 4,
                clean: true,
                probs: vec![0.0, 1.0],
            },
            LabelPatch {
                index: 9,
                clean: false,
                probs: vec![0.25, 0.75],
            },
        ],
        rounds: vec![RoundReport {
            round: 0,
            selected: vec![
                Selection {
                    index: 4,
                    suggested: Some(1),
                },
                Selection {
                    index: 9,
                    suggested: None,
                },
            ],
            cleaned: 1,
            ambiguous: 1,
            val_f1: 0.7,
            test_f1: 0.68,
            select_time: Duration::from_nanos(1_500_000),
            update_time: Duration::from_nanos(2_500_000),
            selector_stats: Some(IncremStats {
                pool: 50,
                candidates: 7,
            }),
            telemetry: RoundTelemetry {
                round: 0,
                selector: SelectorTelemetry {
                    selector: "Infl+Increm".into(),
                    pool: 50,
                    pruned: 43,
                    scored: 7,
                    grad_evals: 21,
                    hvp_evals: 12,
                    bound_hit_rate: 0.86,
                    kernel_path: "gemm".into(),
                    // Empty (and therefore omitted): the committed golden
                    // bytes predate the kernel_backend field.
                    kernel_backend: String::new(),
                    select_ms: 1.5,
                },
                ..RoundTelemetry::default()
            },
        }],
        w_raw: vec![0.1, -0.2, 0.3],
        w_eval: vec![0.05, -0.15, 0.25],
        trace: TrainTrace {
            plan: BatchPlan::new(12, 4, 2, 3),
            params: TraceStore::from_flat(
                m,
                (0..6).flat_map(|t| vec![t as f64 * 0.5; m]).collect(),
            ),
            grads: TraceStore::from_flat(
                m,
                (0..6).flat_map(|t| vec![-(t as f64) * 0.25; m]).collect(),
            ),
            epoch_checkpoints: vec![vec![1.0; m], vec![2.0; m]],
            lr: 0.1,
        },
        selector: SelectorCheckpoint::Infl {
            increm: Some(IncremSnapshot {
                w0: vec![0.0; m],
                grads0: vec![0.5; 2 * m],
                class_grads0: vec![0.25; 2 * 2 * m],
                hessian_norms0: vec![1.0, 2.0],
                class_hessian_norms0: vec![0.1, 0.2, 0.3, 0.4],
                num_params: m,
                num_classes: 2,
                slack: 1.0,
            }),
        },
    }
}

/// A hand-assembled telemetry.v1 export document with deterministic
/// content (real exports carry machine-dependent context and wall-clock
/// histograms; the golden file pins the *format*, not one machine's run).
fn golden_telemetry_doc() -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", chef_obs::SCHEMA_VERSION);
    w.field_str("kind", "pipeline");
    w.key("context");
    w.begin_object();
    w.field_u64("available_cores", 8);
    w.field_bool("telemetry_feature", true);
    w.end_object();
    w.key("counters");
    w.begin_object();
    w.field_u64("annotation.cleaned", 8);
    w.field_u64("pipeline.rounds", 2);
    w.field_u64("selector.scored", 14);
    w.end_object();
    w.key("gauges");
    w.begin_object();
    w.field_f64("pipeline.val_f1", 0.8125);
    w.end_object();
    w.key("histograms");
    w.begin_object();
    w.end_object();
    w.key("spans");
    w.begin_object();
    w.end_object();
    w.key("rounds");
    w.begin_array();
    for r in &golden_checkpoint().rounds {
        r.telemetry.write_json(&mut w);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[test]
fn telemetry_golden_file_reserializes_byte_identical() {
    let path = golden_dir().join("telemetry_v1_golden.json");
    if regen() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, golden_telemetry_doc()).unwrap();
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — run CHEF_REGEN_GOLDEN=1 cargo test --test schema_roundtrip");
    let doc = parse_json(&golden).expect("golden telemetry parses");
    expect_schema(&doc, "telemetry.v1").expect("golden declares telemetry.v1");
    // Parse → re-serialize is byte-identical.
    assert_eq!(doc.to_json(), golden);

    // Every per-round entry also round-trips through the typed structs.
    let rounds = doc.get("rounds").unwrap().as_array().unwrap();
    assert!(!rounds.is_empty());
    for r in rounds {
        let rt = RoundTelemetry::from_json(r).expect("round entry parses");
        let mut w = JsonWriter::new();
        rt.write_json(&mut w);
        assert_eq!(w.finish(), r.to_json());
    }
}

#[test]
fn freshly_written_telemetry_round_trips() {
    let doc = golden_telemetry_doc();
    let parsed = parse_json(&doc).unwrap();
    assert_eq!(parsed.to_json(), doc);
}

#[test]
fn unknown_telemetry_version_is_rejected_with_both_versions_named() {
    let doc = parse_json(r#"{"schema":"telemetry.v9","rounds":[]}"#).unwrap();
    let err = expect_schema(&doc, "telemetry.v1").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("telemetry.v9"),
        "error names found version: {msg}"
    );
    assert!(
        msg.contains("telemetry.v1"),
        "error names expected version: {msg}"
    );
}

#[test]
fn malformed_round_telemetry_errors_instead_of_panicking() {
    let doc = parse_json(r#"{"round":0,"selector":{}}"#).unwrap();
    let err = RoundTelemetry::from_json(&doc).unwrap_err();
    assert!(!err.to_string().is_empty());
    // A structurally wrong value (array instead of object) also errors.
    let doc = parse_json("[1,2,3]").unwrap();
    assert!(RoundTelemetry::from_json(&doc).is_err());
}

#[test]
fn checkpoint_golden_file_reserializes_byte_identical() {
    let path = golden_dir().join("checkpoint_v1_golden.bin");
    if regen() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, golden_checkpoint().to_bytes()).unwrap();
    }
    let golden = std::fs::read(&path)
        .expect("golden file missing — run CHEF_REGEN_GOLDEN=1 cargo test --test schema_roundtrip");
    // The committed bytes still decode (format drift guard)…
    let decoded = Checkpoint::from_bytes(&golden).expect("golden checkpoint decodes");
    // …re-serialize byte-identically…
    assert_eq!(decoded.to_bytes(), golden);
    // …and match today's serializer output for the same logical content.
    assert_eq!(golden_checkpoint().to_bytes(), golden);
}

/// The committed golden checkpoint was written before `TrainTrace` moved
/// its provenance into flat `TraceStore` arenas. Because `checkpoint.v1`
/// always stored the rows concatenated, a pre-TraceStore file must load
/// into the arena with every row bit-identical — the arena is an
/// in-memory layout change only, invisible on disk.
#[test]
fn pre_tracestore_golden_checkpoint_loads_with_exact_rows() {
    let golden = std::fs::read(golden_dir().join("checkpoint_v1_golden.bin"))
        .expect("golden file missing — run CHEF_REGEN_GOLDEN=1 cargo test --test schema_roundtrip");
    let decoded = Checkpoint::from_bytes(&golden).expect("golden checkpoint decodes");
    let m = decoded.w_raw.len();
    assert_eq!(decoded.trace.params.row_len(), m);
    assert_eq!(decoded.trace.params.len(), 6);
    assert_eq!(decoded.trace.grads.len(), 6);
    for t in 0..6 {
        assert_eq!(decoded.trace.params.row(t), vec![t as f64 * 0.5; m]);
        assert_eq!(decoded.trace.grads.row(t), vec![-(t as f64) * 0.25; m]);
    }
    assert_eq!(decoded.trace.epoch_checkpoints.len(), 2);
    // And the arena re-serializes to the very bytes it was read from.
    assert_eq!(decoded.to_bytes(), golden);
}

/// A hand-assembled `store.v1` manifest with every field populated and
/// the invariants the parser enforces (per-chunk `bytes = rows·dim·8`,
/// full chunks of `chunk_rows` rows except a short tail, rows summing
/// to `n`) satisfied.
fn golden_store_manifest() -> chef_data::Manifest {
    use chef_data::store::ChunkMeta;
    let dim = 3;
    chef_data::Manifest {
        version: 1,
        n: 10,
        dim,
        num_classes: 2,
        chunk_rows: 4,
        block_bytes: 0,
        labels_bytes: 250,
        labels_fnv: 0xdead_beef_0bad_f00d,
        labels_fnv_words: 0,
        chunks: vec![
            ChunkMeta {
                rows: 4,
                bytes: (4 * dim * 8) as u64,
                fnv: 0x0123_4567_89ab_cdef,
                blocks: vec![],
            },
            ChunkMeta {
                rows: 4,
                bytes: (4 * dim * 8) as u64,
                fnv: 0xfedc_ba98_7654_3210,
                blocks: vec![],
            },
            ChunkMeta {
                rows: 2,
                bytes: (2 * dim * 8) as u64,
                fnv: 0x0f1e_2d3c_4b5a_6978,
                blocks: vec![],
            },
        ],
    }
}

/// The v2 twin: same logical content plus the per-block checksum table
/// (one 32-byte block per 96-byte shard would be silly, so the golden
/// uses a 64-byte block size giving two blocks per full shard and one
/// for the short tail).
fn golden_store_manifest_v2() -> chef_data::Manifest {
    use chef_data::store::ChunkMeta;
    let dim = 3;
    chef_data::Manifest {
        version: 2,
        n: 10,
        dim,
        num_classes: 2,
        chunk_rows: 4,
        block_bytes: 64,
        labels_bytes: 250,
        labels_fnv: 0xdead_beef_0bad_f00d,
        labels_fnv_words: 0xc0ff_ee00_dead_1234,
        chunks: vec![
            ChunkMeta {
                rows: 4,
                bytes: (4 * dim * 8) as u64,
                fnv: 0x0123_4567_89ab_cdef,
                blocks: vec![0x1111_2222_3333_4444, 0x5555_6666_7777_8888],
            },
            ChunkMeta {
                rows: 4,
                bytes: (4 * dim * 8) as u64,
                fnv: 0xfedc_ba98_7654_3210,
                blocks: vec![0x9999_aaaa_bbbb_cccc, 0xdddd_eeee_ffff_0000],
            },
            ChunkMeta {
                rows: 2,
                bytes: (2 * dim * 8) as u64,
                fnv: 0x0f1e_2d3c_4b5a_6978,
                blocks: vec![0x1357_9bdf_0246_8ace],
            },
        ],
    }
}

#[test]
fn store_manifest_golden_file_reserializes_byte_identical() {
    let path = golden_dir().join("store_v1_golden.manifest");
    if regen() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, golden_store_manifest().render()).unwrap();
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — run CHEF_REGEN_GOLDEN=1 cargo test --test schema_roundtrip");
    // The committed text still parses (format drift guard)…
    let decoded = chef_data::Manifest::parse(&golden).expect("golden manifest parses");
    // …re-renders byte-identically…
    assert_eq!(decoded.render(), golden);
    // …and matches today's renderer for the same logical content.
    assert_eq!(golden_store_manifest().render(), golden);
}

#[test]
fn store_manifest_v2_golden_file_reserializes_byte_identical() {
    let path = golden_dir().join("store_v2_golden.manifest");
    if regen() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, golden_store_manifest_v2().render()).unwrap();
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — run CHEF_REGEN_GOLDEN=1 cargo test --test schema_roundtrip");
    let decoded = chef_data::Manifest::parse(&golden).expect("golden v2 manifest parses");
    assert_eq!(decoded.render(), golden);
    assert_eq!(golden_store_manifest_v2().render(), golden);
    // Block-table accessors agree with the hand-assembled layout.
    assert_eq!(decoded.num_blocks(0), 2);
    assert_eq!(decoded.num_blocks(2), 1);
    assert_eq!(decoded.block_fnv(1, 1), 0xdddd_eeee_ffff_0000);
    assert_eq!(decoded.effective_block_bytes(0), 64);
}

#[test]
fn unknown_store_version_is_rejected_with_clear_error() {
    let text = golden_store_manifest().render().replacen("v1", "v6", 1);
    match chef_data::Manifest::parse(&text) {
        Err(err @ chef_data::StoreError::Version(_)) => {
            let msg = err.to_string();
            assert!(msg.contains("chef-store.v6"), "names found version: {msg}");
            assert!(
                msg.contains("chef-store.v1"),
                "names supported version: {msg}"
            );
            assert!(
                msg.contains("chef-store.v2"),
                "names both supported versions: {msg}"
            );
        }
        other => panic!("expected Version error, got {other:?}"),
    }
}

#[test]
fn unknown_store_v2_bump_is_rejected_with_clear_error() {
    let text = golden_store_manifest_v2().render().replacen("v2", "v9", 1);
    match chef_data::Manifest::parse(&text) {
        Err(err @ chef_data::StoreError::Version(_)) => {
            let msg = err.to_string();
            assert!(msg.contains("chef-store.v9"), "names found version: {msg}");
        }
        other => panic!("expected Version error, got {other:?}"),
    }
}

#[test]
fn unknown_checkpoint_version_is_rejected_with_clear_error() {
    let mut bytes = golden_checkpoint().to_bytes();
    bytes[12] = b'7'; // checkpoint.v1 → checkpoint.v7 in the header
    match Checkpoint::from_bytes(&bytes) {
        Err(CheckpointError::UnsupportedVersion(v)) => {
            assert_eq!(v, "checkpoint.v7");
            let msg = CheckpointError::UnsupportedVersion(v).to_string();
            assert!(
                msg.contains("checkpoint.v1"),
                "error names the supported version: {msg}"
            );
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}
