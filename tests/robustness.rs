//! Failure injection and degenerate-input robustness.
//!
//! A production label-cleaning service sees pathological inputs: single
//! class datasets, adversarial annotators, budgets larger than the data,
//! extreme weights. The pipeline must degrade gracefully — finite
//! metrics, no panics, budgets respected — rather than assume the
//! friendly conditions of the paper's experiments.

use chef_core::{
    AnnotationConfig, ConstructorKind, InflSelector, LabelStrategy, Pipeline, PipelineConfig,
};
use chef_linalg::Matrix;
use chef_model::{Dataset, LogisticRegression, Model, SoftLabel, WeightedObjective};
use chef_train::SgdConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn blob_data(n: usize, seed: u64, positive_rate: f64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut raw = Vec::new();
    let mut labels = Vec::new();
    let mut truth = Vec::new();
    for _ in 0..n {
        let c = usize::from(rng.gen_range(0.0..1.0) < positive_rate);
        let sign = if c == 1 { 1.0 } else { -1.0 };
        raw.push(sign + rng.gen_range(-1.0..1.0));
        raw.push(sign + rng.gen_range(-1.0..1.0));
        let p = rng.gen_range(0.2..0.8);
        labels.push(SoftLabel::new(vec![p, 1.0 - p]));
        truth.push(Some(c));
    }
    Dataset::new(
        Matrix::from_vec(n, 2, raw),
        labels,
        vec![false; n],
        truth,
        2,
    )
}

fn base_config() -> PipelineConfig {
    PipelineConfig {
        budget: 20,
        round_size: 5,
        objective: WeightedObjective::new(0.8, 0.1),
        sgd: SgdConfig {
            lr: 0.1,
            epochs: 8,
            batch_size: 32,
            seed: 1,
            cache_provenance: true,
        },
        constructor: ConstructorKind::Retrain,
        annotation: AnnotationConfig {
            strategy: LabelStrategy::SuggestionOnly,
            error_rate: 0.05,
            seed: 2,
        },
        ..PipelineConfig::default()
    }
}

fn run(
    cfg: PipelineConfig,
    train: Dataset,
    val: &Dataset,
    test: &Dataset,
) -> chef_core::PipelineReport {
    let model = LogisticRegression::new(train.dim(), train.num_classes());
    let mut selector = InflSelector::incremental();
    Pipeline::new(cfg).run(&model, train, val, test, &mut selector)
}

#[test]
fn budget_larger_than_dataset_terminates() {
    let train = blob_data(15, 1, 0.5);
    let val = blob_data(20, 2, 0.5);
    let mut cfg = base_config();
    cfg.budget = 500; // far beyond the pool
    cfg.round_size = 7;
    let report = run(cfg, train, &val, &val);
    // Every uncleanable sample is consumed exactly once; loop exits.
    let selected: usize = report.rounds.iter().map(|r| r.selected.len()).sum();
    assert!(selected <= 15);
    assert!(report.final_test_f1().is_finite());
}

#[test]
fn single_class_dataset_survives() {
    // All ground truth negative → F1 of the positive class is 0, but the
    // pipeline must not panic or emit NaN.
    let train = blob_data(60, 3, 0.0);
    let val = blob_data(30, 4, 0.0);
    let report = run(base_config(), train, &val, &val);
    assert!(report.final_test_f1().is_finite());
    assert_eq!(report.final_test_f1(), 0.0);
}

#[test]
fn adversarial_annotators_cannot_break_the_loop() {
    // Annotators at near-maximal error install wrong labels; quality may
    // drop but invariants (budget, flags, determinism) must hold.
    let train = blob_data(80, 5, 0.5);
    let val = blob_data(40, 6, 0.5);
    let mut cfg = base_config();
    cfg.annotation.strategy = LabelStrategy::HumansOnly(3);
    cfg.annotation.error_rate = 0.9;
    let report = run(cfg, train, &val, &val);
    assert_eq!(
        report.cleaned_total + report.rounds.iter().map(|r| r.ambiguous).sum::<usize>(),
        report
            .rounds
            .iter()
            .map(|r| r.selected.len())
            .sum::<usize>()
    );
    assert!(report.final_test_f1().is_finite());
}

#[test]
fn gamma_extremes_run_end_to_end() {
    for gamma in [0.0, 1e-9, 1.0] {
        let train = blob_data(60, 7, 0.5);
        let val = blob_data(30, 8, 0.5);
        let mut cfg = base_config();
        cfg.objective = WeightedObjective::new(gamma, 0.1);
        let report = run(cfg, train, &val, &val);
        assert!(
            report.final_test_f1().is_finite(),
            "gamma {gamma} produced non-finite F1"
        );
    }
}

#[test]
fn huge_feature_magnitudes_stay_finite() {
    // Softmax saturates; losses clamp; influence stays finite.
    let mut train = blob_data(50, 9, 0.5);
    let scaled: Vec<f64> = train.feature(0).iter().map(|v| v * 1e6).collect();
    train.push(&scaled, SoftLabel::new(vec![0.3, 0.7]), false, Some(0));
    let val = blob_data(25, 10, 0.5);
    let report = run(base_config(), train, &val, &val);
    assert!(report.final_w.iter().all(|v| v.is_finite()));
    assert!(report.final_test_f1().is_finite());
}

#[test]
fn tiny_validation_set_is_usable() {
    let train = blob_data(60, 11, 0.5);
    let val = blob_data(2, 12, 0.5);
    let report = run(base_config(), train, &val, &val);
    assert!(report.final_test_f1().is_finite());
}

#[test]
fn round_size_one_walks_one_sample_at_a_time() {
    let train = blob_data(40, 13, 0.5);
    let val = blob_data(20, 14, 0.5);
    let mut cfg = base_config();
    cfg.budget = 5;
    cfg.round_size = 1;
    let report = run(cfg, train, &val, &val);
    assert_eq!(report.rounds.len(), 5);
    for r in &report.rounds {
        assert_eq!(r.selected.len(), 1);
    }
}

#[test]
fn duplicate_features_do_not_confuse_selection() {
    // Many identical rows with different labels: ranking must still be a
    // permutation and the pipeline must converge.
    let mut rng = SmallRng::seed_from_u64(15);
    let n = 40;
    let mut raw = Vec::new();
    let mut labels = Vec::new();
    let mut truth = Vec::new();
    for i in 0..n {
        raw.extend_from_slice(&[1.0, -1.0]); // identical features
        let p = rng.gen_range(0.1..0.9);
        labels.push(SoftLabel::new(vec![p, 1.0 - p]));
        truth.push(Some(i % 2));
    }
    let train = Dataset::new(
        Matrix::from_vec(n, 2, raw),
        labels,
        vec![false; n],
        truth,
        2,
    );
    let val = blob_data(20, 16, 0.5);
    let report = run(base_config(), train, &val, &val);
    let mut seen = std::collections::HashSet::new();
    for r in &report.rounds {
        for s in &r.selected {
            assert!(seen.insert(s.index));
        }
    }
}

#[test]
fn all_labels_already_deterministic_still_cleanable() {
    // Deterministic-but-uncleaned labels (the TARS regime): delta to the
    // own argmax is zero, but the flip direction still ranks.
    let mut train = blob_data(50, 17, 0.5);
    for i in 0..train.len() {
        let r = train.label(i).rounded();
        train.set_label(i, r);
    }
    let val = blob_data(25, 18, 0.5);
    let report = run(base_config(), train, &val, &val);
    assert!(report.cleaned_total > 0);
    assert!(report.final_test_f1().is_finite());
}

#[test]
fn mlp_pipeline_handles_degenerate_start() {
    // Non-convex path with an init seed that starts near-degenerate.
    let train = blob_data(60, 19, 0.5);
    let val = blob_data(30, 20, 0.5);
    let model = chef_model::Mlp::new(2, 4, 2);
    let mut cfg = base_config();
    cfg.sgd.lr = 0.05;
    let mut selector = InflSelector::full();
    let report = Pipeline::new(cfg).run(&model, train, &val, &val, &mut selector);
    assert!(report.final_w.iter().all(|v| v.is_finite()));
    assert_eq!(model.num_params(), report.final_w.len());
}
