//! Multiclass (C = 3) end-to-end coverage.
//!
//! The paper reduces every task to binary classification, but nothing in
//! CHEF's math is binary-specific: Eq. 6 sweeps all C candidate labels,
//! Theorem 1 sums over C per-class Hessians, and majority vote handles
//! any class count. These tests exercise the whole pipeline at C = 3 —
//! one of the paper's "more general settings" extensions.

use chef_core::increm::IncremInfl;
use chef_core::influence::{influence_vector, rank_infl_with_vector, InflConfig};
use chef_core::{
    AnnotationConfig, ConstructorKind, InflSelector, LabelStrategy, Pipeline, PipelineConfig,
};
use chef_linalg::Matrix;
use chef_model::{Dataset, LogisticRegression, Model, SoftLabel, WeightedObjective};
use chef_train::SgdConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Three Gaussian clusters at the corners of a triangle; weak labels are
/// random probability vectors (the fully-clean regime).
fn three_cluster_data(n: usize, seed: u64, weak: bool) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let centers = [(2.0, 0.0), (-1.0, 1.8), (-1.0, -1.8)];
    let mut raw = Vec::with_capacity(2 * n);
    let mut labels = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.gen_range(0..3usize);
        raw.push(centers[c].0 + rng.gen_range(-1.0..1.0));
        raw.push(centers[c].1 + rng.gen_range(-1.0..1.0));
        if weak {
            let w: Vec<f64> = (0..3).map(|_| rng.gen_range(0.05..1.0)).collect();
            labels.push(SoftLabel::from_weights(&w));
        } else {
            labels.push(SoftLabel::onehot(c, 3));
        }
        truth.push(Some(c));
    }
    Dataset::new(
        Matrix::from_vec(n, 2, raw),
        labels,
        vec![!weak; n],
        truth,
        3,
    )
}

fn config() -> PipelineConfig {
    PipelineConfig {
        budget: 45,
        round_size: 15,
        objective: WeightedObjective::new(0.8, 0.1),
        sgd: SgdConfig {
            lr: 0.15,
            epochs: 20,
            batch_size: 64,
            seed: 4,
            cache_provenance: true,
        },
        constructor: ConstructorKind::Retrain,
        annotation: AnnotationConfig {
            strategy: LabelStrategy::SuggestionOnly,
            error_rate: 0.05,
            seed: 9,
        },
        ..PipelineConfig::default()
    }
}

/// Multiclass accuracy (F1 of class 1 is less meaningful at C = 3).
fn accuracy(model: &LogisticRegression, w: &[f64], data: &Dataset) -> f64 {
    let correct = (0..data.len())
        .filter(|&i| Some(model.predict_class(w, data.feature(i))) == data.ground_truth(i))
        .count();
    correct as f64 / data.len() as f64
}

#[test]
fn pipeline_cleans_a_three_class_problem() {
    let train = three_cluster_data(400, 1, true);
    let val = three_cluster_data(90, 2, false);
    let test = three_cluster_data(90, 3, false);
    let model = LogisticRegression::new(2, 3);
    let mut selector = InflSelector::incremental();
    let report = Pipeline::new(config()).run(&model, train, &val, &test, &mut selector);
    assert_eq!(report.rounds.len(), 3);
    let before = {
        // Re-derive pre-cleaning accuracy from the initial F1 report being
        // near-chance: check the cleaned model directly instead.
        accuracy(&model, &report.final_w, &test)
    };
    assert!(
        before > 0.55,
        "cleaned 3-class accuracy only {before:.3} (chance = 0.33)"
    );
    // Suggestions must span all three classes eventually (random weak
    // labels are wrong in every direction).
    let suggested: std::collections::HashSet<usize> = report
        .rounds
        .iter()
        .flat_map(|r| r.selected.iter().filter_map(|s| s.suggested))
        .collect();
    assert!(suggested.len() >= 2, "suggestions: {suggested:?}");
}

#[test]
fn infl_suggestions_match_truth_on_three_classes() {
    let train = three_cluster_data(300, 5, true);
    let val = three_cluster_data(90, 6, false);
    let model = LogisticRegression::new(2, 3);
    let obj = WeightedObjective::new(0.8, 0.1);
    let sgd = SgdConfig {
        lr: 0.15,
        epochs: 25,
        batch_size: 64,
        seed: 2,
        cache_provenance: false,
    };
    let w = chef_train::train(&model, &obj, &train, &model.initial_params(0), &sgd).w;
    let v = influence_vector(&model, &obj, &train, &val, &w, &InflConfig::default());
    let pool = train.uncleaned_indices();
    let ranked = rank_infl_with_vector(&model, &train, &w, &v, &pool, obj.gamma);
    let top: Vec<_> = ranked.iter().take(30).collect();
    let matches = top
        .iter()
        .filter(|s| train.ground_truth(s.index) == Some(s.suggested))
        .count();
    assert!(
        matches >= 20,
        "only {matches}/30 three-class suggestions match ground truth"
    );
}

#[test]
fn increm_infl_equivalence_holds_at_three_classes() {
    let train = three_cluster_data(250, 8, true);
    let val = three_cluster_data(60, 9, false);
    let model = LogisticRegression::new(2, 3);
    let obj = WeightedObjective::new(0.8, 0.1);
    let sgd = SgdConfig {
        lr: 0.1,
        epochs: 15,
        batch_size: 50,
        seed: 3,
        cache_provenance: false,
    };
    let w0 = chef_train::train(&model, &obj, &train, &model.initial_params(0), &sgd).w;
    let increm = IncremInfl::initialize(&model, &train, &w0);
    let w_k = chef_train::train(
        &model,
        &obj,
        &train,
        &w0,
        &SgdConfig {
            epochs: 3,
            seed: 11,
            ..sgd
        },
    )
    .w;
    let v = influence_vector(&model, &obj, &train, &val, &w_k, &InflConfig::default());
    let pool = train.uncleaned_indices();
    let (inc, stats) = increm.select(&model, &train, &w_k, &v, &pool, 8, obj.gamma);
    let mut full = rank_infl_with_vector(&model, &train, &w_k, &v, &pool, obj.gamma);
    full.truncate(8);
    let a: Vec<usize> = inc.iter().map(|s| s.index).collect();
    let b: Vec<usize> = full.iter().map(|s| s.index).collect();
    assert_eq!(a, b, "increm != full at C = 3 ({stats:?})");
}

#[test]
fn three_class_annotation_can_tie_and_keeps_probabilistic_label() {
    // With 3 classes and 3 annotators a 1-1-1 split is possible; force it
    // with adversarial annotators and verify the Appendix F.1 rule.
    use chef_core::annotation::{AnnotationOutcome, AnnotationPhase};
    use chef_core::Selection;
    let mut found_tie = false;
    for seed in 0..400 {
        let mut data = three_cluster_data(3, seed, true);
        let phase = AnnotationPhase::new(AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.65,
            seed,
        });
        let before = data.label(0).clone();
        let out = phase.annotate(
            &mut data,
            &[Selection {
                index: 0,
                suggested: None,
            }],
        );
        if out[0] == AnnotationOutcome::Ambiguous {
            found_tie = true;
            assert!(!data.is_clean(0));
            assert_eq!(data.label(0), &before);
            break;
        }
    }
    assert!(found_tie, "no 3-way tie found across 400 seeds");
}
