//! Integration: DeltaGrad-L parity with retraining across multiple
//! cleaning rounds, on realistically generated (not hand-built) data.

use chef_core::{ConstructorKind, ModelConstructor};
use chef_data::{generate, paper_suite};
use chef_linalg::vector;
use chef_model::{LogisticRegression, SoftLabel, WeightedObjective};
use chef_train::{DeltaGradConfig, SgdConfig};
use chef_weak::{weaken_split, WeakenConfig};

fn setup() -> (LogisticRegression, WeightedObjective, chef_data::Split) {
    let spec = paper_suite(50)
        .into_iter()
        .find(|s| s.name == "Retina")
        .unwrap();
    let mut split = generate(&spec, 9);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    let model = LogisticRegression::new(split.train.dim(), 2);
    (model, WeightedObjective::new(0.8, 0.1), split)
}

fn sgd() -> SgdConfig {
    SgdConfig {
        lr: 0.1,
        epochs: 12,
        batch_size: 64,
        seed: 17,
        cache_provenance: true,
    }
}

#[test]
fn three_rounds_of_deltagrad_l_stay_close_to_retraining() {
    let (model, obj, split) = setup();
    let retrain = ModelConstructor::new(ConstructorKind::Retrain, sgd());
    let dg = ModelConstructor::new(
        ConstructorKind::DeltaGradL(DeltaGradConfig::default()),
        sgd(),
    );

    let mut data = split.train.clone();
    let init = retrain.initial_train(&model, &obj, &data);
    let mut trace_dg = init.trace.clone();
    let mut trace_rt = init.trace;

    for round in 0..3 {
        // Clean 8 samples to ground truth.
        let old = data.clone();
        let changed: Vec<usize> = data.uncleaned_indices().into_iter().take(8).collect();
        for &i in &changed {
            let t = data.ground_truth(i).unwrap();
            data.clean_label(i, SoftLabel::onehot(t, 2));
        }
        let rt = retrain.update(&model, &obj, &old, &data, &changed, &trace_rt);
        let up = dg.update(&model, &obj, &old, &data, &changed, &trace_dg);
        let w_dg = up.w;
        trace_dg = up.trace;
        trace_rt = rt.trace;
        let rel = vector::distance(&w_dg, &rt.w) / vector::norm2(&rt.w).max(1.0);
        assert!(rel < 0.1, "round {round}: relative distance {rel}");
    }
}

#[test]
fn deltagrad_l_is_faster_than_retraining() {
    let (model, obj, split) = setup();
    let retrain = ModelConstructor::new(ConstructorKind::Retrain, sgd());
    let dg = ModelConstructor::new(
        ConstructorKind::DeltaGradL(DeltaGradConfig::default()),
        sgd(),
    );
    let mut data = split.train.clone();
    let init = retrain.initial_train(&model, &obj, &data);
    let old = data.clone();
    let changed: Vec<usize> = (0..10).collect();
    for &i in &changed {
        let t = data.ground_truth(i).unwrap();
        data.clean_label(i, SoftLabel::onehot(t, 2));
    }
    // Warm up, then take the best of 3 to de-noise CI machines.
    let mut t_rt = f64::INFINITY;
    let mut t_dg = f64::INFINITY;
    for _ in 0..3 {
        let rt = retrain.update(&model, &obj, &old, &data, &changed, &init.trace);
        let up = dg.update(&model, &obj, &old, &data, &changed, &init.trace);
        t_rt = t_rt.min(rt.elapsed.as_secs_f64());
        t_dg = t_dg.min(up.elapsed.as_secs_f64());
    }
    assert!(
        t_dg < t_rt,
        "DeltaGrad-L {t_dg:.4}s not faster than Retrain {t_rt:.4}s"
    );
}

#[test]
fn deltagrad_l_handles_the_weight_flip_of_cleaning() {
    // The γ → 1 re-weighting is part of the update (§4.2 point 4): verify
    // by comparing against retraining with t0 = 1 (exact replay).
    let (model, obj, split) = setup();
    let mut data = split.train.clone();
    let exact = ModelConstructor::new(
        ConstructorKind::DeltaGradL(DeltaGradConfig {
            j0: 0,
            t0: 1,
            m0: 2,
        }),
        sgd(),
    );
    let retrain = ModelConstructor::new(ConstructorKind::Retrain, sgd());
    let init = retrain.initial_train(&model, &obj, &data);
    let old = data.clone();
    let changed = vec![3usize, 77, 150];
    for &i in &changed {
        let t = data.ground_truth(i).unwrap();
        data.clean_label(i, SoftLabel::onehot(t, 2));
    }
    let a = exact.update(&model, &obj, &old, &data, &changed, &init.trace);
    let b = retrain.update(&model, &obj, &old, &data, &changed, &init.trace);
    for (x, y) in a.w.iter().zip(&b.w) {
        assert!((x - y).abs() < 1e-9, "{x} vs {y}");
    }
}
