//! Integration: every baseline selector drives the full pipeline without
//! panicking, respects its contract, and the Infl family outperforms the
//! random control on the poisoned-labels workload.

use chef_baselines::{
    ActiveEntropy, ActiveLeastConfidence, Duti, InflD, InflY, RandomSelector, Tars, O2U,
};
use chef_core::{
    AnnotationConfig, ConstructorKind, InflSelector, LabelStrategy, Pipeline, PipelineConfig,
    SampleSelector,
};
use chef_data::{generate, DatasetKind, DatasetSpec};
use chef_model::{LogisticRegression, WeightedObjective};
use chef_train::SgdConfig;
use chef_weak::{weaken_split, WeakenConfig};
use std::collections::HashSet;

fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "btest",
        kind: DatasetKind::FullyClean,
        train: 300,
        val: 80,
        test: 80,
        dim: 10,
        num_classes: 2,
        class_sep: 1.2,
        positive_rate: 0.5,
        truth_noise: 0.0,
        weak_quality: 0.5,
        annotator_error: 0.05,
    }
}

fn config() -> PipelineConfig {
    PipelineConfig {
        budget: 30,
        round_size: 10,
        objective: WeightedObjective::new(0.8, 0.1),
        sgd: SgdConfig {
            lr: 0.1,
            epochs: 12,
            batch_size: 64,
            seed: 8,
            cache_provenance: true,
        },
        constructor: ConstructorKind::Retrain,
        annotation: AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.05,
            seed: 6,
        },
        ..PipelineConfig::default()
    }
}

fn run_with(selector: &mut dyn SampleSelector, seed: u64) -> (f64, f64, Vec<usize>) {
    let spec = spec();
    let mut split = generate(&spec, seed);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    let model = LogisticRegression::new(split.train.dim(), 2);
    let report =
        Pipeline::new(config()).run(&model, split.train, &split.val, &split.test, selector);
    let selected: Vec<usize> = report
        .rounds
        .iter()
        .flat_map(|r| r.selected.iter().map(|s| s.index))
        .collect();
    (report.initial_test_f1, report.final_test_f1(), selected)
}

#[test]
fn every_selector_completes_the_pipeline() {
    let selectors: Vec<Box<dyn SampleSelector>> = vec![
        Box::new(InflSelector::full()),
        Box::new(InflSelector::incremental()),
        Box::new(InflD::default()),
        Box::new(InflY::default()),
        Box::new(ActiveLeastConfidence),
        Box::new(ActiveEntropy),
        Box::new(O2U::default()),
        Box::new(Tars::default()),
        Box::new(Duti::default()),
        Box::new(RandomSelector::new(1)),
    ];
    for mut s in selectors {
        let name = s.name().to_string();
        let (before, after, selected) = run_with(s.as_mut(), 10);
        assert!((0.0..=1.0).contains(&after), "{name}: F1 {after}");
        assert!(before.is_finite(), "{name}");
        assert_eq!(selected.len(), 30, "{name}: budget not honored");
        let unique: HashSet<_> = selected.iter().collect();
        assert_eq!(unique.len(), 30, "{name}: duplicate selections");
    }
}

#[test]
fn infl_beats_random_on_random_labels() {
    // Averaged across seeds to keep the assertion stable.
    let mut infl_gain = 0.0;
    let mut random_gain = 0.0;
    let seeds = 3;
    for seed in 0..seeds {
        let mut infl = InflSelector::incremental();
        let (b, a, _) = run_with(&mut infl, 20 + seed);
        infl_gain += a - b;
        let mut random = RandomSelector::new(seed);
        let (b, a, _) = run_with(&mut random, 20 + seed);
        random_gain += a - b;
    }
    assert!(
        infl_gain >= random_gain - 0.02 * seeds as f64,
        "Infl gain {infl_gain:.4} < Random gain {random_gain:.4}"
    );
}

#[test]
fn suggestion_capable_selectors_mark_their_suggestions() {
    let spec = spec();
    let mut split = generate(&spec, 12);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    let model = LogisticRegression::new(split.train.dim(), 2);
    let obj = WeightedObjective::new(0.8, 0.1);
    let w = vec![0.05; chef_model::Model::num_params(&model)];
    let pool = split.train.uncleaned_indices();
    let ctx = chef_core::SelectorContext {
        model: &model,
        objective: &obj,
        data: &split.train,
        val: &split.val,
        w: &w,
        pool: &pool,
        b: 5,
        round: 0,
    };
    assert!(InflSelector::full()
        .select(&ctx)
        .iter()
        .all(|s| s.suggested.is_some()));
    assert!(Duti::default()
        .select(&ctx)
        .iter()
        .all(|s| s.suggested.is_some()));
    assert!(InflD::default()
        .select(&ctx)
        .iter()
        .all(|s| s.suggested.is_none()));
    assert!(O2U::default()
        .select(&ctx)
        .iter()
        .all(|s| s.suggested.is_none()));
}
