#!/usr/bin/env bash
# Local CI: formatting, lints, and the test suite in both feature
# configurations (parallel selector hot path on and off).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (serial: --no-default-features)"
cargo clippy -p chef-model -p chef-core -p chef-bench --all-targets --no-default-features -- -D warnings

echo "==> cargo test (default features: parallel)"
cargo test -q --workspace

echo "==> cargo test (serial: --no-default-features)"
# --no-default-features applies to the packages that own the `parallel`
# feature; the rest of the workspace is unaffected by it.
cargo test -q -p chef-model -p chef-core -p chef-bench --no-default-features

echo "ci.sh: all green"
