#!/usr/bin/env bash
# Local CI: formatting, lints, and the test suite in both feature
# configurations (parallel selector hot path on and off).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (serial/no-telemetry: --no-default-features)"
cargo clippy -p chef-linalg -p chef-model -p chef-data -p chef-core -p chef-bench -p chef-obs -p chef-serve --all-targets --no-default-features -- -D warnings

echo "==> no-sleep guard (daemon suites must synchronize on condvars, not time)"
# Sleep-based tests are flaky under load and slow everywhere; the serve
# harness is required to be event-driven end to end.
if grep -rn "thread::sleep" tests/serve_*.rs crates/serve/src; then
  echo "serve code/tests must not call thread::sleep" >&2
  exit 1
fi

echo "==> cargo test (default features, 1 rayon worker)"
# The shim's pool size is env-pinned; running the suite at both ends of
# {1,4} workers covers the serial dispatch path and the chunked
# parallel paths (serial/parallel equivalence tests then compare real
# threads).
RAYON_NUM_THREADS=1 cargo test -q --workspace

echo "==> cargo test (default features, 4 rayon workers)"
RAYON_NUM_THREADS=4 cargo test -q --workspace

echo "==> cargo test (serial: --no-default-features)"
# --no-default-features applies to the packages that own the `parallel`
# and `telemetry` features; the rest of the workspace is unaffected.
cargo test -q -p chef-linalg -p chef-model -p chef-data -p chef-core -p chef-bench -p chef-obs -p chef-serve --no-default-features

echo "==> cargo test (fault injection: crash/torn-write/bit-flip replay equivalence)"
cargo test -q -p chef-core --features fault-inject --test checkpoint_resume --test store_equivalence

echo "==> cargo test (fault injection, serial: --no-default-features)"
cargo test -q -p chef-core --no-default-features --features fault-inject --test checkpoint_resume --test store_equivalence

echo "==> cargo test (daemon fault harness: kill-mid-round / torn-checkpoint / stale-replay under serve)"
cargo test -q -p chef-serve --features fault-inject --test serve_fault

echo "==> cargo test (daemon fault harness, serial: --no-default-features)"
cargo test -q -p chef-serve --no-default-features --features fault-inject --test serve_fault

# The pooled scheduler must preserve every serve invariant at both ends
# of its pool-size range: 1 worker (fully serialized slices) and the
# default 4. CHEF_SERVE_WORKERS pins the pool without touching tests.
echo "==> cargo test (serve suites, 1-worker pool)"
CHEF_SERVE_WORKERS=1 cargo test -q -p chef-serve
CHEF_SERVE_WORKERS=1 cargo test -q -p chef-serve --features fault-inject --test serve_fault

echo "==> cargo test (serve suites, 4-worker pool)"
CHEF_SERVE_WORKERS=4 cargo test -q -p chef-serve
CHEF_SERVE_WORKERS=4 cargo test -q -p chef-serve --features fault-inject --test serve_fault

# One framed submit + blocking results piped through the daemon's stdio
# mode: proves the binary, the protocol, and the job manager compose
# outside the test harness. `results` waits for the job, so the smoke
# needs no polling.
serve_smoke() {
  local spec='{"name":"smoke","dataset":"MIMIC","scale":30,"seed":5,"budget":10,"round_size":5}'
  local ask='{"job":1}'
  local out
  out=$( { printf 'chef-serve.v1 submit %d\n%s\n' "${#spec}" "$spec"
           printf 'chef-serve.v1 results %d\n%s\n' "${#ask}" "$ask"
         } | cargo run -q --release -p chef-serve "$@" -- --stdin )
  if ! grep -q '"final_test_f1"' <<<"$out"; then
    echo "serve smoke: no results frame in daemon output:" >&2
    echo "$out" >&2
    exit 1
  fi
}

echo "==> chef-serve stdio smoke (default features)"
serve_smoke

echo "==> chef-serve stdio smoke (--no-default-features)"
serve_smoke --no-default-features

echo "==> serve_scale bench (quick smoke: pooled vs thread-per-job, thread census + bit identity)"
cargo run -q --release -p chef-serve --bin serve_scale -- --quick

echo "==> serve_scale bench (quick smoke, --no-default-features)"
cargo run -q --release -p chef-serve --bin serve_scale --no-default-features -- --quick

echo "==> infl_kernels bench (quick smoke: batched kernels run end-to-end)"
cargo run -q --release -p chef-bench --bin infl_kernels -- --quick

echo "==> par_speedup bench (quick smoke: thread sweep re-execs at 1/2/4 workers)"
cargo run -q --release -p chef-bench --bin par_speedup -- --quick --threads 1,2,4

echo "==> train_kernels bench (quick smoke, default features)"
cargo run -q --release -p chef-bench --bin train_kernels -- --quick

echo "==> train_kernels bench (quick smoke, --no-default-features)"
cargo run -q --release -p chef-bench --bin train_kernels --no-default-features -- --quick

echo "==> oocs_scale bench (quick smoke, eager integrity: in-memory vs mmap bit-identity + RSS)"
cargo run -q --release -p chef-bench --bin oocs_scale -- --quick --integrity eager

echo "==> oocs_scale bench (quick smoke, lazy first-touch integrity + cold-open lane)"
cargo run -q --release -p chef-bench --bin oocs_scale -- --quick --integrity lazy

echo "==> oocs_scale bench (quick smoke, pread fallback under lazy integrity)"
cargo run -q --release -p chef-bench --bin oocs_scale -- --quick --integrity lazy --force-pread
# Scratch hygiene: the bench must remove its per-run store directories.
if compgen -G "target/oocs_scale-*" > /dev/null; then
  echo "oocs_scale left scratch directories behind:" >&2
  ls -d target/oocs_scale-* >&2
  exit 1
fi

echo "==> cargo test --doc (default features)"
cargo test -q --doc --workspace

echo "==> cargo test --doc (--no-default-features)"
cargo test -q --doc -p chef-linalg -p chef-model -p chef-data -p chef-core -p chef-bench -p chef-obs -p chef-serve --no-default-features

echo "==> cargo doc (default features, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> cargo doc (--no-default-features, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p chef-linalg -p chef-model -p chef-data -p chef-core -p chef-bench -p chef-obs -p chef-serve --no-default-features

echo "ci.sh: all green"
