#!/usr/bin/env bash
# Local CI: formatting, lints, and the test suite in both feature
# configurations (parallel selector hot path on and off).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (serial/no-telemetry: --no-default-features)"
cargo clippy -p chef-linalg -p chef-model -p chef-data -p chef-core -p chef-bench -p chef-obs --all-targets --no-default-features -- -D warnings

echo "==> cargo test (default features: parallel)"
cargo test -q --workspace

echo "==> cargo test (default features, 4 rayon workers)"
# The shim's pool size is env-pinned; re-running the suite at 4 workers
# exercises the chunked parallel paths the 1-worker run dispatches away
# from (serial/parallel equivalence tests then compare real threads).
RAYON_NUM_THREADS=4 cargo test -q --workspace

echo "==> cargo test (serial: --no-default-features)"
# --no-default-features applies to the packages that own the `parallel`
# and `telemetry` features; the rest of the workspace is unaffected.
cargo test -q -p chef-linalg -p chef-model -p chef-data -p chef-core -p chef-bench -p chef-obs --no-default-features

echo "==> cargo test (fault injection: crash/torn-write/bit-flip replay equivalence)"
cargo test -q -p chef-core --features fault-inject --test checkpoint_resume --test store_equivalence

echo "==> cargo test (fault injection, serial: --no-default-features)"
cargo test -q -p chef-core --no-default-features --features fault-inject --test checkpoint_resume --test store_equivalence

echo "==> infl_kernels bench (quick smoke: batched kernels run end-to-end)"
cargo run -q --release -p chef-bench --bin infl_kernels -- --quick

echo "==> par_speedup bench (quick smoke: thread sweep re-execs at 1/2/4 workers)"
cargo run -q --release -p chef-bench --bin par_speedup -- --quick --threads 1,2,4

echo "==> train_kernels bench (quick smoke, default features)"
cargo run -q --release -p chef-bench --bin train_kernels -- --quick

echo "==> train_kernels bench (quick smoke, --no-default-features)"
cargo run -q --release -p chef-bench --bin train_kernels --no-default-features -- --quick

echo "==> oocs_scale bench (quick smoke, eager integrity: in-memory vs mmap bit-identity + RSS)"
cargo run -q --release -p chef-bench --bin oocs_scale -- --quick --integrity eager

echo "==> oocs_scale bench (quick smoke, lazy first-touch integrity + cold-open lane)"
cargo run -q --release -p chef-bench --bin oocs_scale -- --quick --integrity lazy

echo "==> oocs_scale bench (quick smoke, pread fallback under lazy integrity)"
cargo run -q --release -p chef-bench --bin oocs_scale -- --quick --integrity lazy --force-pread
# Scratch hygiene: the bench must remove its per-run store directories.
if compgen -G "target/oocs_scale-*" > /dev/null; then
  echo "oocs_scale left scratch directories behind:" >&2
  ls -d target/oocs_scale-* >&2
  exit 1
fi

echo "==> cargo test --doc (default features)"
cargo test -q --doc --workspace

echo "==> cargo test --doc (--no-default-features)"
cargo test -q --doc -p chef-linalg -p chef-model -p chef-data -p chef-core -p chef-bench -p chef-obs --no-default-features

echo "==> cargo doc (default features, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> cargo doc (--no-default-features, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p chef-linalg -p chef-model -p chef-data -p chef-core -p chef-bench -p chef-obs --no-default-features

echo "ci.sh: all green"
