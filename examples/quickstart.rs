//! Quickstart: clean weak labels with the CHEF pipeline in ~40 lines.
//!
//! Generates a small synthetic dataset, replaces its training labels with
//! uninformative probabilistic labels, and runs the iterative cleaning
//! loop with Infl + Increm-Infl, simulated annotators and DeltaGrad-L
//! incremental model updates.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chef_core::{
    AnnotationConfig, ConstructorKind, InflSelector, LabelStrategy, Pipeline, PipelineConfig,
};
use chef_data::{generate, paper_suite};
use chef_model::{LogisticRegression, WeightedObjective};
use chef_train::{DeltaGradConfig, SgdConfig};
use chef_weak::{weaken_split, WeakenConfig};

fn main() {
    // 1. A Twitter-sized dataset (1/10 of the paper's split sizes).
    let spec = paper_suite(10)
        .into_iter()
        .find(|s| s.name == "Twitter")
        .expect("suite contains Twitter");
    let mut split = generate(&spec, 42);

    // 2. Replace training labels with weak (probabilistic) ones.
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    println!(
        "training set: {} samples, weak-label error rate {:.1}%",
        split.train.len(),
        100.0 * split.train.weak_label_error_rate().unwrap_or(f64::NAN)
    );

    // 3. Configure the cleaning pipeline: budget B = 50, b = 10 per round,
    //    γ = 0.8 on uncleaned samples, DeltaGrad-L model updates.
    let config = PipelineConfig {
        budget: 50,
        round_size: 10,
        objective: WeightedObjective::new(0.8, 0.2),
        sgd: SgdConfig {
            lr: 0.1,
            epochs: 25,
            batch_size: 128,
            seed: 7,
            cache_provenance: true,
        },
        constructor: ConstructorKind::DeltaGradL(DeltaGradConfig::default()),
        annotation: AnnotationConfig {
            strategy: LabelStrategy::SuggestionPlusHumans(2), // Infl (three)
            error_rate: 0.25,
            seed: 99,
        },
        ..PipelineConfig::default()
    };

    // 4. Run.
    let model = LogisticRegression::new(split.train.dim(), split.train.num_classes());
    let mut selector = InflSelector::incremental();
    let report =
        Pipeline::new(config).run(&model, split.train, &split.val, &split.test, &mut selector);

    // 5. Inspect.
    println!(
        "uncleaned model:  val F1 {:.4} | test F1 {:.4}",
        report.initial_val_f1, report.initial_test_f1
    );
    for r in &report.rounds {
        println!(
            "round {}: cleaned {:2} (ambiguous {}) | val F1 {:.4} | test F1 {:.4} | select {:>6.1?} | update {:>6.1?}",
            r.round, r.cleaned, r.ambiguous, r.val_f1, r.test_f1, r.select_time, r.update_time
        );
    }
    println!(
        "cleaned {} labels total; final test F1 {:.4}",
        report.cleaned_total,
        report.final_test_f1()
    );
}
