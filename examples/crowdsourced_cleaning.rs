//! Crowdsourced-labels scenario: can Infl's suggestions replace workers?
//!
//! A Twitter-like sentiment task whose probabilistic labels come from
//! labeling functions + the generative label model, and whose "human"
//! annotators are noisy crowd workers (25% error each). The example
//! contrasts the paper's three annotation strategies — majority of three
//! workers, Infl's suggestion alone, and suggestion + two workers — at
//! identical budgets, which is exactly the Table 1 comparison.
//!
//! ```text
//! cargo run --release --example crowdsourced_cleaning
//! ```

use chef_core::{
    AnnotationConfig, ConstructorKind, InflSelector, LabelStrategy, Pipeline, PipelineConfig,
};
use chef_data::{generate, paper_suite};
use chef_model::{LogisticRegression, WeightedObjective};
use chef_train::SgdConfig;
use chef_weak::{weaken_split, WeakenConfig};

fn main() {
    let spec = paper_suite(10)
        .into_iter()
        .find(|s| s.name == "Twitter")
        .expect("suite contains Twitter");
    let mut split = generate(&spec, 21);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    println!(
        "weak-label error rate before cleaning: {:.1}%",
        100.0 * split.train.weak_label_error_rate().unwrap_or(f64::NAN)
    );

    let model = LogisticRegression::new(split.train.dim(), split.train.num_classes());
    let strategies = [
        (
            "Infl (one)  — 3 crowd workers",
            LabelStrategy::HumansOnly(3),
            3,
        ),
        (
            "Infl (two)  — suggestion only",
            LabelStrategy::SuggestionOnly,
            0,
        ),
        (
            "Infl (three) — suggestion + 2 workers",
            LabelStrategy::SuggestionPlusHumans(2),
            2,
        ),
    ];

    for (name, strategy, workers_per_sample) in strategies {
        let config = PipelineConfig {
            budget: 100,
            round_size: 10,
            objective: WeightedObjective::new(0.8, 0.2),
            sgd: SgdConfig {
                lr: 0.1,
                epochs: 25,
                batch_size: 128,
                seed: 5,
                cache_provenance: true,
            },
            constructor: ConstructorKind::Retrain,
            annotation: AnnotationConfig {
                strategy,
                error_rate: 0.25,
                seed: 13,
            },
            ..PipelineConfig::default()
        };
        let mut selector = InflSelector::incremental();
        let report = Pipeline::new(config).run(
            &model,
            split.train.clone(),
            &split.val,
            &split.test,
            &mut selector,
        );
        let paid_labels: usize = report
            .rounds
            .iter()
            .map(|r| r.selected.len() * workers_per_sample)
            .sum();
        println!(
            "{name}: test F1 {:.4} → {:.4} | paid crowd labels: {paid_labels}",
            report.initial_test_f1,
            report.final_test_f1(),
        );
    }
}
