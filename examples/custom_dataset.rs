//! Bringing your own data: CSV import/export round trip.
//!
//! Real deployments export pooled embeddings + weak labels from their
//! Python stack; `chef_data::csv` reads them straight into the pipeline.
//! This example writes a synthetic split to CSV (standing in for your
//! exporter), reads it back, and cleans it — the full adoption path.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use chef_core::{InflSelector, Pipeline, PipelineConfig};
use chef_data::{generate, paper_suite, read_split, write_split};
use chef_model::LogisticRegression;
use chef_weak::{weaken_split, WeakenConfig};

fn main() {
    // Pretend this is your exporter: any CSV with the documented header
    // works (`dim=<d>,classes=<C>`, then features, label probs, clean
    // flag, optional truth per row).
    let spec = paper_suite(20)
        .into_iter()
        .find(|s| s.name == "Fact")
        .expect("suite contains Fact");
    let mut split = generate(&spec, 7);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    let dir = std::env::temp_dir().join("chef_custom_dataset");
    write_split(&split, &dir, "my_data").expect("export");
    println!("wrote CSVs to {}", dir.display());

    // ---- A downstream user starts here. ----
    let split = read_split(&dir, "my_data").expect("import");
    println!(
        "imported {} train / {} val / {} test samples ({} features, {} classes)",
        split.train.len(),
        split.val.len(),
        split.test.len(),
        split.train.dim(),
        split.train.num_classes()
    );

    let model = LogisticRegression::new(split.train.dim(), split.train.num_classes());
    let mut selector = InflSelector::incremental();
    let config = PipelineConfig {
        budget: 30,
        round_size: 10,
        ..PipelineConfig::default()
    };
    let report =
        Pipeline::new(config).run(&model, split.train, &split.val, &split.test, &mut selector);
    println!(
        "cleaned {} labels: test F1 {:.4} → {:.4}",
        report.cleaned_total,
        report.initial_test_f1,
        report.final_test_f1()
    );
    let _ = std::fs::remove_dir_all(dir);
}
