//! Medical-imaging scenario (the paper's motivating use case).
//!
//! A MIMIC-like chest-radiograph task: embeddings from a frozen backbone,
//! *random* probabilistic labels (no text for labeling functions — the
//! paper's fully-clean regime), expert annotators at 5% error, and an
//! early-termination target so the hospital stops paying radiologists as
//! soon as the model is good enough.
//!
//! ```text
//! cargo run --release --example medical_imaging
//! ```

use chef_core::{
    AnnotationConfig, ConstructorKind, InflSelector, LabelStrategy, Pipeline, PipelineConfig,
};
use chef_data::{generate, paper_suite};
use chef_model::{LogisticRegression, WeightedObjective};
use chef_train::{DeltaGradConfig, SgdConfig};
use chef_weak::weaken_split;

fn main() {
    let spec = paper_suite(10)
        .into_iter()
        .find(|s| s.name == "MIMIC")
        .expect("suite contains MIMIC");
    let mut split = generate(&spec, 7);
    weaken_split(&mut split, &spec, &chef_weak::WeakenConfig::default());

    let model = LogisticRegression::new(split.train.dim(), split.train.num_classes());

    // Run twice: without and with an early-termination target, to show the
    // annotation budget saved by the redesigned pipeline (Figure 1, loop 2).
    for target in [None, Some(0.70)] {
        let config = PipelineConfig {
            budget: 100,
            round_size: 10,
            objective: WeightedObjective::new(0.8, 0.2),
            sgd: SgdConfig {
                lr: 0.1,
                epochs: 25,
                batch_size: 256,
                seed: 3,
                cache_provenance: true,
            },
            constructor: ConstructorKind::DeltaGradL(DeltaGradConfig::default()),
            annotation: AnnotationConfig {
                strategy: LabelStrategy::HumansOnly(3), // three radiologists
                error_rate: 0.05,
                seed: 1,
            },
            target_val_f1: target,
            ..PipelineConfig::default()
        };
        let mut selector = InflSelector::incremental();
        let report = Pipeline::new(config).run(
            &model,
            split.train.clone(),
            &split.val,
            &split.test,
            &mut selector,
        );
        let annotations: usize = report.rounds.iter().map(|r| r.selected.len() * 3).sum();
        println!(
            "target {:?}: {} rounds, {} expert annotations, early-terminated: {}, test F1 {:.4} → {:.4}",
            target,
            report.rounds.len(),
            annotations,
            report.early_terminated,
            report.initial_test_f1,
            report.final_test_f1()
        );
        if let Some(stats) = report.rounds.last().and_then(|r| r.selector_stats) {
            println!(
                "  (last round: Increm-Infl evaluated {}/{} candidates)",
                stats.candidates, stats.pool
            );
        }
    }
}
