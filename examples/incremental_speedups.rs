//! The systems story: what Increm-Infl and DeltaGrad-L actually save.
//!
//! Runs the same cleaning workload twice — naive (Full influence +
//! Retrain) vs incremental (Increm-Infl + DeltaGrad-L) — and prints the
//! per-phase timings plus the check that both produce the same cleaned
//! samples and near-identical models (the paper's Exp2/Exp3 story in one
//! program).
//!
//! ```text
//! cargo run --release --example incremental_speedups
//! ```

use chef_core::{
    AnnotationConfig, ConstructorKind, InflSelector, LabelStrategy, Pipeline, PipelineConfig,
};
use chef_data::{generate, paper_suite};
use chef_model::{LogisticRegression, WeightedObjective};
use chef_train::{DeltaGradConfig, SgdConfig};
use chef_weak::{weaken_split, WeakenConfig};

fn main() {
    let spec = paper_suite(5)
        .into_iter()
        .find(|s| s.name == "MIMIC")
        .expect("suite contains MIMIC");
    let mut split = generate(&spec, 11);
    weaken_split(&mut split, &spec, &WeakenConfig::default());
    println!("dataset: {} training samples", split.train.len());

    let model = LogisticRegression::new(split.train.dim(), split.train.num_classes());
    let base = PipelineConfig {
        budget: 100,
        round_size: 10,
        objective: WeightedObjective::new(0.8, 0.2),
        sgd: SgdConfig {
            lr: 0.1,
            epochs: 25,
            batch_size: 512,
            seed: 9,
            cache_provenance: true,
        },
        constructor: ConstructorKind::Retrain,
        annotation: AnnotationConfig {
            strategy: LabelStrategy::SuggestionOnly,
            error_rate: 0.05,
            seed: 2,
        },
        ..PipelineConfig::default()
    };

    // Naive: Full influence evaluation + retraining from scratch.
    let mut full = InflSelector::full();
    let naive = Pipeline::new(base.clone()).run(
        &model,
        split.train.clone(),
        &split.val,
        &split.test,
        &mut full,
    );

    // Incremental: Increm-Infl pruning + DeltaGrad-L replay.
    let mut incremental_cfg = base;
    incremental_cfg.constructor = ConstructorKind::DeltaGradL(DeltaGradConfig::default());
    let mut increm = InflSelector::incremental();
    let fast = Pipeline::new(incremental_cfg).run(
        &model,
        split.train.clone(),
        &split.val,
        &split.test,
        &mut increm,
    );

    let same_cleaned = {
        let a: std::collections::BTreeSet<usize> = naive
            .rounds
            .iter()
            .flat_map(|r| r.selected.iter().map(|s| s.index))
            .collect();
        let b: std::collections::BTreeSet<usize> = fast
            .rounds
            .iter()
            .flat_map(|r| r.selected.iter().map(|s| s.index))
            .collect();
        a == b
    };

    println!(
        "naive       : select {:>8.1?} | update {:>8.1?} | test F1 {:.4}",
        naive.total_select_time(),
        naive.total_update_time(),
        naive.final_test_f1()
    );
    println!(
        "incremental : select {:>8.1?} | update {:>8.1?} | test F1 {:.4}",
        fast.total_select_time(),
        fast.total_update_time(),
        fast.final_test_f1()
    );
    println!(
        "update speed-up: {:.1}x | select speed-up: {:.1}x | identical first-round selection: {}",
        naive.total_update_time().as_secs_f64() / fast.total_update_time().as_secs_f64().max(1e-9),
        naive.total_select_time().as_secs_f64() / fast.total_select_time().as_secs_f64().max(1e-9),
        same_cleaned
    );
    if let Some(stats) = fast.rounds.last().and_then(|r| r.selector_stats) {
        println!(
            "last-round Increm-Infl pruning: evaluated {}/{} samples exactly",
            stats.candidates, stats.pool
        );
    }
}
