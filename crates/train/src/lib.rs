//! # chef-train
//!
//! Training substrate for the CHEF pipeline.
//!
//! * [`batch`] — deterministic minibatch plans. DeltaGrad must replay
//!   exactly the minibatch sequence `B_t` of the original run; instead of
//!   storing per-iteration index lists we derive them from a seed, so the
//!   replay is bit-identical and provenance stays small.
//! * [`sgd`] — plain SGD over the weighted objective of Eq. 1, with
//!   optional provenance caching (per-iteration parameters and minibatch
//!   gradients — the "initialization step" state of Figure 1) and
//!   per-epoch checkpoints for the paper's early-stopping protocol.
//! * [`deltagrad`] — the DeltaGrad replay engine (paper Algorithm 2 /
//!   Appendix C): incremental model updates after a small set of training
//!   samples is modified or deleted, using exact gradients every `T₀`
//!   iterations and L-BFGS-approximated history gradients in between
//!   (Eqs. 4–5). `chef-core` specializes it into DeltaGrad-L.

pub mod batch;
pub mod deltagrad;
pub mod sgd;
pub mod trace;

pub use batch::BatchPlan;
pub use deltagrad::{deltagrad_update, DeltaGradConfig, DeltaGradOutcome, DeltaGradStats};
pub use sgd::{select_early_stop, train, train_traced, SgdConfig, TrainOutcome, TrainTrace};
pub use trace::TraceStore;
