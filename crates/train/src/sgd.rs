//! SGD over the weighted objective, with provenance caching.
//!
//! The trainer mirrors the paper's model-constructor setup (§5.1): plain
//! minibatch SGD with a constant learning rate for a fixed number of
//! epochs, followed by early stopping *a posteriori* — the paper runs the
//! full epoch budget for fair timing, caches the parameters at every
//! epoch, and afterwards selects the checkpoint with the best validation
//! loss (Appendix F.2). When `cache_provenance` is on, the trainer also
//! records the per-iteration parameters `w_t` and minibatch gradients
//! `∇F(w_t, B_t)` that DeltaGrad replays against.

use crate::batch::BatchPlan;
use crate::trace::TraceStore;
use chef_linalg::vector;
use chef_model::{DatasetStore, Model, WeightedObjective};

/// SGD hyperparameters (paper Table 4 equivalents).
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Constant learning rate.
    pub lr: f64,
    /// Number of epochs (the full budget; early stopping happens after).
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Seed for the minibatch plan.
    pub seed: u64,
    /// Whether to record per-iteration provenance for DeltaGrad.
    pub cache_provenance: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            epochs: 30,
            batch_size: 200,
            seed: 1,
            cache_provenance: false,
        }
    }
}

/// Per-iteration provenance plus per-epoch checkpoints.
///
/// The per-iteration matrices live in flat [`TraceStore`] arenas (one
/// allocation each, rows at `t·m`); the handful of per-epoch checkpoints
/// stay as plain vectors since they are cloned out individually by early
/// stopping and warm starts.
#[derive(Debug, Clone)]
pub struct TrainTrace {
    /// The minibatch plan (replayable; stores no index lists).
    pub plan: BatchPlan,
    /// `w_t` for `t = 0..T` (parameters *entering* iteration `t`),
    /// row `t` of the arena.
    pub params: TraceStore,
    /// `∇F(w_t, B_t)` for `t = 0..T`, row `t` of the arena.
    pub grads: TraceStore,
    /// Parameters at the end of each epoch (for early stopping).
    pub epoch_checkpoints: Vec<Vec<f64>>,
    /// Learning rate used (the replay must match it).
    pub lr: f64,
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Final parameters after the full epoch budget.
    pub w: Vec<f64>,
    /// Provenance (present iff `cache_provenance` was set).
    pub trace: Option<TrainTrace>,
}

/// Train from `w0` with minibatch SGD on the weighted objective.
///
/// Equivalent to [`train_traced`] with a disabled telemetry handle.
pub fn train<M: Model + ?Sized>(
    model: &M,
    objective: &WeightedObjective,
    data: &dyn DatasetStore,
    w0: &[f64],
    cfg: &SgdConfig,
) -> TrainOutcome {
    train_traced(
        model,
        objective,
        data,
        w0,
        cfg,
        &chef_obs::Telemetry::disabled(),
    )
}

/// [`train`] with phase telemetry: the run is wrapped in a `train.sgd`
/// span, every iteration's wall-clock feeds the `train.batch_ms`
/// histogram, and the `train.batches` / `train.epochs` counters
/// accumulate across calls. A disabled handle skips even the per-batch
/// clock reads, so the instrumented loop is identical to the bare one.
pub fn train_traced<M: Model + ?Sized>(
    model: &M,
    objective: &WeightedObjective,
    data: &dyn DatasetStore,
    w0: &[f64],
    cfg: &SgdConfig,
    telemetry: &chef_obs::Telemetry,
) -> TrainOutcome {
    assert_eq!(w0.len(), model.num_params(), "train: w0 dimension");
    assert!(!data.is_empty(), "train: empty dataset");
    let _span = telemetry.span("train.sgd");
    let plan = BatchPlan::new(data.len(), cfg.batch_size, cfg.epochs, cfg.seed);
    let total = plan.total_iterations();
    let per_epoch = plan.batches_per_epoch();

    let mut w = w0.to_vec();
    let mut g = vec![0.0; model.num_params()];
    let mut params = TraceStore::new(model.num_params());
    let mut grads = TraceStore::new(model.num_params());
    let mut checkpoints = Vec::new();
    if cfg.cache_provenance {
        // Reserve the whole arena once: T rows of m parameters each, no
        // growth reallocations (and no per-iteration Vec clones) during
        // the training loop.
        params.reserve_rows(total);
        grads.reserve_rows(total);
    }

    for (t, batch) in plan.iter() {
        {
            let _batch_timer = telemetry.timer("train.batch_ms");
            // Residency hint for out-of-core stores (no-op in memory):
            // the store keeps a bounded window of recently hinted chunks
            // resident, so a full epoch never holds the whole file.
            data.prefetch_rows(&batch);
            objective.batch_grad(model, data, &batch, &w, &mut g);
            if cfg.cache_provenance {
                params.push(&w);
                grads.push(&g);
            }
            vector::axpy(-cfg.lr, &g, &mut w);
        }
        if (t + 1) % per_epoch == 0 {
            checkpoints.push(w.clone());
        }
    }
    telemetry.add("train.batches", total as u64);
    telemetry.add("train.epochs", cfg.epochs as u64);

    let trace = cfg.cache_provenance.then_some(TrainTrace {
        plan,
        params,
        grads,
        epoch_checkpoints: checkpoints,
        lr: cfg.lr,
    });
    TrainOutcome { w, trace }
}

/// The paper's early-stopping rule: among per-epoch checkpoints, pick the
/// parameters with the lowest validation loss.
///
/// Returns `(best_params, best_epoch)`. Falls back to `final_w` when the
/// checkpoint list is empty.
pub fn select_early_stop<M: Model + ?Sized>(
    model: &M,
    objective: &WeightedObjective,
    val: &dyn DatasetStore,
    checkpoints: &[Vec<f64>],
    final_w: &[f64],
) -> (Vec<f64>, usize) {
    if checkpoints.is_empty() {
        return (final_w.to_vec(), 0);
    }
    let mut best = 0;
    let mut best_loss = f64::INFINITY;
    for (e, w) in checkpoints.iter().enumerate() {
        let l = objective.val_loss(model, val, w);
        if l < best_loss {
            best_loss = l;
            best = e;
        }
    }
    (checkpoints[best].clone(), best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_linalg::Matrix;
    use chef_model::{Dataset, LogisticRegression, SoftLabel};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn separable_data(n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..n {
            let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
            let sign = if c == 1 { 1.0 } else { -1.0 };
            raw.push(sign * 1.5 + rng.gen_range(-1.0..1.0));
            raw.push(sign * 1.5 + rng.gen_range(-1.0..1.0));
            labels.push(SoftLabel::onehot(c, 2));
            truth.push(Some(c));
        }
        Dataset::new(Matrix::from_vec(n, 2, raw), labels, vec![true; n], truth, 2)
    }

    #[test]
    fn training_reduces_objective() {
        let data = separable_data(200, 1);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(1.0, 0.01);
        let w0 = model.init_params();
        let before = obj.loss(&model, &data, &w0);
        let out = train(&model, &obj, &data, &w0, &SgdConfig::default());
        let after = obj.loss(&model, &data, &out.w);
        assert!(after < before * 0.7, "loss {before} → {after}");
    }

    #[test]
    fn trained_model_classifies_separable_data() {
        let data = separable_data(300, 2);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(1.0, 0.01);
        let out = train(
            &model,
            &obj,
            &data,
            &model.init_params(),
            &SgdConfig::default(),
        );
        let correct = (0..data.len())
            .filter(|&i| Some(model.predict_class(&out.w, data.feature(i))) == data.ground_truth(i))
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.9);
    }

    #[test]
    fn training_is_deterministic() {
        let data = separable_data(100, 3);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.8, 0.05);
        let cfg = SgdConfig::default();
        let a = train(&model, &obj, &data, &model.init_params(), &cfg);
        let b = train(&model, &obj, &data, &model.init_params(), &cfg);
        assert_eq!(a.w, b.w);
    }

    #[test]
    fn provenance_has_one_entry_per_iteration() {
        let data = separable_data(90, 4);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.8, 0.05);
        let cfg = SgdConfig {
            epochs: 3,
            batch_size: 20,
            cache_provenance: true,
            ..SgdConfig::default()
        };
        let out = train(&model, &obj, &data, &model.init_params(), &cfg);
        let trace = out.trace.unwrap();
        assert_eq!(trace.plan.total_iterations(), 3 * 5);
        assert_eq!(trace.params.len(), 15);
        assert_eq!(trace.grads.len(), 15);
        assert_eq!(trace.epoch_checkpoints.len(), 3);
        // First cached parameters are w0; last checkpoint is the final w.
        assert_eq!(trace.params.row(0), model.init_params().as_slice());
        assert_eq!(trace.params.row_len(), model.num_params());
        assert_eq!(trace.epoch_checkpoints[2], out.w);
    }

    #[test]
    fn cached_grads_replay_consistently() {
        // ∇F(w_t, B_t) recomputed from the plan matches the cache.
        let data = separable_data(60, 5);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.9, 0.02);
        let cfg = SgdConfig {
            epochs: 2,
            batch_size: 16,
            cache_provenance: true,
            ..SgdConfig::default()
        };
        let out = train(&model, &obj, &data, &model.init_params(), &cfg);
        let trace = out.trace.unwrap();
        let mut g = vec![0.0; model.num_params()];
        for (t, batch) in trace.plan.iter() {
            obj.batch_grad(&model, &data, &batch, trace.params.row(t), &mut g);
            assert_eq!(g.as_slice(), trace.grads.row(t), "iteration {t}");
        }
    }

    #[test]
    fn early_stop_picks_lowest_val_loss() {
        let data = separable_data(120, 6);
        let val = separable_data(60, 7);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(1.0, 0.01);
        let cfg = SgdConfig {
            epochs: 10,
            cache_provenance: true,
            ..SgdConfig::default()
        };
        let out = train(&model, &obj, &data, &model.init_params(), &cfg);
        let trace = out.trace.unwrap();
        let (best_w, best_e) =
            select_early_stop(&model, &obj, &val, &trace.epoch_checkpoints, &out.w);
        let best_loss = obj.val_loss(&model, &val, &best_w);
        for w in &trace.epoch_checkpoints {
            assert!(obj.val_loss(&model, &val, w) >= best_loss - 1e-12);
        }
        assert!(best_e < 10);
    }

    #[test]
    fn early_stop_falls_back_to_final() {
        let data = separable_data(30, 8);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(1.0, 0.01);
        let w = vec![0.5; model.num_params()];
        let (chosen, e) = select_early_stop(&model, &obj, &data, &[], &w);
        assert_eq!(chosen, w);
        assert_eq!(e, 0);
    }
}
