//! DeltaGrad: incremental model updates by SGD replay (paper Algorithm 2).
//!
//! Given the provenance of the original training run — the minibatch plan,
//! the per-iteration parameters `w_t` and minibatch gradients
//! `∇F(w_t, B_t)` — DeltaGrad recomputes the trajectory `w_tᴵ` that SGD
//! *would* have produced on a modified dataset, without touching most of
//! the data:
//!
//! * **Explicit iterations** (the first `j₀`, then every `T₀`):
//!   `∇F(w_tᴵ, B_t)` is evaluated exactly on the old dataset and the pair
//!   `(Δw, Δg)` feeds the L-BFGS history.
//! * **Approximated iterations**: `∇F(w_tᴵ, B_t) ≈ B_t(w_tᴵ − w_t) +
//!   ∇F(w_t, B_t)` via the quasi-Hessian product (Eq. 5).
//! * Either way, the gradient on the *edited* batch follows Eq. 4: the
//!   contributions of modified samples are swapped out exactly — they are
//!   few by the small-cleaning-budget assumption, so this is cheap.
//!
//! The engine supports arbitrary per-sample *modifications* (label and/or
//! weight changes, which subsumes the deletion/insertion pair that
//! DeltaGrad-L needs) between an `old` and `new` dataset of equal size.

use crate::sgd::{TrainOutcome, TrainTrace};
use crate::trace::TraceStore;
use chef_linalg::{vector, LbfgsBuffer};
use chef_model::{DatasetStore, Model, WeightedObjective};

/// DeltaGrad hyperparameters (paper Appendix F.2 uses
/// `j₀ = 10, T₀ = 10, m₀ = 2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaGradConfig {
    /// Number of initial iterations with exact gradients.
    pub j0: usize,
    /// Period of exact gradient evaluations afterwards.
    pub t0: usize,
    /// L-BFGS history length.
    pub m0: usize,
}

impl Default for DeltaGradConfig {
    fn default() -> Self {
        Self {
            j0: 10,
            t0: 10,
            m0: 2,
        }
    }
}

impl DeltaGradConfig {
    /// Whether iteration `t` uses an exact gradient evaluation
    /// (Algorithm 2, line 3).
    #[inline]
    pub fn is_explicit(&self, t: usize) -> bool {
        t <= self.j0 || (t - self.j0).is_multiple_of(self.t0.max(1))
    }
}

/// Counters describing how much work the replay actually did.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaGradStats {
    /// Iterations with a full-batch exact gradient.
    pub explicit_iters: usize,
    /// Iterations served by the L-BFGS approximation.
    pub approx_iters: usize,
    /// Total per-sample gradient evaluations spent on corrections.
    pub correction_grads: usize,
}

/// Result of a DeltaGrad replay.
#[derive(Debug, Clone)]
pub struct DeltaGradOutcome {
    /// Updated final parameters `w_Tᴵ`.
    pub w: Vec<f64>,
    /// Fresh provenance on the *new* dataset (cache for the next round of
    /// loop 2, as §4.2 prescribes).
    pub trace: TrainTrace,
    /// Work counters.
    pub stats: DeltaGradStats,
}

impl From<DeltaGradOutcome> for TrainOutcome {
    fn from(o: DeltaGradOutcome) -> Self {
        TrainOutcome {
            w: o.w,
            trace: Some(o.trace),
        }
    }
}

/// Replay SGD on `new_data`, which differs from `old_data` only at the
/// `changed` indices (labels and/or clean flags), starting from the same
/// initialization the original run used.
///
/// # Panics
/// Panics if the datasets differ in size, the trace is empty, or a changed
/// index is out of range.
pub fn deltagrad_update<M: Model + ?Sized>(
    model: &M,
    objective: &WeightedObjective,
    old_data: &dyn DatasetStore,
    new_data: &dyn DatasetStore,
    changed: &[usize],
    trace: &TrainTrace,
    cfg: &DeltaGradConfig,
) -> DeltaGradOutcome {
    assert_eq!(old_data.len(), new_data.len(), "deltagrad: dataset sizes");
    assert!(!trace.params.is_empty(), "deltagrad: empty trace");
    assert_eq!(
        trace.params.len(),
        trace.plan.total_iterations(),
        "deltagrad: trace/plan mismatch"
    );
    let m = model.num_params();
    let mut is_changed = vec![false; old_data.len()];
    for &i in changed {
        assert!(i < old_data.len(), "deltagrad: changed index {i}");
        is_changed[i] = true;
    }

    let per_epoch = trace.plan.batches_per_epoch();
    let mut w = trace.params.row(0).to_vec();
    let mut lbfgs = LbfgsBuffer::new(cfg.m0.max(1), m);
    let mut stats = DeltaGradStats::default();

    let mut new_params = TraceStore::with_capacity(m, trace.params.len());
    let mut new_grads = TraceStore::with_capacity(m, trace.grads.len());
    let mut checkpoints = Vec::new();

    let mut g_base = vec![0.0; m];
    let mut g_sample = vec![0.0; m];

    for (t, batch) in trace.plan.iter() {
        if cfg.is_explicit(t) {
            // Exact gradient on the OLD dataset at the new parameters.
            old_data.prefetch_rows(&batch);
            objective.batch_grad(model, old_data, &batch, &w, &mut g_base);
            let s = vector::sub(&w, trace.params.row(t));
            let y = vector::sub(&g_base, trace.grads.row(t));
            lbfgs.push(&s, &y);
            stats.explicit_iters += 1;
        } else {
            // Eq. 5: ∇F(wᴵ, B_t) ≈ B(wᴵ − w_t) + ∇F(w_t, B_t).
            let s = vector::sub(&w, trace.params.row(t));
            let bv = lbfgs.hessian_vec(&s);
            g_base.copy_from_slice(trace.grads.row(t));
            vector::axpy(1.0, &bv, &mut g_base);
            stats.approx_iters += 1;
        }

        // Eq. 4 correction: swap the contributions of modified samples.
        // Old and new batch gradients share the L2 term, so only the data
        // terms differ.
        let inv_b = 1.0 / batch.len() as f64;
        for &i in &batch {
            if !is_changed[i] {
                continue;
            }
            let w_old = old_data.weight(i, objective.gamma);
            let w_new = new_data.weight(i, objective.gamma);
            model.grad(&w, old_data.feature(i), old_data.label(i), &mut g_sample);
            vector::axpy(-w_old * inv_b, &g_sample, &mut g_base);
            model.grad(&w, new_data.feature(i), new_data.label(i), &mut g_sample);
            vector::axpy(w_new * inv_b, &g_sample, &mut g_base);
            stats.correction_grads += 2;
        }

        new_params.push(&w);
        new_grads.push(&g_base);
        vector::axpy(-trace.lr, &g_base, &mut w);
        if (t + 1) % per_epoch == 0 {
            checkpoints.push(w.clone());
        }
    }

    DeltaGradOutcome {
        w,
        trace: TrainTrace {
            plan: trace.plan.clone(),
            params: new_params,
            grads: new_grads,
            epoch_checkpoints: checkpoints,
            lr: trace.lr,
        },
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::{train, SgdConfig};
    use chef_linalg::Matrix;
    use chef_model::{Dataset, LogisticRegression, SoftLabel};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn weak_data(n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..n {
            let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
            let sign = if c == 1 { 1.0 } else { -1.0 };
            raw.push(sign + rng.gen_range(-1.0..1.0));
            raw.push(sign + rng.gen_range(-1.0..1.0));
            let p = rng.gen_range(0.2..0.8);
            labels.push(SoftLabel::new(vec![p, 1.0 - p]));
            truth.push(Some(c));
        }
        Dataset::new(
            Matrix::from_vec(n, 2, raw),
            labels,
            vec![false; n],
            truth,
            2,
        )
    }

    fn clean_some(data: &Dataset, k: usize) -> (Dataset, Vec<usize>) {
        let mut new_data = data.clone();
        // Samples without a reference label abstain (are skipped) rather
        // than panicking — mirrors the production annotation policy.
        let mut changed = Vec::new();
        for i in 0..k {
            let Some(truth) = data.ground_truth(i) else {
                continue;
            };
            new_data.clean_label(i, SoftLabel::onehot(truth, 2));
            changed.push(i);
        }
        (new_data, changed)
    }

    fn setup(n: usize) -> (LogisticRegression, WeightedObjective, Dataset, SgdConfig) {
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.8, 0.05);
        let data = weak_data(n, 11);
        let cfg = SgdConfig {
            lr: 0.1,
            epochs: 8,
            batch_size: 25,
            seed: 3,
            cache_provenance: true,
        };
        (model, obj, data, cfg)
    }

    #[test]
    fn all_explicit_replay_equals_retraining() {
        // With T₀ = 1 every iteration is exact, so DeltaGrad must match a
        // from-scratch retrain on the new data bit-for-bit (same plan).
        let (model, obj, data, cfg) = setup(100);
        let base = train(&model, &obj, &data, &model.init_params(), &cfg);
        let (new_data, changed) = clean_some(&data, 5);
        let dg_cfg = DeltaGradConfig {
            j0: 0,
            t0: 1,
            m0: 2,
        };
        let dg = deltagrad_update(
            &model,
            &obj,
            &data,
            &new_data,
            &changed,
            base.trace.as_ref().unwrap(),
            &dg_cfg,
        );
        let retrain = train(&model, &obj, &new_data, &model.init_params(), &cfg);
        for (a, b) in dg.w.iter().zip(&retrain.w) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        assert_eq!(dg.stats.approx_iters, 0);
    }

    #[test]
    fn approximate_replay_is_close_to_retraining() {
        let (model, obj, data, cfg) = setup(200);
        let base = train(&model, &obj, &data, &model.init_params(), &cfg);
        let (new_data, changed) = clean_some(&data, 6);
        let dg = deltagrad_update(
            &model,
            &obj,
            &data,
            &new_data,
            &changed,
            base.trace.as_ref().unwrap(),
            &DeltaGradConfig::default(),
        );
        let retrain = train(&model, &obj, &new_data, &model.init_params(), &cfg);
        let dist = vector::distance(&dg.w, &retrain.w);
        let scale = vector::norm2(&retrain.w).max(1.0);
        assert!(dist / scale < 0.05, "relative distance {}", dist / scale);
        assert!(dg.stats.approx_iters > 0);
    }

    #[test]
    fn no_changes_replays_original_trajectory() {
        let (model, obj, data, cfg) = setup(80);
        let base = train(&model, &obj, &data, &model.init_params(), &cfg);
        let dg = deltagrad_update(
            &model,
            &obj,
            &data,
            &data,
            &[],
            base.trace.as_ref().unwrap(),
            &DeltaGradConfig::default(),
        );
        for (a, b) in dg.w.iter().zip(&base.w) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn new_trace_supports_a_second_round() {
        // Chain two DeltaGrad rounds and compare against retraining after
        // both cleanings.
        let (model, obj, data, cfg) = setup(150);
        let base = train(&model, &obj, &data, &model.init_params(), &cfg);
        let (data1, changed1) = clean_some(&data, 4);
        let dg1 = deltagrad_update(
            &model,
            &obj,
            &data,
            &data1,
            &changed1,
            base.trace.as_ref().unwrap(),
            &DeltaGradConfig::default(),
        );
        let mut data2 = data1.clone();
        let mut changed2 = Vec::new();
        for i in 4..8 {
            let Some(truth) = data.ground_truth(i) else {
                continue;
            };
            data2.clean_label(i, SoftLabel::onehot(truth, 2));
            changed2.push(i);
        }
        let dg2 = deltagrad_update(
            &model,
            &obj,
            &data1,
            &data2,
            &changed2,
            &dg1.trace,
            &DeltaGradConfig::default(),
        );
        let retrain = train(&model, &obj, &data2, &model.init_params(), &cfg);
        let dist = vector::distance(&dg2.w, &retrain.w);
        let scale = vector::norm2(&retrain.w).max(1.0);
        assert!(dist / scale < 0.08, "relative distance {}", dist / scale);
    }

    #[test]
    fn explicit_schedule_matches_paper_rule() {
        let cfg = DeltaGradConfig {
            j0: 3,
            t0: 4,
            m0: 2,
        };
        let explicit: Vec<usize> = (0..16).filter(|&t| cfg.is_explicit(t)).collect();
        // t ≤ j₀ → 0,1,2,3; then (t−3) % 4 == 0 → 7, 11, 15.
        assert_eq!(explicit, vec![0, 1, 2, 3, 7, 11, 15]);
    }

    #[test]
    fn stats_count_corrections() {
        let (model, obj, data, cfg) = setup(60);
        let base = train(&model, &obj, &data, &model.init_params(), &cfg);
        let (new_data, changed) = clean_some(&data, 3);
        let dg = deltagrad_update(
            &model,
            &obj,
            &data,
            &new_data,
            &changed,
            base.trace.as_ref().unwrap(),
            &DeltaGradConfig::default(),
        );
        // Each changed sample appears once per epoch; 2 gradient calls per
        // appearance.
        assert_eq!(dg.stats.correction_grads, 2 * 3 * cfg.epochs);
        assert_eq!(
            dg.stats.explicit_iters + dg.stats.approx_iters,
            base.trace.as_ref().unwrap().plan.total_iterations()
        );
    }
}
