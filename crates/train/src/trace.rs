//! Flat row-major provenance arena.
//!
//! DeltaGrad's provenance is two `T × m` matrices — the per-iteration
//! parameters `w_t` and minibatch gradients `∇F(w_t, B_t)` — that the
//! replay reads back row by row. Storing them as `Vec<Vec<f64>>` costs
//! one heap allocation per iteration (2·T allocations per training run),
//! scatters rows across the heap so the replay's sequential reads miss
//! cache, and doubles the bookkeeping (`T` lengths + capacities that are
//! all equal anyway). [`TraceStore`] packs the rows into **one**
//! contiguous allocation: `row(t)` is a slice at offset `t·m`,
//! [`TraceStore::reserve_rows`] sizes the arena once up front, and the
//! checkpoint serializer streams the whole arena with a single
//! `push_f64s` — byte-identical to the old per-row loop, because
//! `checkpoint.v1` always stored the rows concatenated.

/// A dense `rows × m` matrix of provenance rows in one allocation.
///
/// Rows are append-only and all share the fixed width `m` fixed at
/// construction (the model's `num_params()`); a debug assertion on every
/// [`TraceStore::push`] catches width mismatches at the insertion site.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStore {
    data: Vec<f64>,
    m: usize,
}

impl TraceStore {
    /// Empty store for rows of width `m`.
    ///
    /// # Panics
    /// Panics if `m == 0` (a row must hold at least one parameter).
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "TraceStore: row width must be ≥ 1");
        Self {
            data: Vec::new(),
            m,
        }
    }

    /// Empty store with capacity for `rows` rows pre-reserved.
    pub fn with_capacity(m: usize, rows: usize) -> Self {
        let mut s = Self::new(m);
        s.reserve_rows(rows);
        s
    }

    /// Adopt an already-flat row-major buffer (deserialization path).
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `m` (or `m == 0`).
    pub fn from_flat(m: usize, data: Vec<f64>) -> Self {
        assert!(m >= 1, "TraceStore: row width must be ≥ 1");
        assert_eq!(
            data.len() % m,
            0,
            "TraceStore: flat length {} not a multiple of row width {m}",
            data.len()
        );
        Self { data, m }
    }

    /// Grow the arena so `additional` more rows fit without reallocating.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.m);
    }

    /// Append one row (copied).
    ///
    /// Debug builds assert the row width matches the store — this is the
    /// guard that every pushed row is exactly `model.num_params()` long.
    #[inline]
    pub fn push(&mut self, row: &[f64]) {
        debug_assert_eq!(
            row.len(),
            self.m,
            "TraceStore: pushed row width {} != store width {}",
            row.len(),
            self.m
        );
        self.data.extend_from_slice(row);
    }

    /// Row `t` as a slice.
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    #[inline]
    pub fn row(&self, t: usize) -> &[f64] {
        &self.data[t * self.m..(t + 1) * self.m]
    }

    /// Number of rows stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.m
    }

    /// Whether no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Fixed row width `m`.
    #[inline]
    pub fn row_len(&self) -> usize {
        self.m
    }

    /// The whole arena, rows concatenated in order — exactly the byte
    /// layout `checkpoint.v1` stores, so serialization is one call.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Heap bytes held by the arena's payload (`len·m·8`, excluding any
    /// reserved-but-unused capacity). Reported by the `train_kernels`
    /// bench.
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Iterate over the rows in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_row_round_trip() {
        let mut s = TraceStore::new(3);
        assert!(s.is_empty());
        s.push(&[1.0, 2.0, 3.0]);
        s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(s.payload_bytes(), 6 * 8);
    }

    #[test]
    fn from_flat_matches_pushes() {
        let mut pushed = TraceStore::new(2);
        pushed.push(&[1.0, 2.0]);
        pushed.push(&[3.0, 4.0]);
        let flat = TraceStore::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(pushed, flat);
        assert_eq!(flat.row_len(), 2);
    }

    #[test]
    fn rows_iterates_in_order() {
        let s = TraceStore::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<&[f64]> = s.rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(s.rows().len(), 2);
    }

    #[test]
    fn reserve_prevents_growth_reallocations() {
        let mut s = TraceStore::with_capacity(4, 10);
        let cap = s.data.capacity();
        for t in 0..10 {
            s.push(&[t as f64; 4]);
        }
        assert_eq!(s.data.capacity(), cap, "reserve-once must hold");
        assert_eq!(s.len(), 10);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged_input() {
        let _ = TraceStore::from_flat(3, vec![1.0, 2.0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "pushed row width")]
    fn push_rejects_wrong_width_in_debug() {
        let mut s = TraceStore::new(3);
        s.push(&[1.0, 2.0]);
    }
}
