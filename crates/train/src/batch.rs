//! Deterministic minibatch plans.
//!
//! Every SGD epoch shuffles the training indices with a RNG seeded by
//! `(plan seed, epoch)` and walks the permutation in `batch_size` chunks.
//! Because the schedule is a pure function of the seed, DeltaGrad can
//! replay the *exact* batches `B_t` of the original run without the
//! provenance cache having to store any index lists, and `B_t ∩ R` is
//! recomputable at replay time (paper §3.4).

use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};

/// A reproducible epoch × minibatch schedule over `n` samples.
///
/// ```
/// use chef_train::BatchPlan;
///
/// let plan = BatchPlan::new(100, 32, 3, 42);
/// assert_eq!(plan.total_iterations(), 3 * 4);
/// // Replayable: the same (seed, iteration) always yields the same batch.
/// assert_eq!(plan.batch_at(7), BatchPlan::new(100, 32, 3, 42).batch_at(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    n: usize,
    batch_size: usize,
    epochs: usize,
    seed: u64,
}

impl BatchPlan {
    /// Create a plan.
    ///
    /// # Panics
    /// Panics if `n == 0` or `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, epochs: usize, seed: u64) -> Self {
        assert!(n > 0, "BatchPlan: empty dataset");
        assert!(batch_size > 0, "BatchPlan: zero batch size");
        Self {
            n,
            batch_size,
            epochs,
            seed,
        }
    }

    /// Number of training samples.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Minibatch size (the final batch of an epoch may be smaller).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of epochs.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// The shuffle seed: with `(n, batch_size, epochs)` it reconstructs
    /// the plan exactly, so checkpoints persist these four scalars
    /// instead of the materialized batch schedule.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Minibatches per epoch (`⌈n / batch_size⌉`).
    pub fn batches_per_epoch(&self) -> usize {
        self.n.div_ceil(self.batch_size)
    }

    /// Total number of SGD iterations `T`.
    pub fn total_iterations(&self) -> usize {
        self.epochs * self.batches_per_epoch()
    }

    /// The shuffled index order for an epoch.
    pub fn epoch_order(&self, epoch: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n).collect();
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0x9e37_79b9_7f4a));
        order.shuffle(&mut rng);
        order
    }

    /// The minibatches of one epoch, in iteration order.
    pub fn epoch_batches(&self, epoch: usize) -> Vec<Vec<usize>> {
        let order = self.epoch_order(epoch);
        order.chunks(self.batch_size).map(|c| c.to_vec()).collect()
    }

    /// The minibatch of global iteration `t` (`0 ≤ t < total_iterations`).
    pub fn batch_at(&self, t: usize) -> Vec<usize> {
        assert!(
            t < self.total_iterations(),
            "BatchPlan: iteration out of range"
        );
        let per = self.batches_per_epoch();
        let epoch = t / per;
        let slot = t % per;
        let order = self.epoch_order(epoch);
        order
            .chunks(self.batch_size)
            .nth(slot)
            .expect("slot within epoch")
            .to_vec()
    }

    /// Iterate `(t, batch)` over the whole plan without recomputing the
    /// epoch permutation per batch.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Vec<usize>)> + '_ {
        (0..self.epochs).flat_map(move |e| {
            let per = self.batches_per_epoch();
            self.epoch_batches(e)
                .into_iter()
                .enumerate()
                .map(move |(s, b)| (e * per + s, b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn covers_every_sample_once_per_epoch() {
        let plan = BatchPlan::new(103, 10, 3, 42);
        for e in 0..3 {
            let mut seen = HashSet::new();
            for b in plan.epoch_batches(e) {
                for i in b {
                    assert!(seen.insert(i), "duplicate index {i} in epoch {e}");
                }
            }
            assert_eq!(seen.len(), 103);
        }
    }

    #[test]
    fn batch_sizes_are_full_except_last() {
        let plan = BatchPlan::new(25, 10, 1, 1);
        let batches = plan.epoch_batches(0);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 10);
        assert_eq!(batches[1].len(), 10);
        assert_eq!(batches[2].len(), 5);
    }

    #[test]
    fn replay_is_deterministic() {
        let a = BatchPlan::new(50, 8, 4, 9);
        let b = BatchPlan::new(50, 8, 4, 9);
        for t in 0..a.total_iterations() {
            assert_eq!(a.batch_at(t), b.batch_at(t));
        }
    }

    #[test]
    fn different_epochs_shuffle_differently() {
        let plan = BatchPlan::new(64, 64, 2, 5);
        assert_ne!(plan.epoch_order(0), plan.epoch_order(1));
    }

    #[test]
    fn different_seeds_shuffle_differently() {
        let a = BatchPlan::new(64, 64, 1, 5);
        let b = BatchPlan::new(64, 64, 1, 6);
        assert_ne!(a.epoch_order(0), b.epoch_order(0));
    }

    #[test]
    fn iter_matches_batch_at() {
        let plan = BatchPlan::new(33, 7, 2, 13);
        for (t, batch) in plan.iter() {
            assert_eq!(batch, plan.batch_at(t), "iteration {t}");
        }
        assert_eq!(plan.iter().count(), plan.total_iterations());
    }

    #[test]
    fn iteration_counts() {
        let plan = BatchPlan::new(100, 32, 5, 0);
        assert_eq!(plan.batches_per_epoch(), 4);
        assert_eq!(plan.total_iterations(), 20);
    }
}
