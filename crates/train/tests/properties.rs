//! Property-based tests for the training substrate.

use chef_linalg::{vector, Matrix};
use chef_model::{Dataset, LogisticRegression, Model, SoftLabel, WeightedObjective};
use chef_train::{deltagrad_update, train, BatchPlan, DeltaGradConfig, SgdConfig};
use proptest::prelude::*;
use std::collections::HashSet;

fn dataset(xs: &[(f64, f64)], probs: &[f64]) -> Dataset {
    let n = xs.len();
    let mut raw = Vec::with_capacity(2 * n);
    for (a, b) in xs {
        raw.push(*a);
        raw.push(*b);
    }
    Dataset::new(
        Matrix::from_vec(n, 2, raw),
        probs[..n]
            .iter()
            .map(|&p| SoftLabel::new(vec![p, 1.0 - p]))
            .collect(),
        vec![false; n],
        vec![None; n],
        2,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batch_plan_partitions_every_epoch(
        n in 1usize..200,
        batch in 1usize..64,
        epochs in 1usize..4,
        seed in any::<u64>(),
    ) {
        let plan = BatchPlan::new(n, batch, epochs, seed);
        prop_assert_eq!(plan.total_iterations(), epochs * n.div_ceil(batch));
        for e in 0..epochs {
            let mut seen = HashSet::new();
            for b in plan.epoch_batches(e) {
                prop_assert!(b.len() <= batch);
                for i in b {
                    prop_assert!(i < n);
                    prop_assert!(seen.insert(i), "duplicate in epoch {e}");
                }
            }
            prop_assert_eq!(seen.len(), n);
        }
    }

    #[test]
    fn batch_plan_is_reproducible(
        n in 2usize..100,
        batch in 1usize..32,
        seed in any::<u64>(),
        t_frac in 0.0f64..1.0,
    ) {
        let plan = BatchPlan::new(n, batch, 3, seed);
        let t = ((plan.total_iterations() - 1) as f64 * t_frac) as usize;
        prop_assert_eq!(plan.batch_at(t), BatchPlan::new(n, batch, 3, seed).batch_at(t));
    }

    #[test]
    fn sgd_is_a_contraction_on_the_objective(
        xs in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 16..40),
        probs in prop::collection::vec(0.1f64..0.9, 40),
        lr in 0.01f64..0.15,
    ) {
        let data = dataset(&xs, &probs);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.8, 0.1);
        let w0 = model.initial_params(0);
        let cfg = SgdConfig {
            lr,
            epochs: 10,
            batch_size: data.len(), // full batch → guaranteed descent at small lr
            seed: 1,
            cache_provenance: false,
        };
        let out = train(&model, &obj, &data, &w0, &cfg);
        prop_assert!(obj.loss(&model, &data, &out.w) <= obj.loss(&model, &data, &w0) + 1e-9);
        prop_assert!(out.w.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn exact_deltagrad_replay_equals_retrain_for_any_edit(
        xs in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 20..40),
        probs in prop::collection::vec(0.1f64..0.9, 40),
        edit in prop::collection::vec(any::<bool>(), 40),
        new_class in 0usize..2,
    ) {
        let data = dataset(&xs, &probs);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.8, 0.1);
        let cfg = SgdConfig {
            lr: 0.1,
            epochs: 4,
            batch_size: 8,
            seed: 3,
            cache_provenance: true,
        };
        let base = train(&model, &obj, &data, &model.initial_params(0), &cfg);
        let mut new_data = data.clone();
        let mut changed = Vec::new();
        for (i, &flip) in edit.iter().enumerate().take(data.len()) {
            if flip && changed.len() < 5 {
                new_data.clean_label(i, SoftLabel::onehot(new_class, 2));
                changed.push(i);
            }
        }
        let dg = deltagrad_update(
            &model,
            &obj,
            &data,
            &new_data,
            &changed,
            base.trace.as_ref().unwrap(),
            &DeltaGradConfig { j0: 0, t0: 1, m0: 2 },
        );
        let retrain = train(&model, &obj, &new_data, &model.initial_params(0), &cfg);
        for (a, b) in dg.w.iter().zip(&retrain.w) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn approximate_deltagrad_stays_bounded(
        xs in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 30..50),
        probs in prop::collection::vec(0.1f64..0.9, 50),
        t0 in 2usize..8,
    ) {
        let data = dataset(&xs, &probs);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.8, 0.1);
        let cfg = SgdConfig {
            lr: 0.1,
            epochs: 6,
            batch_size: 10,
            seed: 5,
            cache_provenance: true,
        };
        let base = train(&model, &obj, &data, &model.initial_params(0), &cfg);
        let mut new_data = data.clone();
        new_data.clean_label(0, SoftLabel::onehot(1, 2));
        let dg = deltagrad_update(
            &model,
            &obj,
            &data,
            &new_data,
            &[0],
            base.trace.as_ref().unwrap(),
            &DeltaGradConfig { j0: 2, t0, m0: 2 },
        );
        let retrain = train(&model, &obj, &new_data, &model.initial_params(0), &cfg);
        let rel = vector::distance(&dg.w, &retrain.w) / vector::norm2(&retrain.w).max(1.0);
        prop_assert!(rel < 0.2, "relative drift {rel} at t0 = {t0}");
        prop_assert!(dg.w.iter().all(|v| v.is_finite()));
    }
}
