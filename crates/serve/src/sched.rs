//! The pooled cooperative job scheduler (DESIGN.md §17).
//!
//! PR 9's manager spent one OS thread per tenant job; this module
//! multiplexes every job onto a fixed pool of M worker threads. The key
//! enabler is [`chef_core::SuspendedLoop`]: a job is a resumable state
//! machine that *suspends* at its annotation boundary instead of
//! blocking a thread, so the moving parts reduce to
//!
//! * a FIFO **run queue** of job ids — round-robin fairness falls out of
//!   every slice re-entering at the tail, so one huge tenant advances at
//!   most one round per turn while small tenants interleave;
//! * a **parked set** of jobs whose batch is out for annotation — a
//!   parked job occupies no thread; the annotator-service thread
//!   re-enqueues it when its deliveries land (`Sched::deliver_all`);
//! * a **bounded admission** check — `Sched::try_submit` refuses new
//!   tenants beyond `queue_bound` live jobs with the recoverable `busy`
//!   error, so an overloaded daemon degrades by refusing work, not by
//!   accumulating unbounded state;
//! * per-job **time slicing** at round boundaries — one slice runs at
//!   most one round of compute (select → update → evaluate) before the
//!   job parks or yields, which is the granularity the fairness test
//!   audits through the per-job `sched.slices` ledger.
//!
//! Lifecycle events and terminal `serve.*` counters are emitted by the
//! scheduler's finalization path (never by a worker racing one), so a
//! job cancelled while *queued* — a state the thread-per-job design
//! could not express — still produces a complete `serve-events.v1`
//! sequence.
//!
//! Everything here is condvar-driven: no sleeps, no polling (the ci.sh
//! no-sleep guard covers this file).

use crate::annotator::{AnnotationRequest, AnnotatorHost, HostDelivery, JobId, SampleReply};
use crate::events::EventKind;
use crate::job::{JobInner, JobRequest, JobResult, JobShared, JobState, ServeError};
use chef_core::{
    AnnotationConfig, AnnotationOutcome, AnnotationStats, Pipeline, RoundStep, SampleDecision,
    SampleSelector, SuspendedLoop, Telemetry,
};
use chef_model::{Dataset, Model};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Pool sizing and admission control for a [`crate::JobManager`].
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Worker threads in the pool (at least 1).
    pub workers: usize,
    /// Maximum *live* (admitted, non-terminal) jobs; a submit beyond
    /// this answers the recoverable `busy` error.
    pub queue_bound: usize,
}

impl Default for SchedConfig {
    /// Pool of 4 workers, bound of 1024 live jobs; both overridable via
    /// the `CHEF_SERVE_WORKERS` / `CHEF_SERVE_QUEUE_BOUND` environment
    /// variables (how ci.sh runs the serve suites at pool sizes 1 and 4
    /// without touching test code).
    fn default() -> Self {
        let env_usize = |key: &str, default: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&v| v >= 1)
                .unwrap_or(default)
        };
        Self {
            workers: env_usize("CHEF_SERVE_WORKERS", 4),
            queue_bound: env_usize("CHEF_SERVE_QUEUE_BOUND", 1024),
        }
    }
}

/// A point-in-time snapshot of the scheduler, for tests and the
/// `serve_scale` bench (the same numbers the `sched.*` gauges export).
#[derive(Debug, Clone)]
pub struct SchedStats {
    /// Jobs in the run queue right now.
    pub queue_depth: usize,
    /// Workers currently running a slice.
    pub workers_busy: usize,
    /// Jobs parked at the annotation boundary.
    pub jobs_parked: usize,
    /// Admitted, non-terminal jobs.
    pub live_jobs: usize,
    /// Per-job slice counts (the fairness ledger), in submission order.
    pub slices: Vec<(JobId, u64)>,
    /// Ids of completed jobs, in completion order.
    pub completion_order: Vec<JobId>,
}

/// Control flags a verb can raise on a job from outside its slice; the
/// slice honors them at its next boundary (the same deferred semantics
/// the thread-per-job inbox had).
struct JobCtl {
    pause: AtomicBool,
    cancel: AtomicBool,
}

/// How far a running slice got before handing its thread back.
enum SliceOutcome {
    /// Batch out for annotation (or still incomplete): park until
    /// deliveries land.
    Parked,
    /// Paused at a round boundary; wait for the resume verb.
    Paused,
    /// Cancel honored. `round` is the outstanding batch's round when the
    /// cancel landed mid-collect, `None` at a boundary.
    Cancelled { round: Option<usize> },
    /// Loop finished; the report is ready.
    Finished {
        result: Box<JobResult>,
        rounds: usize,
        spent: usize,
        cleaned_total: usize,
        interrupted: bool,
    },
    /// The job died (resume error, injected kill).
    Failed {
        msg: String,
        round: Option<usize>,
        killed: bool,
    },
}

/// The collect phase of one round, suspended across slices: slots fill
/// from the job's inbox as deliveries arrive, in arrival order.
struct CollectState {
    batch: chef_core::AnnotationBatch,
    /// training-store index → slot position.
    pos: HashMap<usize, usize>,
    slots: Vec<Option<SampleReply>>,
    filled: usize,
    /// Whether the round's deadline marker landed (missing slots
    /// abstain).
    expired: bool,
    annotate_start: Instant,
}

/// One job as an owned, movable state machine: everything a worker
/// needs to run a slice, including the suspended [`chef_core::RoundLoop`]
/// between slices. Lives inside the scheduler entry while the job is
/// queued/parked/paused and travels to a worker thread while running.
struct JobTask {
    id: JobId,
    name: String,
    pipeline: Pipeline,
    model: Box<dyn Model + Send>,
    /// `Some` until the loop finishes (the report consumes it).
    train: Option<Dataset>,
    val: Dataset,
    test: Dataset,
    selector: Box<dyn SampleSelector + Send>,
    deadline_ms: u64,
    resume_from: Option<PathBuf>,
    annotation: AnnotationConfig,
    job_tel: Telemetry,
    #[cfg(feature = "fault-inject")]
    faults: chef_core::FaultPlan,
    /// First slice emits `job_start` and builds/resumes the loop.
    started: bool,
    suspended: Option<SuspendedLoop>,
    /// Deliveries moved in from the scheduler mailbox at dispatch.
    inbox: VecDeque<HostDelivery>,
    collect: Option<CollectState>,
}

/// Scheduler-internal lifecycle of one entry (orthogonal to the
/// user-visible [`JobState`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// In the run queue (or about to be).
    Queued,
    /// A worker is running a slice.
    Running,
    /// Waiting for annotator deliveries; no thread held.
    Parked,
    /// Paused at a round boundary; waiting for the resume verb.
    Paused,
    /// Done; `task` is gone.
    Terminal,
}

struct Entry {
    shared: Arc<JobShared>,
    /// `Some` whenever no worker holds the task.
    task: Option<JobTask>,
    run_state: RunState,
    ctl: Arc<JobCtl>,
    /// Deliveries accumulated while the job was not holding a worker.
    mailbox: VecDeque<HostDelivery>,
    slices: u64,
}

struct SchedState {
    run_queue: VecDeque<JobId>,
    entries: HashMap<u64, Entry>,
    /// Submission order, for stable iteration in snapshots.
    order: Vec<JobId>,
    completion_order: Vec<JobId>,
    live: usize,
    workers_busy: usize,
    parked: usize,
    shutdown: bool,
    next_id: u64,
}

/// The scheduler core shared by the manager facade, the worker pool and
/// the annotator-service thread. Lock order: `state` before any
/// `JobShared::inner`, never the reverse; no blocking call runs under
/// the `state` lock.
pub(crate) struct Sched {
    state: Mutex<SchedState>,
    /// Wakes workers when the run queue grows or shutdown begins.
    work: Condvar,
    cfg: SchedConfig,
    telemetry: Telemetry,
}

impl Sched {
    pub(crate) fn new(cfg: SchedConfig, telemetry: Telemetry) -> Self {
        Self {
            state: Mutex::new(SchedState {
                run_queue: VecDeque::new(),
                entries: HashMap::new(),
                order: Vec::new(),
                completion_order: Vec::new(),
                live: 0,
                workers_busy: 0,
                parked: 0,
                shutdown: false,
                next_id: 1,
            }),
            work: Condvar::new(),
            cfg,
            telemetry,
        }
    }

    pub(crate) fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    fn gauges(&self, st: &SchedState) {
        self.telemetry
            .set_gauge("sched.queue.depth", st.run_queue.len() as f64);
        self.telemetry
            .set_gauge("sched.workers.busy", st.workers_busy as f64);
        self.telemetry
            .set_gauge("sched.jobs.parked", st.parked as f64);
    }

    /// Admit a job or refuse it with [`ServeError::Busy`] when
    /// `queue_bound` live jobs are already admitted.
    pub(crate) fn try_submit(&self, req: JobRequest) -> Result<JobId, ServeError> {
        let mut st = self.state.lock().unwrap();
        if st.live >= self.cfg.queue_bound {
            self.telemetry.add("sched.admission_rejects", 1);
            return Err(ServeError::Busy);
        }
        let id = JobId(st.next_id);
        st.next_id += 1;
        let shared = Arc::new(JobShared {
            name: req.name.clone(),
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                round: 0,
                spent: 0,
                cleaned: 0,
                error: None,
                result: None,
            }),
            done: Condvar::new(),
            events: Mutex::new(Vec::new()),
        });
        let task = JobTask::new(id, req);
        st.entries.insert(
            id.0,
            Entry {
                shared,
                task: Some(task),
                run_state: RunState::Queued,
                ctl: Arc::new(JobCtl {
                    pause: AtomicBool::new(false),
                    cancel: AtomicBool::new(false),
                }),
                mailbox: VecDeque::new(),
                slices: 0,
            },
        );
        st.order.push(id);
        st.live += 1;
        st.run_queue.push_back(id);
        self.telemetry.add("serve.jobs_submitted", 1);
        self.gauges(&st);
        self.work.notify_one();
        Ok(id)
    }

    pub(crate) fn shared(&self, id: JobId) -> Option<Arc<JobShared>> {
        self.state
            .lock()
            .unwrap()
            .entries
            .get(&id.0)
            .map(|e| Arc::clone(&e.shared))
    }

    /// Raise the pause flag; the job honors it at its next round
    /// boundary (a terminal job ignores it — same no-op the dead inbox
    /// gave the old design).
    pub(crate) fn pause(&self, id: JobId) -> Result<(), ServeError> {
        let st = self.state.lock().unwrap();
        let entry = st.entries.get(&id.0).ok_or(ServeError::UnknownJob(id.0))?;
        if entry.run_state != RunState::Terminal {
            entry.ctl.pause.store(true, Ordering::SeqCst);
        }
        Ok(())
    }

    /// Wake a paused job (re-enqueue), or clear a not-yet-honored pause
    /// flag.
    pub(crate) fn resume_job(&self, id: JobId) -> Result<(), ServeError> {
        let mut guard = self.state.lock().unwrap();
        let st = &mut *guard;
        let entry = st
            .entries
            .get_mut(&id.0)
            .ok_or(ServeError::UnknownJob(id.0))?;
        entry.ctl.pause.store(false, Ordering::SeqCst);
        if entry.run_state == RunState::Paused {
            let round = entry
                .task
                .as_ref()
                .and_then(|t| t.suspended.as_ref().map(SuspendedLoop::round));
            let shared = Arc::clone(&entry.shared);
            shared.event(EventKind::Resumed, round, String::new());
            entry.run_state = RunState::Queued;
            st.run_queue.push_back(id);
            shared.set_state(JobState::Running);
            self.gauges(st);
            self.work.notify_one();
        }
        Ok(())
    }

    /// Cancel a job. Queued/parked/paused jobs (the scheduler holds
    /// their task) finalize *immediately* — this is the satellite fix: a
    /// job cancelled while parked in the run queue gets its complete
    /// event sequence from the scheduler, not from a worker it never
    /// reached. Running jobs get the flag and finalize at their next
    /// boundary.
    pub(crate) fn cancel(&self, id: JobId) -> Result<(), ServeError> {
        let mut guard = self.state.lock().unwrap();
        let st = &mut *guard;
        let entry = st
            .entries
            .get_mut(&id.0)
            .ok_or(ServeError::UnknownJob(id.0))?;
        match entry.run_state {
            RunState::Terminal => {}
            RunState::Running => entry.ctl.cancel.store(true, Ordering::SeqCst),
            RunState::Queued | RunState::Parked | RunState::Paused => {
                let round = entry
                    .task
                    .as_ref()
                    .and_then(|t| t.collect.as_ref().map(|c| c.batch.round));
                Self::finalize_cancel_entry(&self.telemetry, entry, round, &mut st.parked);
                st.live -= 1;
                self.gauges(st);
            }
        }
        Ok(())
    }

    /// Append a host's delivery sequence to the job's mailbox in one
    /// critical section (atomicity keeps the wake count — and with it
    /// the per-job slice ledger — deterministic: a woken job always sees
    /// the full sequence, deadline marker included), re-enqueueing the
    /// job if it was parked. Deliveries to terminal or unknown jobs
    /// evaporate, exactly as the old dropped-inbox path did.
    pub(crate) fn deliver_all(&self, job: JobId, deliveries: Vec<HostDelivery>) {
        if deliveries.is_empty() {
            return;
        }
        let mut guard = self.state.lock().unwrap();
        let st = &mut *guard;
        let Some(entry) = st.entries.get_mut(&job.0) else {
            return;
        };
        if entry.run_state == RunState::Terminal {
            return;
        }
        entry.mailbox.extend(deliveries);
        if entry.run_state == RunState::Parked {
            entry.run_state = RunState::Queued;
            st.parked -= 1;
            st.run_queue.push_back(job);
            self.telemetry.add("sched.requeues", 1);
            self.gauges(st);
            self.work.notify_one();
        }
    }

    /// Snapshot the scheduler (gauge values, fairness ledger,
    /// completion order).
    pub(crate) fn stats(&self) -> SchedStats {
        let st = self.state.lock().unwrap();
        SchedStats {
            queue_depth: st.run_queue.len(),
            workers_busy: st.workers_busy,
            jobs_parked: st.parked,
            live_jobs: st.live,
            slices: st
                .order
                .iter()
                .map(|id| (*id, st.entries.get(&id.0).map_or(0, |e| e.slices)))
                .collect(),
            completion_order: st.completion_order.clone(),
        }
    }

    /// Begin shutdown: cancel every job the scheduler holds, flag the
    /// running ones, and wake all workers so they can drain and exit.
    pub(crate) fn begin_shutdown(&self) {
        let mut guard = self.state.lock().unwrap();
        let st = &mut *guard;
        st.shutdown = true;
        for id in st.order.clone() {
            let Some(entry) = st.entries.get_mut(&id.0) else {
                continue;
            };
            match entry.run_state {
                RunState::Terminal => {}
                RunState::Running => entry.ctl.cancel.store(true, Ordering::SeqCst),
                _ => {
                    let round = entry
                        .task
                        .as_ref()
                        .and_then(|t| t.collect.as_ref().map(|c| c.batch.round));
                    Self::finalize_cancel_entry(&self.telemetry, entry, round, &mut st.parked);
                    st.live -= 1;
                }
            }
        }
        self.gauges(st);
        self.work.notify_all();
    }

    /// Terminal transition for a cancelled job: event (with `job_start`
    /// first if the job never ran), counter, then state — counters
    /// always land before the state flip because `wait` returns the
    /// moment the state is terminal.
    fn finalize_cancel_entry(
        telemetry: &Telemetry,
        entry: &mut Entry,
        round: Option<usize>,
        parked: &mut usize,
    ) {
        if entry.run_state == RunState::Parked {
            *parked -= 1;
        }
        let never_started = entry.task.as_ref().is_some_and(|t| !t.started);
        if never_started {
            entry.shared.event(EventKind::JobStart, None, String::new());
        }
        entry.task = None;
        entry.run_state = RunState::Terminal;
        entry
            .shared
            .event(EventKind::Cancelled, round, String::new());
        telemetry.add("serve.jobs_cancelled", 1);
        entry.shared.set_state(JobState::Cancelled);
    }

    /// Apply a finished slice's outcome under the scheduler lock. All
    /// terminal events/counters/state flips happen here — the
    /// "scheduler finalizes, workers compute" split of DESIGN.md §17.
    fn apply_outcome(&self, id: JobId, task: JobTask, outcome: SliceOutcome) {
        let mut guard = self.state.lock().unwrap();
        let st = &mut *guard;
        st.workers_busy -= 1;
        self.telemetry.add("sched.slices", 1);
        let Some(entry) = st.entries.get_mut(&id.0) else {
            self.gauges(st);
            return;
        };
        entry.slices += 1;
        let cancelled = entry.ctl.cancel.load(Ordering::SeqCst);
        match outcome {
            SliceOutcome::Parked | SliceOutcome::Paused if cancelled => {
                let round = task.collect.as_ref().map(|c| c.batch.round);
                entry.task = Some(task);
                Self::finalize_cancel_entry(&self.telemetry, entry, round, &mut st.parked);
                st.live -= 1;
            }
            SliceOutcome::Parked => {
                entry.task = Some(task);
                if entry.mailbox.is_empty() {
                    entry.run_state = RunState::Parked;
                    st.parked += 1;
                } else {
                    // Deliveries landed while the slice was still on the
                    // worker: skip the parked state entirely.
                    entry.run_state = RunState::Queued;
                    st.run_queue.push_back(id);
                    self.telemetry.add("sched.requeues", 1);
                    self.work.notify_one();
                }
            }
            SliceOutcome::Paused => {
                entry.task = Some(task);
                if entry.ctl.pause.load(Ordering::SeqCst) {
                    entry.ctl.pause.store(false, Ordering::SeqCst);
                    entry.run_state = RunState::Paused;
                    entry.shared.set_state(JobState::Paused);
                } else {
                    // A resume verb landed between the slice honoring
                    // the pause and this application: wake immediately,
                    // with the same paused→resumed event sequence the
                    // blocking design produced.
                    let round = entry
                        .task
                        .as_ref()
                        .and_then(|t| t.suspended.as_ref().map(SuspendedLoop::round));
                    entry.shared.event(EventKind::Resumed, round, String::new());
                    entry.run_state = RunState::Queued;
                    st.run_queue.push_back(id);
                    entry.shared.set_state(JobState::Running);
                    self.work.notify_one();
                }
            }
            SliceOutcome::Cancelled { round } => {
                entry.task = Some(task);
                Self::finalize_cancel_entry(&self.telemetry, entry, round, &mut st.parked);
                st.live -= 1;
            }
            SliceOutcome::Finished {
                result,
                rounds,
                spent,
                cleaned_total,
                interrupted,
            } => {
                drop(task);
                entry.run_state = RunState::Terminal;
                {
                    let mut inner = entry.shared.inner.lock().unwrap();
                    inner.round = rounds;
                    inner.spent = spent;
                    inner.cleaned = cleaned_total;
                    inner.result = Some(*result);
                }
                entry.shared.event(
                    EventKind::JobComplete,
                    None,
                    format!(
                        "rounds={rounds} cleaned_total={cleaned_total} interrupted={interrupted}"
                    ),
                );
                self.telemetry.add("serve.jobs_completed", 1);
                entry.shared.set_state(JobState::Completed);
                st.completion_order.push(id);
                st.live -= 1;
            }
            SliceOutcome::Failed { msg, round, killed } => {
                drop(task);
                entry.run_state = RunState::Terminal;
                entry.shared.event(EventKind::Error, round, msg.clone());
                entry.shared.inner.lock().unwrap().error = Some(msg);
                self.telemetry.add(
                    if killed {
                        "serve.jobs_killed"
                    } else {
                        "serve.jobs_failed"
                    },
                    1,
                );
                entry.shared.set_state(JobState::Failed);
                st.live -= 1;
            }
        }
        self.gauges(st);
    }
}

/// The worker-pool thread body: pop a job, move its mailbox in, run one
/// slice unlocked, apply the outcome. Exits when shutdown is flagged and
/// the run queue has drained.
pub(crate) fn worker_loop(sched: Arc<Sched>, host_tx: Sender<AnnotationRequest>) {
    loop {
        let (id, mut task, ctl, shared) = {
            let mut guard = sched.state.lock().unwrap();
            loop {
                let st = &mut *guard;
                if let Some(id) = st.run_queue.pop_front() {
                    let Some(entry) = st.entries.get_mut(&id.0) else {
                        continue;
                    };
                    if entry.run_state != RunState::Queued {
                        // Finalized (cancel/shutdown) while queued.
                        continue;
                    }
                    if entry.ctl.cancel.load(Ordering::SeqCst) {
                        let round = entry
                            .task
                            .as_ref()
                            .and_then(|t| t.collect.as_ref().map(|c| c.batch.round));
                        Sched::finalize_cancel_entry(
                            &sched.telemetry,
                            entry,
                            round,
                            &mut st.parked,
                        );
                        st.live -= 1;
                        sched.gauges(st);
                        continue;
                    }
                    let Some(mut task) = entry.task.take() else {
                        continue;
                    };
                    // Move accumulated deliveries into the task so the
                    // slice sees everything that arrived while it was
                    // off-thread.
                    task.inbox.extend(entry.mailbox.drain(..));
                    entry.run_state = RunState::Running;
                    let ctl = Arc::clone(&entry.ctl);
                    let shared = Arc::clone(&entry.shared);
                    st.workers_busy += 1;
                    sched.gauges(st);
                    break (id, task, ctl, shared);
                }
                if st.shutdown {
                    return;
                }
                guard = sched.work.wait(guard).unwrap();
            }
        };
        let outcome = task.slice(&ctl, &shared, &sched.telemetry, &host_tx);
        sched.apply_outcome(id, task, outcome);
    }
}

/// The annotator-service thread body: one host, serialized, feeding
/// delivery sequences back into the scheduler (which re-enqueues parked
/// jobs). Exits when every request sender is gone.
pub(crate) fn host_loop(
    sched: Arc<Sched>,
    mut host: Box<dyn AnnotatorHost>,
    host_rx: Receiver<AnnotationRequest>,
) {
    while let Ok(req) = host_rx.recv() {
        let deliveries = host.annotate(&req);
        sched.deliver_all(req.job, deliveries);
    }
}

impl JobTask {
    fn new(id: JobId, req: JobRequest) -> Self {
        let JobRequest {
            name,
            cfg,
            model,
            train,
            val,
            test,
            selector,
            deadline_ms,
            resume_from,
        } = req;
        let annotation = cfg.annotation;
        let job_tel = cfg.telemetry.clone();
        #[cfg(feature = "fault-inject")]
        let faults = cfg.faults.clone();
        Self {
            id,
            name,
            pipeline: Pipeline::new(cfg),
            model,
            train: Some(train),
            val,
            test,
            selector,
            deadline_ms,
            resume_from,
            annotation,
            job_tel,
            #[cfg(feature = "fault-inject")]
            faults,
            started: false,
            suspended: None,
            inbox: VecDeque::new(),
            collect: None,
        }
    }

    /// Run one scheduling slice: at most one round of compute between
    /// suspension points. Never blocks — every wait is expressed by
    /// returning [`SliceOutcome::Parked`] / [`SliceOutcome::Paused`] and
    /// giving the thread back.
    fn slice(
        &mut self,
        ctl: &JobCtl,
        shared: &JobShared,
        serve_tel: &Telemetry,
        host_tx: &Sender<AnnotationRequest>,
    ) -> SliceOutcome {
        // ---- Build, resume, or reattach the loop. ----
        let first = !self.started;
        if first {
            self.started = true;
            shared.event(EventKind::JobStart, None, String::new());
            shared.set_state(JobState::Running);
        }
        let train = self.train.as_mut().expect("train present until finished");
        let mut rl = match self.suspended.take() {
            Some(s) => self.pipeline.reattach_round_loop(
                &*self.model,
                train,
                &self.val,
                &self.test,
                &mut *self.selector,
                s,
            ),
            None => match &self.resume_from {
                None => self.pipeline.round_loop(
                    &*self.model,
                    train,
                    &self.val,
                    &self.test,
                    &mut *self.selector,
                ),
                Some(dir) => {
                    match self.pipeline.resume_round_loop_latest(
                        &*self.model,
                        train,
                        &self.val,
                        &self.test,
                        &mut *self.selector,
                        dir,
                    ) {
                        Ok(rl) => rl,
                        Err(e) => {
                            return SliceOutcome::Failed {
                                msg: format!("resume failed: {e}"),
                                round: None,
                                killed: false,
                            }
                        }
                    }
                }
            },
        };

        // ---- Mid-round: continue filling the outstanding batch. ----
        if let Some(mut collect) = self.collect.take() {
            {
                let _span = self.job_tel.span("round.annotate");
                collect.drain(&mut self.inbox, serve_tel);
            }
            if !collect.complete() {
                self.collect = Some(collect);
                self.suspended = Some(rl.suspend());
                return SliceOutcome::Parked;
            }
            shared.set_state(JobState::Running);
            let (outcomes, stats) = collect.outcomes();
            let report = rl.provide(&outcomes, stats, collect.annotate_start.elapsed());
            shared.event(
                EventKind::RoundComplete,
                Some(report.round),
                format!("cleaned={} ambiguous={}", report.cleaned, report.ambiguous),
            );
            serve_tel.add("serve.rounds_completed", 1);
            if rl.is_interrupted() {
                let rounds = rl.round();
                let store_report = rl.finish();
                return self.finish(rounds, store_report);
            }
        }

        // ---- Round boundary: status, strays, control flags. ----
        {
            let mut inner = shared.inner.lock().unwrap();
            inner.round = rl.round();
            inner.spent = rl.spent();
            inner.cleaned = rl.cleaned_total();
        }
        for d in self.inbox.drain(..) {
            // Outside any collect window: by construction stale.
            if let HostDelivery::Reply(_) = d {
                serve_tel.add("serve.replies_late", 1);
            }
        }
        if ctl.cancel.load(Ordering::SeqCst) {
            return SliceOutcome::Cancelled { round: None };
        }
        if ctl.pause.load(Ordering::SeqCst) {
            shared.event(EventKind::Paused, Some(rl.round()), String::new());
            self.suspended = Some(rl.suspend());
            return SliceOutcome::Paused;
        }

        // ---- Select the next batch and park at the boundary. ----
        let batch = match rl.next_batch() {
            RoundStep::Done => {
                let rounds = rl.round();
                let store_report = rl.finish();
                return self.finish(rounds, store_report);
            }
            RoundStep::Awaiting(batch) => batch,
        };
        shared.event(
            EventKind::RoundStart,
            Some(batch.round),
            format!("selected={}", batch.items.len()),
        );
        shared.event(
            EventKind::AwaitingAnnotation,
            Some(batch.round),
            format!("deadline_ms={}", self.deadline_ms),
        );
        shared.set_state(JobState::AwaitingAnnotation);
        serve_tel.add("serve.batches_emitted", 1);
        let _ = host_tx.send(AnnotationRequest {
            job: self.id,
            name: self.name.clone(),
            annotation: self.annotation,
            deadline_ms: self.deadline_ms,
            batch: batch.clone(),
        });

        #[cfg(feature = "fault-inject")]
        if self.faults.kill_requested(batch.round) {
            // Simulated kill -9 at the await point: the batch is out, no
            // outcome of this round was applied, and whatever checkpoint
            // generation exists on disk is the recovery point. The
            // host's replies will land on a terminal entry and
            // evaporate.
            return SliceOutcome::Failed {
                msg: format!("killed mid-round {}", batch.round),
                round: Some(batch.round),
                killed: true,
            };
        }

        self.collect = Some(CollectState::new(batch));
        self.suspended = Some(rl.suspend());
        SliceOutcome::Parked
    }

    /// Finalize a finished loop's store report into the job's result
    /// (also the partial-report path after an injected interrupt). The
    /// caller consumes the [`chef_core::RoundLoop`] first — its borrows
    /// of this task's fields must end before the report can take the
    /// training set.
    fn finish(
        &mut self,
        rounds: usize,
        store_report: chef_core::StorePipelineReport,
    ) -> SliceOutcome {
        let cleaned_total = store_report.cleaned_total;
        let interrupted = store_report.interrupted;
        let report = store_report.into_report(self.train.take().expect("train still owned"));
        let spent = report.rounds.iter().map(|r| r.selected.len()).sum();
        SliceOutcome::Finished {
            result: Box::new(JobResult {
                telemetry_json: self.job_tel.export_json("serve-job"),
                report,
            }),
            rounds,
            spent,
            cleaned_total,
            interrupted,
        }
    }
}

impl CollectState {
    fn new(batch: chef_core::AnnotationBatch) -> Self {
        let pos: HashMap<usize, usize> = batch
            .items
            .iter()
            .enumerate()
            .map(|(slot, item)| (item.index, slot))
            .collect();
        let slots = vec![None; batch.items.len()];
        Self {
            batch,
            pos,
            slots,
            filled: 0,
            expired: false,
            annotate_start: Instant::now(),
        }
    }

    fn complete(&self) -> bool {
        self.expired || self.filled == self.slots.len()
    }

    /// Fill slots from deliveries in arrival order, stopping the moment
    /// the batch completes (either every slot answered or the round's
    /// deadline marker) — leftovers stay queued and surface as stray
    /// `serve.replies_late` at the next round boundary, exactly the
    /// thread-per-job accounting the counter-ledger tests pin.
    fn drain(&mut self, inbox: &mut VecDeque<HostDelivery>, serve_tel: &Telemetry) {
        while !self.complete() {
            let Some(d) = inbox.pop_front() else {
                return;
            };
            match d {
                HostDelivery::Reply(r) => {
                    if r.round != self.batch.round {
                        serve_tel.add("serve.replies_late", 1);
                        continue;
                    }
                    let Some(&slot) = self.pos.get(&r.index) else {
                        serve_tel.add("serve.replies_late", 1);
                        continue;
                    };
                    if self.slots[slot].is_some() {
                        serve_tel.add("serve.replies_duplicate", 1);
                        continue;
                    }
                    self.slots[slot] = Some(r);
                    self.filled += 1;
                    serve_tel.add("serve.replies_received", 1);
                }
                HostDelivery::Deadline { round, .. } => {
                    if round == self.batch.round {
                        serve_tel.add("serve.deadline_expirations", 1);
                        self.expired = true;
                    }
                }
            }
        }
    }

    /// Outcomes in batch order; unanswered slots abstain (the
    /// synchronous timeout path).
    fn outcomes(&self) -> (Vec<AnnotationOutcome>, AnnotationStats) {
        let mut stats = AnnotationStats {
            requested: self.slots.len(),
            ..AnnotationStats::default()
        };
        let outcomes = self
            .slots
            .iter()
            .map(|s| match s {
                Some(r) => {
                    stats.record(&SampleDecision {
                        votes: r.votes,
                        conflict: r.conflict,
                        outcome: r.outcome,
                    });
                    r.outcome
                }
                None => {
                    stats.record_dropped();
                    AnnotationOutcome::Ambiguous
                }
            })
            .collect();
        (outcomes, stats)
    }
}
