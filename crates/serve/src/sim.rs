//! The deterministic simulation harness: a seeded virtual clock and a
//! scripted simulated-human annotator pool (DESIGN.md §16.5).
//!
//! # Determinism argument
//!
//! Every quantity the simulation produces is a pure function of
//! `(sim seed, job name, round, sample index)`:
//!
//! * **Votes** come from [`AnnotationPhase::decide_one`], whose panel
//!   seeds a fresh RNG per `(annotator, sample index)` — identical to
//!   what the synchronous pipeline computes, independent of call order.
//! * **Latency, drop and duplicate decisions** come from a fresh
//!   [`SmallRng`] seeded by mixing the same tuple — so they do not
//!   depend on how many batches (of this or any other job) the host
//!   served before.
//! * **Timestamps** advance a per-job [`VirtualClock`]; jobs never share
//!   a clock, so cross-job scheduling interleavings (which are real
//!   thread races) cannot leak into any job's timeline.
//!
//! Hence the delivery sequence for a given request is replayable from
//! the seed alone, every concurrency scenario in the test harness
//! replays bit-identically, and no test ever sleeps — time is data.

use crate::annotator::{AnnotationRequest, AnnotatorHost, HostDelivery, SampleReply};
use chef_core::AnnotationPhase;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A per-job virtual clock: milliseconds since job start, advanced only
/// by the simulation itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    /// Current virtual time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Move time forward (monotonic: earlier targets are ignored).
    pub fn advance_to(&mut self, t_ms: u64) {
        self.now_ms = self.now_ms.max(t_ms);
    }
}

/// Scripting knobs for the simulated annotator pool.
#[derive(Debug, Clone)]
pub struct SimAnnotatorConfig {
    /// Root seed every per-sample draw mixes in.
    pub seed: u64,
    /// Minimum per-reply latency (virtual ms).
    pub latency_base_ms: u64,
    /// Uniform jitter added on top: latency ∈ `[base, base + jitter]`.
    /// With `jitter > 0` replies arrive out of batch order.
    pub latency_jitter_ms: u64,
    /// Per-reply drop probability: the reply never arrives and its slot
    /// times out → abstain.
    pub drop_prob: f64,
    /// Per-reply duplicate probability: an on-time reply is delivered
    /// twice (receivers must ignore the second copy).
    pub duplicate_prob: f64,
    /// Whole-batch drops scripted per `(job name, round)` — every reply
    /// of that round is dropped, matching the synchronous
    /// `FaultPlan::annotator_timeout_rounds` abstain path exactly.
    pub drop_batches: Vec<(String, usize)>,
    /// Re-deliver the previous round's replies (with their stale round
    /// number) in front of each new round's — exercising the stale-reply
    /// rejection path, including right after a kill/resume.
    pub replay_stale: bool,
}

impl Default for SimAnnotatorConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            latency_base_ms: 5,
            latency_jitter_ms: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            drop_batches: Vec::new(),
            replay_stale: false,
        }
    }
}

/// The scripted simulated-human pool. One instance serves every job of
/// a manager (the multi-tenant case); all per-job state is keyed by
/// [`JobId`](crate::JobId) so tenants stay independent.
pub struct SimAnnotator {
    cfg: SimAnnotatorConfig,
    clocks: HashMap<u64, VirtualClock>,
    /// Last round's on-time replies, for `replay_stale` — keyed by job
    /// *name* so a killed-and-resumed job (fresh [`crate::JobId`]) still
    /// receives its predecessor's stragglers.
    last_replies: HashMap<String, Vec<SampleReply>>,
}

impl SimAnnotator {
    /// Build the pool from its script.
    pub fn new(cfg: SimAnnotatorConfig) -> Self {
        Self {
            cfg,
            clocks: HashMap::new(),
            last_replies: HashMap::new(),
        }
    }

    /// The virtual clock of `job`, if it ever annotated for it.
    pub fn clock(&self, job: u64) -> Option<VirtualClock> {
        self.clocks.get(&job).copied()
    }

    fn mix(&self, name: &str, round: usize, index: usize) -> u64 {
        // FNV-1a over the identifying tuple, then the root seed: stable
        // across platforms, independent of call order, and keyed by the
        // job *name* so a resumed job (new JobId) draws identically.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= round as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= index as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^ self.cfg.seed
    }
}

impl AnnotatorHost for SimAnnotator {
    fn name(&self) -> &'static str {
        "sim-annotator"
    }

    fn annotate(&mut self, req: &AnnotationRequest) -> Vec<HostDelivery> {
        let t0 = self.clocks.entry(req.job.0).or_default().now_ms();
        let phase = AnnotationPhase::new(req.annotation);
        let round = req.batch.round;
        let batch_dropped = self
            .cfg
            .drop_batches
            .iter()
            .any(|(n, r)| n == &req.name && *r == round);

        let mut on_time: Vec<(SampleReply, bool)> = Vec::new();
        let mut late: Vec<SampleReply> = Vec::new();
        for item in &req.batch.items {
            let mut rng = SmallRng::seed_from_u64(self.mix(&req.name, round, item.index));
            let latency = self.cfg.latency_base_ms
                + if self.cfg.latency_jitter_ms > 0 {
                    rng.gen_range(0..=self.cfg.latency_jitter_ms)
                } else {
                    0
                };
            let dropped = batch_dropped || rng.gen_range(0.0..1.0) < self.cfg.drop_prob;
            let duplicated = rng.gen_range(0.0..1.0) < self.cfg.duplicate_prob;
            if dropped {
                continue;
            }
            let d = phase.decide_one(
                item.index,
                item.truth,
                req.batch.num_classes,
                item.suggested,
            );
            let reply = SampleReply {
                round,
                index: item.index,
                votes: d.votes,
                conflict: d.conflict,
                outcome: d.outcome,
                at_ms: t0 + latency,
            };
            if latency <= req.deadline_ms {
                on_time.push((reply, duplicated));
            } else {
                late.push(reply);
            }
        }
        // Arrival order = (timestamp, index): out of batch order as soon
        // as jitter reorders latencies, yet fully deterministic.
        on_time.sort_by_key(|(r, _)| (r.at_ms, r.index));
        late.sort_by_key(|r| (r.at_ms, r.index));

        let deadline_at = t0 + req.deadline_ms;
        let mut out = Vec::new();
        if self.cfg.replay_stale {
            for stale in self.last_replies.remove(&req.name).unwrap_or_default() {
                out.push(HostDelivery::Reply(stale));
            }
        }
        for (reply, duplicated) in &on_time {
            out.push(HostDelivery::Reply(*reply));
            if *duplicated {
                out.push(HostDelivery::Reply(*reply));
            }
        }
        out.push(HostDelivery::Deadline {
            round,
            at_ms: deadline_at,
        });
        let mut horizon = deadline_at;
        for reply in &late {
            out.push(HostDelivery::Reply(*reply));
            horizon = horizon.max(reply.at_ms);
        }
        self.clocks
            .entry(req.job.0)
            .or_default()
            .advance_to(horizon);
        if self.cfg.replay_stale {
            self.last_replies.insert(
                req.name.clone(),
                on_time.into_iter().map(|(r, _)| r).collect(),
            );
        }
        out
    }
}
