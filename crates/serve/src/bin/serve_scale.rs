//! Multi-tenant scheduler scaling bench: N tenants on an M-worker pool
//! vs the thread-per-job configuration (pool sized to one worker per
//! tenant), proving the pooled cooperative scheduler bounds threads
//! without costing wall-clock or changing a single result bit.
//!
//! Two lanes over the identical 64-tenant workload (each tenant a
//! seeded `chef-data` paper dataset job driven by the deterministic
//! [`SimAnnotator`]):
//!
//! * `pooled`: 4 workers — jobs suspend at the annotation boundary and
//!   multiplex round-robin (DESIGN.md §17);
//! * `thread-per-job`: 64 workers — every tenant can hold a thread
//!   simultaneously, the PR-9 concurrency shape.
//!
//! Per lane: wall-clock over submit→drain, peak process thread count
//! (`Threads:` in `/proc/self/status`, sampled at every submit and
//! wait), and the `sched.*` ledger. The bench asserts the pooled lane's
//! peak stays within pool + host + main (M+2), that every tenant's
//! final parameter vector is bit-identical across lanes, and that
//! pooling does not lose wall-clock beyond noise; then writes
//! `BENCH_serve.json`. `RAYON_NUM_THREADS=1` pins the compute kernels
//! serial so the thread census measures the scheduler, not the linear
//! algebra.
//!
//! Usage: `cargo run --release -p chef-serve --bin serve_scale`
//! (`--quick` for an 8-tenant CI smoke with no JSON output, `--tenants
//! N` / `--workers M` to override the shape).

use chef_core::Telemetry;
use chef_obs::JsonWriter;
use chef_serve::{
    job_request_from_spec, JobId, JobManager, SchedConfig, SimAnnotator, SimAnnotatorConfig,
};
use std::time::Instant;

const SIM_SEED: u64 = 1;

struct Workload {
    tenants: usize,
    workers: usize,
    dataset: &'static str,
    scale: usize,
    budget: usize,
    round_size: usize,
}

struct LaneResult {
    label: &'static str,
    workers: usize,
    wall_s: f64,
    peak_threads: usize,
    slices: u64,
    requeues: u64,
    /// Per-tenant final parameter bits, the cross-lane identity probe.
    final_bits: Vec<Vec<u64>>,
}

/// Current thread count of this process (`Threads:` in
/// `/proc/self/status`); 0 if the file is unreadable (non-Linux).
fn current_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn run_lane(label: &'static str, workers: usize, w: &Workload) -> LaneResult {
    let mgr = JobManager::with_config(
        Box::new(SimAnnotator::new(SimAnnotatorConfig {
            seed: SIM_SEED,
            ..SimAnnotatorConfig::default()
        })),
        Telemetry::enabled(),
        SchedConfig {
            workers,
            queue_bound: w.tenants.max(1),
        },
    );
    let mut peak_threads = current_threads();
    let start = Instant::now();
    let ids: Vec<JobId> = (0..w.tenants)
        .map(|i| {
            let spec = format!(
                r#"{{"name": "tenant-{i}", "dataset": "{}", "scale": {}, "seed": {}, "budget": {}, "round_size": {}, "deadline_ms": 1000}}"#,
                w.dataset,
                w.scale,
                i as u64 + 1,
                w.budget,
                w.round_size,
            );
            let req = job_request_from_spec(&spec).expect("workload spec is valid");
            let id = mgr.submit(req);
            peak_threads = peak_threads.max(current_threads());
            id
        })
        .collect();
    let final_bits: Vec<Vec<u64>> = ids
        .iter()
        .map(|&id| {
            let report = mgr.wait(id).expect("tenant job completes").report;
            peak_threads = peak_threads.max(current_threads());
            report.final_w.iter().map(|v| v.to_bits()).collect()
        })
        .collect();
    let wall_s = start.elapsed().as_secs_f64();
    let tel = mgr.telemetry();
    let lane = LaneResult {
        label,
        workers,
        wall_s,
        peak_threads,
        slices: tel.counter("sched.slices"),
        requeues: tel.counter("sched.requeues"),
        final_bits,
    };
    drop(mgr); // join the pool before the next lane's census
    lane
}

fn write_json(w: &Workload, lanes: &[LaneResult], speedup: f64) {
    let mut j = JsonWriter::new();
    j.begin_object();
    j.field_str("schema", chef_core::SCHEMA_VERSION);
    j.field_str("kind", "serve_scale");
    j.key("context");
    j.begin_object();
    j.field_u64("tenants", w.tenants as u64);
    j.field_u64("pool_workers", w.workers as u64);
    j.field_str("dataset", w.dataset);
    j.field_u64("scale", w.scale as u64);
    j.field_u64("budget", w.budget as u64);
    j.field_u64("round_size", w.round_size as u64);
    j.field_u64("sim_seed", SIM_SEED);
    j.field_u64("available_cores", chef_obs::available_cores() as u64);
    j.field_str(
        "threads_metric",
        "Threads: in /proc/self/status, sampled at every submit and wait; RAYON_NUM_THREADS=1",
    );
    j.end_object();
    j.key("lanes");
    j.begin_array();
    for lane in lanes {
        j.begin_object();
        j.field_str("label", lane.label);
        j.field_u64("workers", lane.workers as u64);
        j.field_f64("wall_s", lane.wall_s);
        j.field_u64("peak_threads", lane.peak_threads as u64);
        j.field_u64("sched_slices", lane.slices);
        j.field_u64("sched_requeues", lane.requeues);
        j.end_object();
    }
    j.end_array();
    j.field_f64("pooled_speedup_vs_thread_per_job", speedup);
    j.field_bool("bit_identical_across_lanes", true);
    j.end_object();
    std::fs::write("BENCH_serve.json", j.finish() + "\n").expect("write BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");
}

fn main() {
    // Serial compute kernels: the census below must count scheduler
    // threads, not transient linear-algebra workers.
    std::env::set_var("RAYON_NUM_THREADS", "1");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut tenants: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--tenants" => tenants = it.next().and_then(|s| s.parse().ok()),
            "--workers" => workers = it.next().and_then(|s| s.parse().ok()),
            other => {
                eprintln!("usage: serve_scale [--quick] [--tenants N] [--workers M] (got {other})");
                std::process::exit(2);
            }
        }
    }
    let w = if quick {
        Workload {
            tenants: tenants.unwrap_or(8),
            workers: workers.unwrap_or(4),
            dataset: "MIMIC",
            scale: 30,
            budget: 10,
            round_size: 5,
        }
    } else {
        Workload {
            tenants: tenants.unwrap_or(64),
            workers: workers.unwrap_or(4),
            dataset: "MIMIC",
            scale: 40,
            budget: 20,
            round_size: 5,
        }
    };

    eprintln!(
        "serve_scale: {} tenants ({} budget {} / round {}), pool {} vs thread-per-job {}",
        w.tenants, w.dataset, w.budget, w.round_size, w.workers, w.tenants
    );
    let pooled = run_lane("pooled", w.workers, &w);
    eprintln!(
        "  pooled          : {:>7.2}s wall, peak {} threads, {} slices, {} requeues",
        pooled.wall_s, pooled.peak_threads, pooled.slices, pooled.requeues
    );
    let baseline = run_lane("thread-per-job", w.tenants, &w);
    eprintln!(
        "  thread-per-job  : {:>7.2}s wall, peak {} threads, {} slices, {} requeues",
        baseline.wall_s, baseline.peak_threads, baseline.slices, baseline.requeues
    );

    assert_eq!(
        pooled.final_bits, baseline.final_bits,
        "pool size must not change any tenant's final parameters"
    );
    // main + M pool workers + 1 annotator-service thread.
    let budget_threads = w.workers + 2;
    assert!(
        pooled.peak_threads <= budget_threads,
        "pooled lane peaked at {} threads, budget is {budget_threads}",
        pooled.peak_threads
    );
    let speedup = baseline.wall_s / pooled.wall_s;
    eprintln!("  speedup (thread-per-job wall / pooled wall): {speedup:.3}x");
    if !quick {
        assert!(
            pooled.wall_s <= baseline.wall_s * 1.10,
            "pooling must not cost wall-clock: {:.2}s pooled vs {:.2}s thread-per-job",
            pooled.wall_s,
            baseline.wall_s
        );
        write_json(&w, &[pooled, baseline], speedup);
    }
}
