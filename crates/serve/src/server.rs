//! Protocol dispatch: one `chef-serve.v1` connection (stdin pipe, unix
//! socket, or an in-memory reader in tests) driving a [`JobManager`].
//!
//! Request payloads are JSON; the submit payload is a *job spec* naming
//! a `chef-data` paper dataset, which the server generates, weakens and
//! wraps into a [`JobRequest`] — the daemon's tenants share nothing but
//! the annotator host. Frame-level errors answer with a structured
//! `error` frame; recoverable ones (unknown verb/version) keep the
//! connection open, unrecoverable ones (malformed, oversized, torn)
//! close it after answering.

use crate::job::{JobManager, JobRequest};
use crate::protocol::{Frame, Verb};
use crate::JobId;
use chef_core::{
    AnnotationConfig, CheckpointConfig, InflSelector, LabelStrategy, PipelineConfig, Telemetry,
};
use chef_data::{by_name, generate};
use chef_model::LogisticRegression;
use chef_obs::{parse_json, JsonValue, JsonWriter};
use chef_weak::{weaken_split, WeakenConfig};
use std::io::{BufRead, Write};
use std::path::PathBuf;

/// Default per-reply deadline when a submit spec omits `deadline_ms`.
pub const DEFAULT_DEADLINE_MS: u64 = 1_000;

fn error_payload(code: &str, detail: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("error", code);
    w.field_str("detail", detail);
    w.end_object();
    w.finish()
}

fn error_frame(code: &str, detail: &str) -> Frame {
    Frame::new(Verb::Error, error_payload(code, detail))
}

/// Build a [`JobRequest`] from a submit-spec payload.
///
/// Spec fields: `name` (required), `dataset` (paper dataset name,
/// required), `scale` (default 40), `seed` (default 7), `budget`
/// (default 20), `round_size` (default 5), `panel` (annotators, default
/// 3), `deadline_ms` (default [`DEFAULT_DEADLINE_MS`]), `incremental`
/// (Increm-Infl selector, default false), `checkpoint_dir` +
/// `checkpoint_every` (off unless given), `resume_from` (checkpoint dir
/// to continue from).
pub fn job_request_from_spec(payload: &str) -> Result<JobRequest, String> {
    let v = parse_json(payload).map_err(|e| format!("spec is not JSON: {e}"))?;
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("spec missing 'name'")?
        .to_string();
    let dataset = v
        .get("dataset")
        .and_then(JsonValue::as_str)
        .ok_or("spec missing 'dataset'")?;
    let scale = v.get("scale").and_then(JsonValue::as_usize).unwrap_or(40);
    let seed = v.get("seed").and_then(JsonValue::as_u64).unwrap_or(7);
    let spec = by_name(dataset, scale).ok_or_else(|| format!("unknown dataset '{dataset}'"))?;
    let mut split = generate(&spec, seed);
    weaken_split(
        &mut split,
        &spec,
        &WeakenConfig {
            seed,
            ..WeakenConfig::default()
        },
    );
    let panel = v.get("panel").and_then(JsonValue::as_usize).unwrap_or(3);
    let checkpoint = v
        .get("checkpoint_dir")
        .and_then(JsonValue::as_str)
        .map(|dir| CheckpointConfig {
            dir: PathBuf::from(dir),
            every_rounds: v
                .get("checkpoint_every")
                .and_then(JsonValue::as_usize)
                .unwrap_or(1),
            keep: 3,
        });
    let cfg = PipelineConfig {
        budget: v.get("budget").and_then(JsonValue::as_usize).unwrap_or(20),
        round_size: v
            .get("round_size")
            .and_then(JsonValue::as_usize)
            .unwrap_or(5),
        annotation: AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(panel),
            error_rate: spec.annotator_error,
            seed: seed ^ 0xa11_07a7e,
        },
        checkpoint,
        telemetry: Telemetry::enabled(),
        ..PipelineConfig::default()
    };
    let incremental = v
        .get("incremental")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    let selector = if incremental {
        InflSelector::incremental()
    } else {
        InflSelector::full()
    };
    Ok(JobRequest {
        name,
        cfg,
        model: Box::new(LogisticRegression::new(spec.dim, spec.num_classes)),
        train: split.train,
        val: split.val,
        test: split.test,
        selector: Box::new(selector),
        deadline_ms: v
            .get("deadline_ms")
            .and_then(JsonValue::as_u64)
            .unwrap_or(DEFAULT_DEADLINE_MS),
        resume_from: v
            .get("resume_from")
            .and_then(JsonValue::as_str)
            .map(PathBuf::from),
    })
}

fn job_id_of(payload: &str) -> Result<JobId, Frame> {
    let v = parse_json(payload)
        .map_err(|e| error_frame("bad-payload", &format!("payload is not JSON: {e}")))?;
    let id = v
        .get("job")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| error_frame("bad-payload", "payload missing numeric 'job'"))?;
    Ok(JobId(id))
}

fn status_payload(mgr: &JobManager, id: JobId) -> Option<String> {
    let st = mgr.status(id)?;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("job", st.id.0);
    w.field_str("name", &st.name);
    w.field_str("state", st.state.as_str());
    w.field_u64("round", st.round as u64);
    w.field_u64("spent", st.spent as u64);
    w.field_u64("cleaned", st.cleaned as u64);
    if let Some(e) = &st.error {
        w.field_str("error", e);
    }
    w.end_object();
    Some(w.finish())
}

/// Handle one already-decoded request frame, producing the response
/// frame. `results` blocks until the job is terminal.
pub fn dispatch(mgr: &JobManager, frame: &Frame) -> Frame {
    match frame.verb {
        Verb::Submit => match job_request_from_spec(&frame.payload) {
            Ok(req) => {
                let name = req.name.clone();
                match mgr.try_submit(req) {
                    Ok(id) => {
                        let mut w = JsonWriter::new();
                        w.begin_object();
                        w.field_u64("job", id.0);
                        w.field_str("name", &name);
                        w.end_object();
                        Frame::new(Verb::Ok, w.finish())
                    }
                    // Recoverable backpressure: the stream stays open and
                    // aligned; the client resubmits after a job finishes.
                    Err(e) => error_frame("busy", &e.to_string()),
                }
            }
            Err(e) => error_frame("bad-spec", &e),
        },
        Verb::Status => match job_id_of(&frame.payload) {
            Err(e) => e,
            Ok(id) => match status_payload(mgr, id) {
                Some(p) => Frame::new(Verb::Ok, p),
                None => error_frame("unknown-job", &format!("no job {}", id.0)),
            },
        },
        Verb::Pause | Verb::Resume | Verb::Cancel => match job_id_of(&frame.payload) {
            Err(e) => e,
            Ok(id) => {
                let res = match frame.verb {
                    Verb::Pause => mgr.pause(id),
                    Verb::Resume => mgr.resume_job(id),
                    _ => mgr.cancel(id),
                };
                match res {
                    Ok(()) => {
                        let mut w = JsonWriter::new();
                        w.begin_object();
                        w.field_u64("job", id.0);
                        w.end_object();
                        Frame::new(Verb::Ok, w.finish())
                    }
                    Err(e) => error_frame("unknown-job", &e.to_string()),
                }
            }
        },
        Verb::Results => match job_id_of(&frame.payload) {
            Err(e) => e,
            Ok(id) => match mgr.wait(id) {
                Ok(result) => {
                    let r = &result.report;
                    let mut w = JsonWriter::new();
                    w.begin_object();
                    w.field_u64("job", id.0);
                    w.field_u64("rounds", r.rounds.len() as u64);
                    w.field_u64("cleaned_total", r.cleaned_total as u64);
                    w.field_f64("initial_test_f1", r.initial_test_f1);
                    w.field_f64("final_test_f1", r.final_test_f1());
                    w.field_bool("early_terminated", r.early_terminated);
                    w.field_bool("interrupted", r.interrupted);
                    w.end_object();
                    Frame::new(Verb::Ok, w.finish())
                }
                Err(e) => error_frame("job-failed", &e.to_string()),
            },
        },
        // `event` as a request asks for the job's serve-events.v1 log;
        // the response reuses the same verb.
        Verb::Event => match job_id_of(&frame.payload) {
            Err(e) => e,
            Ok(id) => match (mgr.events(id), mgr.status(id)) {
                (Some(events), Some(st)) => {
                    Frame::new(Verb::Event, crate::events::export_events(&st.name, &events))
                }
                _ => error_frame("unknown-job", &format!("no job {}", id.0)),
            },
        },
        Verb::Ok | Verb::Error => error_frame(
            "bad-verb",
            &format!("'{}' is a response verb", frame.verb.as_str()),
        ),
    }
}

/// Serve one connection until EOF or an unrecoverable frame error.
/// Every request gets exactly one response frame.
pub fn serve_connection<R: BufRead, W: Write>(
    mgr: &JobManager,
    reader: &mut R,
    writer: &mut W,
) -> std::io::Result<()> {
    loop {
        match Frame::read_from(reader) {
            Ok(None) => return Ok(()),
            Ok(Some(frame)) => {
                let response = dispatch(mgr, &frame);
                writer.write_all(response.encode().as_bytes())?;
                writer.flush()?;
            }
            Err(e) => {
                let response = error_frame(e.code(), &e.to_string());
                writer.write_all(response.encode().as_bytes())?;
                writer.flush()?;
                if !e.recoverable() {
                    return Ok(());
                }
            }
        }
    }
}

/// Serve a unix-domain socket: accept loop, one thread per connection.
/// Runs until the listener errors (never, in practice — callers run it
/// on a dedicated thread and drop the listener path to stop).
#[cfg(unix)]
pub fn serve_socket(
    mgr: &std::sync::Arc<JobManager>,
    listener: std::os::unix::net::UnixListener,
) -> std::io::Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        let mgr = std::sync::Arc::clone(mgr);
        std::thread::spawn(move || {
            let mut reader = std::io::BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let mut writer = stream;
            let _ = serve_connection(&mgr, &mut reader, &mut writer);
        });
    }
}
