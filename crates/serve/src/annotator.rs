//! The asynchronous annotation boundary: the [`AnnotatorHost`] trait and
//! the reply/delivery types flowing back over it (DESIGN.md §16.2).
//!
//! A job never calls annotators directly. Its [`chef_core::RoundLoop`]
//! yields an [`AnnotationBatch`]; the job manager's
//! annotator-service thread hands the batch (wrapped in an
//! [`AnnotationRequest`] carrying tenant context) to the host, and the
//! host returns a *delivery sequence* — replies in arrival order,
//! possibly out of batch order, possibly duplicated, possibly missing,
//! terminated by a [`HostDelivery::Deadline`] marker. The job applies
//! on-time replies, maps everything after the deadline (or never
//! delivered) to the abstain path, and ignores stale/duplicate replies
//! idempotently.

use chef_core::{AnnotationBatch, AnnotationConfig, AnnotationOutcome};

/// Identifier the manager assigns to each submitted job (dense from 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// One batch handed to an annotator host, with the tenant context it
/// needs to answer: which job, that job's annotation setup (hosts serve
/// many tenants with different panels), and the per-reply deadline in
/// virtual milliseconds.
#[derive(Debug, Clone)]
pub struct AnnotationRequest {
    /// The asking job.
    pub job: JobId,
    /// The job's submission name (stable across kill/resume — fault
    /// scripts key on it).
    pub name: String,
    /// The job's annotation configuration; simulated hosts evaluate the
    /// same panel the synchronous phase would.
    pub annotation: AnnotationConfig,
    /// Reply deadline in virtual milliseconds from batch emission:
    /// replies landing later abstain.
    pub deadline_ms: u64,
    /// The batch itself (self-contained — indices, suggestions, truth).
    pub batch: AnnotationBatch,
}

/// One annotator's answer for one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleReply {
    /// Round the answered batch belongs to — replies for other rounds
    /// are stale and must be ignored.
    pub round: usize,
    /// Sample index within the training store.
    pub index: usize,
    /// Votes cast on this sample's ballot.
    pub votes: usize,
    /// Whether the ballot was non-unanimous.
    pub conflict: bool,
    /// The resolved outcome.
    pub outcome: AnnotationOutcome,
    /// Virtual timestamp (ms) at which the reply lands at the job.
    pub at_ms: u64,
}

/// One element of a host's delivery sequence, in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostDelivery {
    /// A reply landed.
    Reply(SampleReply),
    /// The batch's deadline elapsed. Hosts MUST emit exactly one of
    /// these per request, after every on-time reply and before any late
    /// one — it is what unblocks a job whose replies were dropped.
    Deadline {
        /// Round whose deadline elapsed.
        round: usize,
        /// Virtual timestamp (ms) of the expiry.
        at_ms: u64,
    },
}

/// An external annotation service, driven by the job manager's
/// annotator-service thread.
///
/// Contract: for every request the returned sequence contains at most
/// one on-time reply per batch item (duplicates are allowed and must be
/// ignored by the receiver), and **exactly one**
/// [`HostDelivery::Deadline`] for the request's round, positioned after
/// the last on-time reply. Hosts are sequential (`&mut self`) — the
/// service thread is the serialization point — but must be [`Send`] to
/// live on it.
pub trait AnnotatorHost: Send {
    /// Host name, for telemetry and logs.
    fn name(&self) -> &'static str {
        "annotator-host"
    }

    /// Produce the delivery sequence for one batch.
    fn annotate(&mut self, req: &AnnotationRequest) -> Vec<HostDelivery>;
}
