//! The versioned `serve-events.v1` lifecycle-event schema (DESIGN.md
//! §16.4).
//!
//! Every job appends [`JobEvent`]s as it moves through its state
//! machine; the `results`/`status` protocol verbs and the golden-file
//! test (`tests/serve_events_schema.rs`) consume the exported document.
//! Events deliberately carry **no wall-clock timestamps** — `seq` is a
//! per-job sequence number — so two runs of the same seeded simulation
//! export byte-identical documents, which is what the determinism
//! harness asserts.

use chef_obs::{expect_schema, parse_json, JsonValue, JsonWriter, ParseError};

/// Schema identifier embedded in every exported event document.
pub const EVENTS_SCHEMA_VERSION: &str = "serve-events.v1";

/// What happened, in job-lifecycle terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The job thread started (after dataset/model setup, before the
    /// initialization training).
    JobStart,
    /// A round began: the selector is about to run.
    RoundStart,
    /// The round's batch went out to the annotator host; the job is
    /// parked at the async boundary.
    AwaitingAnnotation,
    /// Outcomes were applied; model refreshed, checkpoint (if due)
    /// written.
    RoundComplete,
    /// The loop finished and the final report is available.
    JobComplete,
    /// The job failed (resume error, injected kill, …); detail says why.
    Error,
    /// A pause request took effect at a round boundary.
    Paused,
    /// A resume request woke a paused job.
    Resumed,
    /// A cancel request terminated the job.
    Cancelled,
}

impl EventKind {
    /// Wire name of the kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::JobStart => "job_start",
            EventKind::RoundStart => "round_start",
            EventKind::AwaitingAnnotation => "awaiting_annotation",
            EventKind::RoundComplete => "round_complete",
            EventKind::JobComplete => "job_complete",
            EventKind::Error => "error",
            EventKind::Paused => "paused",
            EventKind::Resumed => "resumed",
            EventKind::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "job_start" => EventKind::JobStart,
            "round_start" => EventKind::RoundStart,
            "awaiting_annotation" => EventKind::AwaitingAnnotation,
            "round_complete" => EventKind::RoundComplete,
            "job_complete" => EventKind::JobComplete,
            "error" => EventKind::Error,
            "paused" => EventKind::Paused,
            "resumed" => EventKind::Resumed,
            "cancelled" => EventKind::Cancelled,
            _ => return None,
        })
    }
}

/// One lifecycle event of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobEvent {
    /// Per-job sequence number, dense from 0.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// The round this event belongs to, when it is round-scoped
    /// (omitted from the JSON when `None`).
    pub round: Option<usize>,
    /// Free-form deterministic detail (counts, error text); omitted
    /// from the JSON when empty.
    pub detail: String,
}

impl JobEvent {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("seq", self.seq);
        w.field_str("kind", self.kind.as_str());
        if let Some(r) = self.round {
            w.field_u64("round", r as u64);
        }
        if !self.detail.is_empty() {
            w.field_str("detail", &self.detail);
        }
        w.end_object();
    }

    fn from_json(v: &JsonValue) -> Result<Self, ParseError> {
        let seq = v
            .get("seq")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ParseError::schema("event missing numeric 'seq'"))?;
        let kind_str = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ParseError::schema("event missing 'kind'"))?;
        let kind = EventKind::parse(kind_str)
            .ok_or_else(|| ParseError::schema(format!("unknown event kind '{kind_str}'")))?;
        let round = v.get("round").and_then(JsonValue::as_usize);
        let detail = v
            .get("detail")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string();
        Ok(Self {
            seq,
            kind,
            round,
            detail,
        })
    }
}

/// Serialize a job's event log as a versioned document.
pub fn export_events(job: &str, events: &[JobEvent]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", EVENTS_SCHEMA_VERSION);
    w.field_str("job", job);
    w.key("events");
    w.begin_array();
    for e in events {
        e.write_json(&mut w);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Parse a document produced by [`export_events`], rejecting unknown
/// schema versions by name (both the found and the supported one appear
/// in the error).
pub fn parse_events(doc: &str) -> Result<(String, Vec<JobEvent>), ParseError> {
    let v = parse_json(doc)?;
    expect_schema(&v, EVENTS_SCHEMA_VERSION)?;
    let job = v
        .get("job")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ParseError::schema("document missing 'job'"))?
        .to_string();
    let events = v
        .get("events")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| ParseError::schema("document missing 'events' array"))?
        .iter()
        .map(JobEvent::from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((job, events))
}
