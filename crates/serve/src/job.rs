//! The multi-tenant job manager: one worker thread per cleaning job, one
//! annotator-service thread per manager, plain `std::thread` + `mpsc`
//! (the PR-8 prefetch style — no async runtime in the offline shim set).
//!
//! A job owns its dataset, model and selector, drives a
//! [`RoundLoop`] and parks at the annotation boundary: the batch goes to
//! the annotator service, replies flow back into the job's inbox in
//! arrival order, and the round completes when every slot is answered or
//! the deadline marker lands (missing slots abstain — the synchronous
//! timeout path). Stale replies (wrong round) and duplicates (slot
//! already filled) are counted and ignored idempotently, which is what
//! makes delivery order irrelevant to the result.
//!
//! Jobs are backed by the `checkpoint.v1` store via their
//! [`PipelineConfig::checkpoint`]: a killed job (process death, or the
//! injected `kill_mid_round` fault) is resubmitted with
//! [`JobRequest::resume_from`] and continues bit-identically.

use crate::annotator::{AnnotationRequest, AnnotatorHost, HostDelivery, JobId, SampleReply};
use crate::events::{EventKind, JobEvent};
use chef_core::{
    AnnotationOutcome, AnnotationStats, Pipeline, PipelineConfig, PipelineReport, RoundLoop,
    RoundStep, SampleDecision, SampleSelector, Telemetry,
};
use chef_model::{Dataset, Model};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Everything a job needs: a tenant's dataset, model, selector and
/// pipeline configuration, plus the serve-level knobs.
pub struct JobRequest {
    /// Submission name (stable across kill/resume; annotator hosts and
    /// fault scripts key on it).
    pub name: String,
    /// The pipeline configuration, including per-job telemetry handle
    /// and checkpoint directory.
    pub cfg: PipelineConfig,
    /// The model architecture.
    pub model: Box<dyn Model + Send>,
    /// Weakly-labeled training set (pristine when resuming — checkpoint
    /// label patches are replayed onto it).
    pub train: Dataset,
    /// Validation set (drives influence + early stopping).
    pub val: Dataset,
    /// Test set (reporting only).
    pub test: Dataset,
    /// Sample selector.
    pub selector: Box<dyn SampleSelector + Send>,
    /// Per-reply deadline in virtual milliseconds; replies landing later
    /// abstain.
    pub deadline_ms: u64,
    /// Resume from the newest readable checkpoint generation in this
    /// directory instead of starting fresh.
    pub resume_from: Option<PathBuf>,
}

/// Job lifecycle states (DESIGN.md §16.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Between rounds: selecting, updating, evaluating.
    Running,
    /// Parked at the annotation boundary.
    AwaitingAnnotation,
    /// Paused at a round boundary; waiting for `resume`.
    Paused,
    /// Finished; report available.
    Completed,
    /// Terminated by `cancel`.
    Cancelled,
    /// Died: resume error, injected kill, host failure. `error` says why.
    Failed,
}

impl JobState {
    /// Wire name (status payloads).
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Running => "running",
            JobState::AwaitingAnnotation => "awaiting_annotation",
            JobState::Paused => "paused",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job will never change state again.
    pub fn terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

/// A point-in-time snapshot of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Manager-assigned id.
    pub id: JobId,
    /// Submission name.
    pub name: String,
    /// Current state.
    pub state: JobState,
    /// Completed rounds (including restored ones after a resume).
    pub round: usize,
    /// Budget slots consumed.
    pub spent: usize,
    /// Samples cleaned.
    pub cleaned: usize,
    /// Failure detail, when `state == Failed`.
    pub error: Option<String>,
}

/// A completed job's outputs.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The full pipeline report (bit-identical to a synchronous
    /// `Pipeline::run` when every reply was on time).
    pub report: PipelineReport,
    /// The job's `telemetry.v1` export, when the telemetry feature is
    /// enabled and the job was given an enabled handle.
    pub telemetry_json: Option<String>,
}

/// Errors surfaced by manager calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No job with that id.
    UnknownJob(u64),
    /// The job failed; the detail is the job's error.
    JobFailed(String),
    /// The job was cancelled before producing a report.
    JobCancelled,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServeError::JobFailed(e) => write!(f, "job failed: {e}"),
            ServeError::JobCancelled => write!(f, "job was cancelled"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Messages into a job's inbox: annotator deliveries and control verbs,
/// one uniform channel so the job has a single blocking point.
enum JobMsg {
    Delivery(HostDelivery),
    Pause,
    Resume,
    Cancel,
}

/// What the annotator-service thread consumes.
struct HostRequest {
    req: AnnotationRequest,
    reply_to: Sender<JobMsg>,
}

struct JobInner {
    state: JobState,
    round: usize,
    spent: usize,
    cleaned: usize,
    error: Option<String>,
    result: Option<JobResult>,
}

struct JobShared {
    name: String,
    inner: Mutex<JobInner>,
    done: Condvar,
    events: Mutex<Vec<JobEvent>>,
}

impl JobShared {
    fn event(&self, kind: EventKind, round: Option<usize>, detail: String) {
        let mut ev = self.events.lock().unwrap();
        let seq = ev.len() as u64;
        ev.push(JobEvent {
            seq,
            kind,
            round,
            detail,
        });
    }

    fn set_state(&self, state: JobState) {
        let mut inner = self.inner.lock().unwrap();
        inner.state = state;
        // Every transition wakes waiters: `wait` only cares about
        // terminal states, but `wait_for` may be watching any of them.
        self.done.notify_all();
    }
}

struct JobEntry {
    id: JobId,
    shared: Arc<JobShared>,
    tx: Sender<JobMsg>,
    handle: Option<JoinHandle<()>>,
}

/// The daemon core: submits jobs, routes annotator traffic, exposes
/// status/results/events, and records `serve.*` counters on its
/// [`Telemetry`] handle.
pub struct JobManager {
    jobs: Mutex<Vec<JobEntry>>,
    host_tx: Option<Sender<HostRequest>>,
    host_handle: Option<JoinHandle<()>>,
    telemetry: Telemetry,
    next_id: Mutex<u64>,
}

impl JobManager {
    /// Start a manager whose jobs annotate through `host`. The service
    /// thread owns the host; it shuts down when the manager drops.
    pub fn new(host: Box<dyn AnnotatorHost>) -> Self {
        Self::with_telemetry(host, Telemetry::enabled())
    }

    /// [`Self::new`] with a caller-provided telemetry handle for the
    /// `serve.*` counters.
    pub fn with_telemetry(host: Box<dyn AnnotatorHost>, telemetry: Telemetry) -> Self {
        let (host_tx, host_rx) = channel::<HostRequest>();
        let mut host = host;
        let host_handle = std::thread::Builder::new()
            .name("chef-serve-annotators".into())
            .spawn(move || {
                while let Ok(hr) = host_rx.recv() {
                    for delivery in host.annotate(&hr.req) {
                        // A dead job (killed, cancelled) dropped its
                        // inbox; its stragglers evaporate here.
                        let _ = hr.reply_to.send(JobMsg::Delivery(delivery));
                    }
                }
            })
            .expect("spawn annotator service thread");
        Self {
            jobs: Mutex::new(Vec::new()),
            host_tx: Some(host_tx),
            host_handle: Some(host_handle),
            telemetry,
            next_id: Mutex::new(1),
        }
    }

    /// The manager-wide telemetry handle (`serve.*` counters).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Submit a job; its worker thread starts immediately.
    pub fn submit(&self, req: JobRequest) -> JobId {
        let id = {
            let mut next = self.next_id.lock().unwrap();
            let id = JobId(*next);
            *next += 1;
            id
        };
        let shared = Arc::new(JobShared {
            name: req.name.clone(),
            inner: Mutex::new(JobInner {
                state: JobState::Running,
                round: 0,
                spent: 0,
                cleaned: 0,
                error: None,
                result: None,
            }),
            done: Condvar::new(),
            events: Mutex::new(Vec::new()),
        });
        let (tx, rx) = channel::<JobMsg>();
        let host_tx = self
            .host_tx
            .as_ref()
            .expect("manager host channel alive")
            .clone();
        let worker_shared = Arc::clone(&shared);
        let worker_tx = tx.clone();
        let serve_tel = self.telemetry.clone();
        self.telemetry.add("serve.jobs_submitted", 1);
        let handle = std::thread::Builder::new()
            .name(format!("chef-serve-{id}"))
            .spawn(move || run_job(id, req, worker_shared, rx, worker_tx, host_tx, serve_tel))
            .expect("spawn job thread");
        self.jobs.lock().unwrap().push(JobEntry {
            id,
            shared,
            tx,
            handle: Some(handle),
        });
        id
    }

    fn entry_shared(&self, id: JobId) -> Option<Arc<JobShared>> {
        self.jobs
            .lock()
            .unwrap()
            .iter()
            .find(|e| e.id == id)
            .map(|e| Arc::clone(&e.shared))
    }

    fn send(&self, id: JobId, msg: JobMsg) -> Result<(), ServeError> {
        let jobs = self.jobs.lock().unwrap();
        let entry = jobs
            .iter()
            .find(|e| e.id == id)
            .ok_or(ServeError::UnknownJob(id.0))?;
        // A terminal job's receiver is gone; the verb is a no-op then.
        let _ = entry.tx.send(msg);
        Ok(())
    }

    /// Snapshot a job's status.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let shared = self.entry_shared(id)?;
        let inner = shared.inner.lock().unwrap();
        Some(JobStatus {
            id,
            name: shared.name.clone(),
            state: inner.state,
            round: inner.round,
            spent: inner.spent,
            cleaned: inner.cleaned,
            error: inner.error.clone(),
        })
    }

    /// The job's lifecycle-event log so far.
    pub fn events(&self, id: JobId) -> Option<Vec<JobEvent>> {
        let shared = self.entry_shared(id)?;
        let ev = shared.events.lock().unwrap();
        Some(ev.clone())
    }

    /// Ask a job to pause at its next round boundary.
    pub fn pause(&self, id: JobId) -> Result<(), ServeError> {
        self.send(id, JobMsg::Pause)
    }

    /// Wake a paused job.
    pub fn resume_job(&self, id: JobId) -> Result<(), ServeError> {
        self.send(id, JobMsg::Resume)
    }

    /// Terminate a job (takes effect at its next blocking point).
    pub fn cancel(&self, id: JobId) -> Result<(), ServeError> {
        self.send(id, JobMsg::Cancel)
    }

    /// Block until the job's state satisfies `pred` (terminal states
    /// always also wake the wait, so a predicate that can no longer be
    /// met does not hang: check the returned state). Sleep-free — this
    /// is how tests observe transitions like `Paused`.
    pub fn wait_for(
        &self,
        id: JobId,
        pred: impl Fn(JobState) -> bool,
    ) -> Result<JobState, ServeError> {
        let shared = self.entry_shared(id).ok_or(ServeError::UnknownJob(id.0))?;
        let mut inner = shared.inner.lock().unwrap();
        while !pred(inner.state) && !inner.state.terminal() {
            inner = shared.done.wait(inner).unwrap();
        }
        Ok(inner.state)
    }

    /// Block until the job reaches a terminal state; return its result.
    pub fn wait(&self, id: JobId) -> Result<JobResult, ServeError> {
        let shared = self.entry_shared(id).ok_or(ServeError::UnknownJob(id.0))?;
        let mut inner = shared.inner.lock().unwrap();
        while !inner.state.terminal() {
            inner = shared.done.wait(inner).unwrap();
        }
        match inner.state {
            JobState::Completed => Ok(inner.result.clone().expect("completed job has a result")),
            JobState::Cancelled => Err(ServeError::JobCancelled),
            _ => Err(ServeError::JobFailed(
                inner.error.clone().unwrap_or_else(|| "unknown".into()),
            )),
        }
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        // Wake every live job with a cancel so no thread outlives the
        // manager, then retire the annotator service.
        let mut jobs = self.jobs.lock().unwrap();
        for entry in jobs.iter() {
            let _ = entry.tx.send(JobMsg::Cancel);
        }
        for entry in jobs.iter_mut() {
            if let Some(h) = entry.handle.take() {
                let _ = h.join();
            }
        }
        drop(jobs);
        self.host_tx = None; // closes the service channel
        if let Some(h) = self.host_handle.take() {
            let _ = h.join();
        }
    }
}

/// Why the collect loop stopped.
enum Collected {
    /// Every slot answered or deadline elapsed: outcomes in batch order.
    Round(Vec<AnnotationOutcome>, AnnotationStats),
    /// Cancel (or channel shutdown) arrived mid-wait.
    Cancelled,
}

/// The job worker body. Control flow mirrors the synchronous driver,
/// with the annotation phase replaced by the outbox/inbox exchange.
#[allow(clippy::too_many_arguments)]
fn run_job(
    id: JobId,
    req: JobRequest,
    shared: Arc<JobShared>,
    inbox: Receiver<JobMsg>,
    own_tx: Sender<JobMsg>,
    host_tx: Sender<HostRequest>,
    serve_tel: Telemetry,
) {
    let JobRequest {
        name,
        cfg,
        model,
        mut train,
        val,
        test,
        mut selector,
        deadline_ms,
        resume_from,
    } = req;
    let annotation = cfg.annotation;
    let job_tel = cfg.telemetry.clone();
    #[cfg(feature = "fault-inject")]
    let faults = cfg.faults.clone();
    let pipeline = Pipeline::new(cfg);

    shared.event(EventKind::JobStart, None, String::new());
    let mut rl: RoundLoop<'_> = match &resume_from {
        None => pipeline.round_loop(&*model, &mut train, &val, &test, &mut *selector),
        Some(dir) => {
            match pipeline.resume_round_loop_latest(
                &*model,
                &mut train,
                &val,
                &test,
                &mut *selector,
                dir,
            ) {
                Ok(rl) => rl,
                Err(e) => {
                    let msg = format!("resume failed: {e}");
                    shared.event(EventKind::Error, None, msg.clone());
                    shared.inner.lock().unwrap().error = Some(msg);
                    // Count before the state flip: `wait` returns the
                    // moment the state is terminal.
                    serve_tel.add("serve.jobs_failed", 1);
                    shared.set_state(JobState::Failed);
                    return;
                }
            }
        }
    };

    let mut paused = false;
    let completed = loop {
        {
            let mut inner = shared.inner.lock().unwrap();
            inner.round = rl.round();
            inner.spent = rl.spent();
            inner.cleaned = rl.cleaned_total();
        }
        // Drain control verbs that arrived during the update phase, and
        // honor a pause at this round boundary.
        loop {
            match inbox.try_recv() {
                Ok(JobMsg::Pause) => paused = true,
                Ok(JobMsg::Resume) => paused = false,
                Ok(JobMsg::Cancel) => {
                    shared.event(EventKind::Cancelled, None, String::new());
                    serve_tel.add("serve.jobs_cancelled", 1);
                    shared.set_state(JobState::Cancelled);
                    return;
                }
                Ok(JobMsg::Delivery(d)) => count_stray(&serve_tel, &d),
                Err(_) => break,
            }
        }
        if paused {
            shared.event(EventKind::Paused, Some(rl.round()), String::new());
            shared.set_state(JobState::Paused);
            loop {
                match inbox.recv() {
                    Ok(JobMsg::Resume) => break,
                    Ok(JobMsg::Pause) => {}
                    Ok(JobMsg::Cancel) | Err(_) => {
                        shared.event(EventKind::Cancelled, None, String::new());
                        serve_tel.add("serve.jobs_cancelled", 1);
                        shared.set_state(JobState::Cancelled);
                        return;
                    }
                    Ok(JobMsg::Delivery(d)) => count_stray(&serve_tel, &d),
                }
            }
            paused = false;
            shared.event(EventKind::Resumed, Some(rl.round()), String::new());
            shared.set_state(JobState::Running);
        }

        let batch = match rl.next_batch() {
            RoundStep::Done => break true,
            RoundStep::Awaiting(batch) => batch,
        };
        shared.event(
            EventKind::RoundStart,
            Some(batch.round),
            format!("selected={}", batch.items.len()),
        );
        shared.event(
            EventKind::AwaitingAnnotation,
            Some(batch.round),
            format!("deadline_ms={deadline_ms}"),
        );
        shared.set_state(JobState::AwaitingAnnotation);
        serve_tel.add("serve.batches_emitted", 1);
        let request = AnnotationRequest {
            job: id,
            name: name.clone(),
            annotation,
            deadline_ms,
            batch: batch.clone(),
        };
        let _ = host_tx.send(HostRequest {
            req: request,
            reply_to: own_tx.clone(),
        });

        #[cfg(feature = "fault-inject")]
        if faults.kill_requested(batch.round) {
            // Simulated kill -9 at the await point: the batch is out,
            // no outcome of this round was applied, and whatever
            // checkpoint generation exists on disk is the recovery
            // point. The job object reports Failed; the host's replies
            // land in a dropped inbox.
            let msg = format!("killed mid-round {}", batch.round);
            shared.event(EventKind::Error, Some(batch.round), msg.clone());
            shared.inner.lock().unwrap().error = Some(msg);
            serve_tel.add("serve.jobs_killed", 1);
            shared.set_state(JobState::Failed);
            return;
        }

        let annotate_start = Instant::now();
        let collected = {
            let _span = job_tel.span("round.annotate");
            collect_round(&inbox, &batch, &serve_tel, &mut paused)
        };
        let (outcomes, stats) = match collected {
            Collected::Round(outcomes, stats) => (outcomes, stats),
            Collected::Cancelled => {
                shared.event(EventKind::Cancelled, Some(batch.round), String::new());
                serve_tel.add("serve.jobs_cancelled", 1);
                shared.set_state(JobState::Cancelled);
                return;
            }
        };
        shared.set_state(JobState::Running);
        let report = rl.provide(&outcomes, stats, annotate_start.elapsed());
        shared.event(
            EventKind::RoundComplete,
            Some(report.round),
            format!("cleaned={} ambiguous={}", report.cleaned, report.ambiguous),
        );
        serve_tel.add("serve.rounds_completed", 1);
        if rl.is_interrupted() {
            break false;
        }
    };

    let rounds = rl.round();
    let store_report = rl.finish();
    let cleaned_total = store_report.cleaned_total;
    let interrupted = store_report.interrupted;
    let report = store_report.into_report(train);
    {
        let mut inner = shared.inner.lock().unwrap();
        inner.round = rounds;
        inner.spent = report.rounds.iter().map(|r| r.selected.len()).sum();
        inner.cleaned = cleaned_total;
        inner.result = Some(JobResult {
            report,
            telemetry_json: job_tel.export_json("serve-job"),
        });
    }
    let _ = completed; // interrupted runs also complete with a (partial) report
    shared.event(
        EventKind::JobComplete,
        None,
        format!("rounds={rounds} cleaned_total={cleaned_total} interrupted={interrupted}"),
    );
    serve_tel.add("serve.jobs_completed", 1);
    shared.set_state(JobState::Completed);
}

/// A delivery that arrived outside any collect window (between rounds,
/// while paused): by construction stale — count it, drop it.
fn count_stray(serve_tel: &Telemetry, d: &HostDelivery) {
    if let HostDelivery::Reply(_) = d {
        serve_tel.add("serve.replies_late", 1);
    }
}

/// Park at the annotation boundary: fill slots from replies until the
/// batch is complete or its deadline marker lands. Control verbs are
/// honored (pause is deferred to the round boundary; cancel is
/// immediate).
fn collect_round(
    inbox: &Receiver<JobMsg>,
    batch: &chef_core::AnnotationBatch,
    serve_tel: &Telemetry,
    paused: &mut bool,
) -> Collected {
    let n = batch.items.len();
    let pos: HashMap<usize, usize> = batch
        .items
        .iter()
        .enumerate()
        .map(|(slot, item)| (item.index, slot))
        .collect();
    let mut slots: Vec<Option<SampleReply>> = vec![None; n];
    let mut filled = 0usize;
    while filled < n {
        let msg = match inbox.recv() {
            Ok(m) => m,
            Err(_) => return Collected::Cancelled,
        };
        match msg {
            JobMsg::Delivery(HostDelivery::Reply(r)) => {
                if r.round != batch.round {
                    serve_tel.add("serve.replies_late", 1);
                    continue;
                }
                let Some(&slot) = pos.get(&r.index) else {
                    serve_tel.add("serve.replies_late", 1);
                    continue;
                };
                if slots[slot].is_some() {
                    serve_tel.add("serve.replies_duplicate", 1);
                    continue;
                }
                slots[slot] = Some(r);
                filled += 1;
                serve_tel.add("serve.replies_received", 1);
            }
            JobMsg::Delivery(HostDelivery::Deadline { round, .. }) => {
                if round == batch.round {
                    serve_tel.add("serve.deadline_expirations", 1);
                    break;
                }
            }
            JobMsg::Pause => *paused = true,
            JobMsg::Resume => *paused = false,
            JobMsg::Cancel => return Collected::Cancelled,
        }
    }
    let mut stats = AnnotationStats {
        requested: n,
        ..AnnotationStats::default()
    };
    let outcomes = slots
        .iter()
        .map(|s| match s {
            Some(r) => {
                stats.record(&SampleDecision {
                    votes: r.votes,
                    conflict: r.conflict,
                    outcome: r.outcome,
                });
                r.outcome
            }
            None => {
                stats.record_dropped();
                AnnotationOutcome::Ambiguous
            }
        })
        .collect();
    Collected::Round(outcomes, stats)
}
