//! The multi-tenant job manager: a facade over the pooled cooperative
//! scheduler in [`crate::sched`] (DESIGN.md §17). N tenant jobs
//! multiplex onto M pool workers plus one annotator-service thread —
//! plain `std::thread` + `mpsc`, no async runtime in the offline shim
//! set.
//!
//! A job owns its dataset, model and selector, drives a
//! [`chef_core::RoundLoop`] and *parks* at the annotation boundary —
//! suspended, holding no thread — until the annotator service delivers
//! its replies. Replies fill the round's slots in arrival order and the
//! round completes when every slot is answered or the deadline marker
//! lands (missing slots abstain — the synchronous timeout path). Stale
//! replies (wrong round) and duplicates (slot already filled) are
//! counted and ignored idempotently, which is what makes delivery order
//! irrelevant to the result.
//!
//! Admission is bounded: beyond [`crate::SchedConfig::queue_bound`] live
//! jobs, [`JobManager::try_submit`] answers the recoverable
//! [`ServeError::Busy`] instead of accumulating unbounded state.
//!
//! Jobs are backed by the `checkpoint.v1` store via their
//! [`PipelineConfig::checkpoint`]: a killed job (process death, or the
//! injected `kill_mid_round` fault) is resubmitted with
//! [`JobRequest::resume_from`] and continues bit-identically.

use crate::annotator::{AnnotationRequest, AnnotatorHost, JobId};
use crate::events::{EventKind, JobEvent};
use crate::sched::{host_loop, worker_loop, Sched, SchedConfig, SchedStats};
use chef_core::{PipelineConfig, PipelineReport, SampleSelector, Telemetry};
use chef_model::{Dataset, Model};
use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Everything a job needs: a tenant's dataset, model, selector and
/// pipeline configuration, plus the serve-level knobs.
pub struct JobRequest {
    /// Submission name (stable across kill/resume; annotator hosts and
    /// fault scripts key on it).
    pub name: String,
    /// The pipeline configuration, including per-job telemetry handle
    /// and checkpoint directory.
    pub cfg: PipelineConfig,
    /// The model architecture.
    pub model: Box<dyn Model + Send>,
    /// Weakly-labeled training set (pristine when resuming — checkpoint
    /// label patches are replayed onto it).
    pub train: Dataset,
    /// Validation set (drives influence + early stopping).
    pub val: Dataset,
    /// Test set (reporting only).
    pub test: Dataset,
    /// Sample selector.
    pub selector: Box<dyn SampleSelector + Send>,
    /// Per-reply deadline in virtual milliseconds; replies landing later
    /// abstain.
    pub deadline_ms: u64,
    /// Resume from the newest readable checkpoint generation in this
    /// directory instead of starting fresh.
    pub resume_from: Option<PathBuf>,
}

/// Job lifecycle states (DESIGN.md §16.1, §17.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a pool worker (first slice not yet run).
    Queued,
    /// Between rounds: selecting, updating, evaluating.
    Running,
    /// Parked at the annotation boundary.
    AwaitingAnnotation,
    /// Paused at a round boundary; waiting for `resume`.
    Paused,
    /// Finished; report available.
    Completed,
    /// Terminated by `cancel`.
    Cancelled,
    /// Died: resume error, injected kill, host failure. `error` says why.
    Failed,
}

impl JobState {
    /// Wire name (status payloads).
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::AwaitingAnnotation => "awaiting_annotation",
            JobState::Paused => "paused",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job will never change state again.
    pub fn terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

/// A point-in-time snapshot of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Manager-assigned id.
    pub id: JobId,
    /// Submission name.
    pub name: String,
    /// Current state.
    pub state: JobState,
    /// Completed rounds (including restored ones after a resume).
    pub round: usize,
    /// Budget slots consumed.
    pub spent: usize,
    /// Samples cleaned.
    pub cleaned: usize,
    /// Failure detail, when `state == Failed`.
    pub error: Option<String>,
}

/// A completed job's outputs.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The full pipeline report (bit-identical to a synchronous
    /// `Pipeline::run` when every reply was on time).
    pub report: PipelineReport,
    /// The job's `telemetry.v1` export, when the telemetry feature is
    /// enabled and the job was given an enabled handle.
    pub telemetry_json: Option<String>,
}

/// Errors surfaced by manager calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No job with that id.
    UnknownJob(u64),
    /// The job failed; the detail is the job's error.
    JobFailed(String),
    /// The job was cancelled before producing a report.
    JobCancelled,
    /// Admission refused: the daemon already holds `queue_bound` live
    /// jobs. Recoverable — resubmit after one completes.
    Busy,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServeError::JobFailed(e) => write!(f, "job failed: {e}"),
            ServeError::JobCancelled => write!(f, "job was cancelled"),
            ServeError::Busy => write!(f, "daemon busy: admission queue full"),
        }
    }
}

impl std::error::Error for ServeError {}

pub(crate) struct JobInner {
    pub(crate) state: JobState,
    pub(crate) round: usize,
    pub(crate) spent: usize,
    pub(crate) cleaned: usize,
    pub(crate) error: Option<String>,
    pub(crate) result: Option<JobResult>,
}

pub(crate) struct JobShared {
    pub(crate) name: String,
    pub(crate) inner: Mutex<JobInner>,
    pub(crate) done: Condvar,
    pub(crate) events: Mutex<Vec<JobEvent>>,
}

impl JobShared {
    pub(crate) fn event(&self, kind: EventKind, round: Option<usize>, detail: String) {
        let mut ev = self.events.lock().unwrap();
        let seq = ev.len() as u64;
        ev.push(JobEvent {
            seq,
            kind,
            round,
            detail,
        });
    }

    pub(crate) fn set_state(&self, state: JobState) {
        let mut inner = self.inner.lock().unwrap();
        inner.state = state;
        // Every transition wakes waiters: `wait` only cares about
        // terminal states, but `wait_for` may be watching any of them.
        self.done.notify_all();
    }
}

/// The daemon core: admits jobs into the pooled scheduler, routes
/// annotator traffic, exposes status/results/events, and records
/// `serve.*` counters and `sched.*` gauges on its [`Telemetry`] handle.
pub struct JobManager {
    sched: Arc<Sched>,
    workers: Vec<JoinHandle<()>>,
    /// Kept only so `Drop` can close the host channel after the workers
    /// (who hold the other clones) have exited.
    host_tx: Option<Sender<AnnotationRequest>>,
    host_handle: Option<JoinHandle<()>>,
    telemetry: Telemetry,
}

impl JobManager {
    /// Start a manager whose jobs annotate through `host`, with the
    /// default pool configuration ([`SchedConfig::default`]).
    pub fn new(host: Box<dyn AnnotatorHost>) -> Self {
        Self::with_telemetry(host, Telemetry::enabled())
    }

    /// [`Self::new`] with a caller-provided telemetry handle for the
    /// `serve.*` counters and `sched.*` gauges.
    pub fn with_telemetry(host: Box<dyn AnnotatorHost>, telemetry: Telemetry) -> Self {
        Self::with_config(host, telemetry, SchedConfig::default())
    }

    /// Full-control constructor: pool size and admission bound.
    pub fn with_config(
        host: Box<dyn AnnotatorHost>,
        telemetry: Telemetry,
        cfg: SchedConfig,
    ) -> Self {
        let sched = Arc::new(Sched::new(cfg, telemetry.clone()));
        let (host_tx, host_rx) = channel::<AnnotationRequest>();
        let workers = (0..sched.config().workers)
            .map(|i| {
                let sched = Arc::clone(&sched);
                let host_tx = host_tx.clone();
                std::thread::Builder::new()
                    .name(format!("chef-serve-worker-{i}"))
                    .spawn(move || worker_loop(sched, host_tx))
                    .expect("spawn pool worker thread")
            })
            .collect();
        let host_sched = Arc::clone(&sched);
        let host_handle = std::thread::Builder::new()
            .name("chef-serve-annotators".into())
            .spawn(move || host_loop(host_sched, host, host_rx))
            .expect("spawn annotator service thread");
        Self {
            sched,
            workers,
            host_tx: Some(host_tx),
            host_handle: Some(host_handle),
            telemetry,
        }
    }

    /// The manager-wide telemetry handle (`serve.*` counters, `sched.*`
    /// gauges).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The pool configuration this manager runs with.
    pub fn config(&self) -> &SchedConfig {
        self.sched.config()
    }

    /// Snapshot the scheduler: queue depth, busy workers, parked jobs,
    /// the per-job slice ledger and the completion order.
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats()
    }

    /// Submit a job, panicking if admission is refused — the historical
    /// infallible signature, for callers that size their own workloads.
    /// Prefer [`Self::try_submit`] when the daemon is shared.
    pub fn submit(&self, req: JobRequest) -> JobId {
        self.try_submit(req)
            .expect("admission refused: daemon at queue_bound")
    }

    /// Submit a job. Answers [`ServeError::Busy`] (recoverable: resubmit
    /// later) when `queue_bound` live jobs are already admitted.
    pub fn try_submit(&self, req: JobRequest) -> Result<JobId, ServeError> {
        self.sched.try_submit(req)
    }

    /// Snapshot a job's status.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let shared = self.sched.shared(id)?;
        let inner = shared.inner.lock().unwrap();
        Some(JobStatus {
            id,
            name: shared.name.clone(),
            state: inner.state,
            round: inner.round,
            spent: inner.spent,
            cleaned: inner.cleaned,
            error: inner.error.clone(),
        })
    }

    /// The job's lifecycle-event log so far.
    pub fn events(&self, id: JobId) -> Option<Vec<JobEvent>> {
        let shared = self.sched.shared(id)?;
        let ev = shared.events.lock().unwrap();
        Some(ev.clone())
    }

    /// Ask a job to pause at its next round boundary.
    pub fn pause(&self, id: JobId) -> Result<(), ServeError> {
        self.sched.pause(id)
    }

    /// Wake a paused job.
    pub fn resume_job(&self, id: JobId) -> Result<(), ServeError> {
        self.sched.resume_job(id)
    }

    /// Terminate a job. A job the scheduler holds (queued, parked,
    /// paused) finalizes immediately; a job mid-slice finalizes at its
    /// next boundary.
    pub fn cancel(&self, id: JobId) -> Result<(), ServeError> {
        self.sched.cancel(id)
    }

    /// Block until the job's state satisfies `pred` (terminal states
    /// always also wake the wait, so a predicate that can no longer be
    /// met does not hang: check the returned state). Sleep-free — this
    /// is how tests observe transitions like `Paused`.
    pub fn wait_for(
        &self,
        id: JobId,
        pred: impl Fn(JobState) -> bool,
    ) -> Result<JobState, ServeError> {
        let shared = self.sched.shared(id).ok_or(ServeError::UnknownJob(id.0))?;
        let mut inner = shared.inner.lock().unwrap();
        while !pred(inner.state) && !inner.state.terminal() {
            inner = shared.done.wait(inner).unwrap();
        }
        Ok(inner.state)
    }

    /// Block until the job reaches a terminal state; return its result.
    pub fn wait(&self, id: JobId) -> Result<JobResult, ServeError> {
        let shared = self.sched.shared(id).ok_or(ServeError::UnknownJob(id.0))?;
        let mut inner = shared.inner.lock().unwrap();
        while !inner.state.terminal() {
            inner = shared.done.wait(inner).unwrap();
        }
        match inner.state {
            JobState::Completed => Ok(inner.result.clone().expect("completed job has a result")),
            JobState::Cancelled => Err(ServeError::JobCancelled),
            _ => Err(ServeError::JobFailed(
                inner.error.clone().unwrap_or_else(|| "unknown".into()),
            )),
        }
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        // Cancel everything and let the pool drain: workers exit once
        // shutdown is flagged and the run queue is empty. Joining them
        // drops their host-channel clones; dropping ours then closes the
        // channel and retires the annotator service.
        self.sched.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.host_tx = None;
        if let Some(h) = self.host_handle.take() {
            let _ = h.join();
        }
    }
}
