//! The framed line protocol `chef-serve.v1` (DESIGN.md §16.3).
//!
//! Grammar (one frame):
//!
//! ```text
//! frame   := header "\n" payload "\n"
//! header  := "chef-serve.v1" SP verb SP length
//! verb    := "submit" | "status" | "pause" | "resume" | "cancel"
//!          | "results" | "ok" | "error" | "event"
//! length  := decimal byte length of payload (≤ 1 MiB)
//! payload := length bytes of UTF-8 JSON (newlines allowed — the
//!            length prefix, not the line structure, delimits it)
//! ```
//!
//! The codec is deliberately independent of the job manager so the
//! property harness (`tests/serve_protocol_props.rs`) can hammer it in
//! isolation: round-trips are exact, malformed/oversized/truncated
//! input fails with a structured [`FrameError`] — never a panic — and
//! unknown verbs/versions are *consumed* (the declared length is still
//! honored where parseable) so one bad frame does not desynchronize a
//! connection.

use std::fmt;
use std::io::BufRead;

/// Protocol version token leading every frame.
pub const PROTOCOL_VERSION: &str = "chef-serve.v1";

/// Hard cap on payload size; larger declared lengths are rejected
/// before any payload is read.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 20;

/// Maximum header-line length we accept while hunting for the first
/// newline (version + verb + a 20-digit length + separators, rounded
/// way up).
const MAX_HEADER_BYTES: usize = 128;

/// Frame verbs: requests (`submit`…`results`) and responses
/// (`ok`/`error`/`event`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Submit a new cleaning job (payload: job spec).
    Submit,
    /// Query a job's state.
    Status,
    /// Pause a job at its next round boundary.
    Pause,
    /// Wake a paused job.
    Resume,
    /// Terminate a job.
    Cancel,
    /// Fetch a finished job's report (optionally waiting for it).
    Results,
    /// Success response.
    Ok,
    /// Error response (payload: structured error).
    Error,
    /// Lifecycle-event notification (payload: serve-events.v1 document).
    Event,
}

impl Verb {
    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verb::Submit => "submit",
            Verb::Status => "status",
            Verb::Pause => "pause",
            Verb::Resume => "resume",
            Verb::Cancel => "cancel",
            Verb::Results => "results",
            Verb::Ok => "ok",
            Verb::Error => "error",
            Verb::Event => "event",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "submit" => Verb::Submit,
            "status" => Verb::Status,
            "pause" => Verb::Pause,
            "resume" => Verb::Resume,
            "cancel" => Verb::Cancel,
            "results" => Verb::Results,
            "ok" => Verb::Ok,
            "error" => Verb::Error,
            "event" => Verb::Event,
            _ => return None,
        })
    }

    /// Every verb, for exhaustive property tests.
    pub const ALL: [Verb; 9] = [
        Verb::Submit,
        Verb::Status,
        Verb::Pause,
        Verb::Resume,
        Verb::Cancel,
        Verb::Results,
        Verb::Ok,
        Verb::Error,
        Verb::Event,
    ];
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The verb.
    pub verb: Verb,
    /// UTF-8 JSON payload (may contain newlines).
    pub payload: String,
}

impl Frame {
    /// Build a frame.
    pub fn new(verb: Verb, payload: impl Into<String>) -> Self {
        Self {
            verb,
            payload: payload.into(),
        }
    }

    /// Serialize to the wire form.
    pub fn encode(&self) -> String {
        format!(
            "{PROTOCOL_VERSION} {} {}\n{}\n",
            self.verb.as_str(),
            self.payload.len(),
            self.payload
        )
    }

    /// Decode one frame from the front of `input`, returning it and the
    /// unconsumed rest. See [`FrameError`] for the failure taxonomy;
    /// `Version`/`UnknownVerb` errors still consume the full frame when
    /// the declared length allows it, keeping the stream aligned.
    pub fn decode(input: &str) -> Result<(Frame, &str), FrameError> {
        let Some(nl) = input.find('\n') else {
            return if input.len() > MAX_HEADER_BYTES {
                Err(FrameError::Malformed(
                    "header exceeds maximum length without a newline".into(),
                ))
            } else {
                Err(FrameError::Truncated)
            };
        };
        if nl > MAX_HEADER_BYTES {
            return Err(FrameError::Malformed(
                "header exceeds maximum length".into(),
            ));
        }
        let header = &input[..nl];
        let rest = &input[nl + 1..];
        let mut parts = header.split(' ');
        let (Some(version), Some(verb_str), Some(len_str), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(FrameError::Malformed(format!(
                "header needs exactly 3 space-separated fields, got '{header}'"
            )));
        };
        let len: usize = len_str
            .parse()
            .map_err(|_| FrameError::Malformed(format!("unparseable length '{len_str}'")))?;
        if len > MAX_PAYLOAD_BYTES {
            return Err(FrameError::Oversized(len));
        }
        if rest.len() < len + 1 {
            return Err(FrameError::Truncated);
        }
        if !rest.is_char_boundary(len) {
            return Err(FrameError::Malformed(
                "declared length splits a UTF-8 sequence".into(),
            ));
        }
        let payload = &rest[..len];
        if rest.as_bytes()[len] != b'\n' {
            return Err(FrameError::Malformed(
                "payload not terminated by a newline at the declared length".into(),
            ));
        }
        let remainder = &rest[len + 1..];
        // Version/verb problems are reported only now, with the frame
        // fully consumed, so the caller can answer with a structured
        // error and keep reading the connection.
        if version != PROTOCOL_VERSION {
            return Err(FrameError::Version(version.to_string()));
        }
        let Some(verb) = Verb::parse(verb_str) else {
            return Err(FrameError::UnknownVerb(verb_str.to_string()));
        };
        Ok((
            Frame {
                verb,
                payload: payload.to_string(),
            },
            remainder,
        ))
    }

    /// Read one frame from a buffered reader. `Ok(None)` is clean EOF
    /// (stream ended before a header byte); EOF mid-frame is
    /// [`FrameError::Truncated`].
    pub fn read_from(r: &mut impl BufRead) -> Result<Option<Frame>, FrameError> {
        let mut header = String::new();
        let n = r
            .read_line(&mut header)
            .map_err(|e| FrameError::Malformed(format!("read error: {e}")))?;
        if n == 0 {
            return Ok(None);
        }
        let header = header.trim_end_matches('\n');
        if header.len() > MAX_HEADER_BYTES {
            return Err(FrameError::Malformed(
                "header exceeds maximum length".into(),
            ));
        }
        let mut parts = header.split(' ');
        let (Some(version), Some(verb_str), Some(len_str), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(FrameError::Malformed(format!(
                "header needs exactly 3 space-separated fields, got '{header}'"
            )));
        };
        let len: usize = len_str
            .parse()
            .map_err(|_| FrameError::Malformed(format!("unparseable length '{len_str}'")))?;
        if len > MAX_PAYLOAD_BYTES {
            return Err(FrameError::Oversized(len));
        }
        let mut payload = vec![0u8; len + 1];
        std::io::Read::read_exact(r, &mut payload).map_err(|_| FrameError::Truncated)?;
        if payload.pop() != Some(b'\n') {
            return Err(FrameError::Malformed(
                "payload not terminated by a newline at the declared length".into(),
            ));
        }
        let payload = String::from_utf8(payload)
            .map_err(|_| FrameError::Malformed("payload is not UTF-8".into()))?;
        if version != PROTOCOL_VERSION {
            return Err(FrameError::Version(version.to_string()));
        }
        let Some(verb) = Verb::parse(verb_str) else {
            return Err(FrameError::UnknownVerb(verb_str.to_string()));
        };
        Ok(Some(Frame { verb, payload }))
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Version token differs from [`PROTOCOL_VERSION`] (the found token
    /// is carried; the frame body was consumed where possible).
    Version(String),
    /// Well-formed frame with a verb this version does not know.
    UnknownVerb(String),
    /// Declared payload length exceeds [`MAX_PAYLOAD_BYTES`]; nothing
    /// past the header was read.
    Oversized(usize),
    /// Input ended before the frame did — retry with more bytes.
    Truncated,
    /// Structurally broken: bad header shape, unparseable length,
    /// missing terminator, non-UTF-8 payload. The connection cannot be
    /// trusted past this point.
    Malformed(String),
}

impl FrameError {
    /// Machine-readable error code (the `error` field of an error
    /// response payload).
    pub fn code(&self) -> &'static str {
        match self {
            FrameError::Version(_) => "unknown-version",
            FrameError::UnknownVerb(_) => "unknown-verb",
            FrameError::Oversized(_) => "oversized",
            FrameError::Truncated => "truncated",
            FrameError::Malformed(_) => "malformed",
        }
    }

    /// Whether the stream is still frame-aligned after this error (the
    /// offending frame was fully consumed), so serving can continue.
    pub fn recoverable(&self) -> bool {
        matches!(self, FrameError::Version(_) | FrameError::UnknownVerb(_))
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Version(found) => write!(
                f,
                "unsupported protocol version '{found}' (this daemon speaks '{PROTOCOL_VERSION}')"
            ),
            FrameError::UnknownVerb(v) => write!(f, "unknown verb '{v}'"),
            FrameError::Oversized(n) => write!(
                f,
                "declared payload length {n} exceeds the {MAX_PAYLOAD_BYTES}-byte cap"
            ),
            FrameError::Truncated => write!(f, "input ended mid-frame"),
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}
