//! The `chef-serve` daemon binary.
//!
//! ```text
//! chef-serve --stdin [--sim-seed N] [--workers M] [--queue-bound B]
//! chef-serve --socket PATH [...]             # serve a unix socket (unix only)
//! ```
//!
//! Annotation is backed by the deterministic [`SimAnnotator`] (there is
//! no real crowd behind this reproduction); `--sim-seed` scripts it.
//! `--workers` sizes the scheduler's pool (default 4) and
//! `--queue-bound` caps admitted live jobs — beyond it, submits answer
//! the recoverable `busy` error. The stdio mode is what ci.sh
//! smoke-tests: pipe `chef-serve.v1` frames in, read response frames
//! out, exit on EOF.

use chef_core::Telemetry;
use chef_serve::{serve_connection, JobManager, SchedConfig, SimAnnotator, SimAnnotatorConfig};

fn usage() -> ! {
    eprintln!(
        "usage: chef-serve (--stdin | --socket PATH) [--sim-seed N] [--workers M] [--queue-bound B]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode_stdin = false;
    let mut socket: Option<String> = None;
    let mut sim_seed = 1u64;
    let mut sched = SchedConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stdin" => mode_stdin = true,
            "--socket" => match it.next() {
                Some(p) => socket = Some(p.clone()),
                None => usage(),
            },
            "--sim-seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => sim_seed = s,
                None => usage(),
            },
            "--workers" => match it.next().and_then(|s| s.parse().ok()).filter(|&w| w >= 1) {
                Some(w) => sched.workers = w,
                None => usage(),
            },
            "--queue-bound" => match it.next().and_then(|s| s.parse().ok()).filter(|&b| b >= 1) {
                Some(b) => sched.queue_bound = b,
                None => usage(),
            },
            _ => usage(),
        }
    }
    let host = SimAnnotator::new(SimAnnotatorConfig {
        seed: sim_seed,
        ..SimAnnotatorConfig::default()
    });
    let mgr = JobManager::with_config(Box::new(host), Telemetry::enabled(), sched);
    if mode_stdin {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut reader = stdin.lock();
        let mut writer = stdout.lock();
        if let Err(e) = serve_connection(&mgr, &mut reader, &mut writer) {
            eprintln!("chef-serve: connection error: {e}");
            std::process::exit(1);
        }
        return;
    }
    #[cfg(unix)]
    if let Some(path) = socket {
        let _ = std::fs::remove_file(&path);
        let listener = match std::os::unix::net::UnixListener::bind(&path) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("chef-serve: cannot bind {path}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!("chef-serve: listening on {path}");
        let mgr = std::sync::Arc::new(mgr);
        if let Err(e) = chef_serve::server::serve_socket(&mgr, listener) {
            eprintln!("chef-serve: accept error: {e}");
            std::process::exit(1);
        }
        return;
    }
    #[cfg(not(unix))]
    if socket.is_some() {
        eprintln!("chef-serve: --socket requires unix");
        std::process::exit(2);
    }
    usage();
}
