//! # chef-serve
//!
//! A multi-tenant cleaning-job daemon over the CHEF pipeline
//! (DESIGN.md §16). The crate turns the per-dataset, blocking
//! [`Pipeline::run`](chef_core::Pipeline) into a service: many
//! concurrent cleaning jobs — one per tenant dataset — each parked at an
//! **asynchronous annotation boundary** where external annotators reply
//! out of order under per-reply deadlines, with late/missing replies
//! mapping onto the pipeline's existing abstain path.
//!
//! The moving parts:
//!
//! * [`JobManager`] ([`job`]) — the daemon facade: bounded admission
//!   with the recoverable `busy` error, pause/resume/cancel,
//!   checkpoint-backed kill/resume, `serve.*` counters;
//! * the pooled cooperative scheduler ([`sched`], DESIGN.md §17) —
//!   N tenant jobs multiplexed onto M pool workers; jobs suspend at the
//!   annotation boundary (no thread held while parked), round-robin
//!   slicing at round boundaries, `sched.*` gauges and counters;
//! * [`AnnotatorHost`] ([`annotator`]) — the boundary trait: a batch
//!   request in, a delivery sequence (replies + deadline marker) out;
//! * [`SimAnnotator`] ([`sim`]) — the deterministic simulation of that
//!   boundary: seeded virtual clocks, scripted latency/drops/duplicates,
//!   bit-identical replay from the seed;
//! * [`Frame`] ([`protocol`]) — the `chef-serve.v1` framed line
//!   protocol;
//! * [`serve_connection`] ([`server`]) — protocol dispatch over any
//!   `BufRead`/`Write` pair (stdin, unix socket, in-memory test pipes);
//! * [`export_events`] ([`events`]) — the versioned `serve-events.v1`
//!   lifecycle-event documents.
//!
//! The headline invariant, proven by `tests/serve_sim.rs` and
//! `tests/serve_fault.rs`: a job whose replies all arrive on time
//! produces a report **bit-identical** to the synchronous
//! `Pipeline::run`, however the replies were ordered — and a job killed
//! mid-round resumes from its `checkpoint.v1` directory into the same
//! bits.

#![warn(missing_docs)]

pub mod annotator;
pub mod events;
pub mod job;
pub mod protocol;
pub mod sched;
pub mod server;
pub mod sim;

pub use annotator::{AnnotationRequest, AnnotatorHost, HostDelivery, JobId, SampleReply};
pub use events::{export_events, parse_events, EventKind, JobEvent, EVENTS_SCHEMA_VERSION};
pub use job::{JobManager, JobRequest, JobResult, JobState, JobStatus, ServeError};
pub use protocol::{Frame, FrameError, Verb, MAX_PAYLOAD_BYTES, PROTOCOL_VERSION};
pub use sched::{SchedConfig, SchedStats};
pub use server::{dispatch, job_request_from_spec, serve_connection, DEFAULT_DEADLINE_MS};
pub use sim::{SimAnnotator, SimAnnotatorConfig, VirtualClock};
