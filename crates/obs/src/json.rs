//! A minimal hand-rolled JSON writer.
//!
//! The offline build has no serde, so every JSON document in the
//! workspace (telemetry exports, `BENCH_*.json`) is assembled through
//! this writer. It tracks nesting and comma placement; callers only
//! state structure (`begin_object`, `key`, values). Non-finite floats
//! serialize as `null` — JSON has no NaN/∞ and a telemetry consumer must
//! be able to parse every document we emit.

/// Streaming JSON writer with automatic comma/nesting bookkeeping.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One frame per open container: `(is_array, elements_written)`.
    stack: Vec<(bool, usize)>,
    /// A key was just written; the next value belongs to it.
    pending_key: bool,
}

impl JsonWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Comma/count bookkeeping before a value lands in the current
    /// container (keys handle their own commas).
    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some((_, count)) = self.stack.last_mut() {
            if *count > 0 {
                self.out.push(',');
            }
            *count += 1;
        }
    }

    /// Open an object (`{`) in value position.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push((false, 0));
    }

    /// Close the innermost object.
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Open an array (`[`) in value position.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push((true, 0));
    }

    /// Close the innermost array.
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Write an object key; the next value call supplies its value.
    pub fn key(&mut self, k: &str) {
        if let Some((_, count)) = self.stack.last_mut() {
            if *count > 0 {
                self.out.push(',');
            }
            *count += 1;
        }
        self.out.push('"');
        escape_into(k, &mut self.out);
        self.out.push_str("\":");
        self.pending_key = true;
    }

    /// Write a string value.
    pub fn string(&mut self, v: &str) {
        self.before_value();
        self.out.push('"');
        escape_into(v, &mut self.out);
        self.out.push('"');
    }

    /// Write an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.before_value();
        self.out.push_str(&v.to_string());
    }

    /// Write a float value (`null` when not finite).
    pub fn f64(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            self.out.push_str(&v.to_string());
        } else {
            self.out.push_str("null");
        }
    }

    /// Write a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Write a pre-serialized JSON value verbatim — e.g. a document from
    /// `Telemetry::export_json` embedded in a larger report. The caller
    /// guarantees `v` is itself valid JSON; the writer only handles the
    /// surrounding commas.
    pub fn raw(&mut self, v: &str) {
        self.before_value();
        self.out.push_str(v);
    }

    /// `key` + string value in one call.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    /// `key` + unsigned integer value in one call.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64(v);
    }

    /// `key` + float value in one call.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64(v);
    }

    /// `key` + boolean value in one call.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool(v);
    }

    /// Finish writing and return the document.
    ///
    /// # Panics
    /// Panics if a container is still open (a structural bug in the
    /// caller, not an input condition).
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "JsonWriter: unclosed container");
        self.out
    }
}

/// Escape `s` per RFC 8259 into `out`.
fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_round_trips_structure() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "telemetry.v1");
        w.field_u64("count", 3);
        w.key("inner");
        w.begin_object();
        w.field_f64("ms", 1.5);
        w.field_bool("ok", true);
        w.end_object();
        w.key("list");
        w.begin_array();
        w.u64(1);
        w.u64(2);
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"schema":"telemetry.v1","count":3,"inner":{"ms":1.5,"ok":true},"list":[1,2]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("k", "a\"b\\c\nd");
        w.end_object();
        assert_eq!(w.finish(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.f64(2.0);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,2]");
    }

    #[test]
    fn arrays_of_objects_get_commas() {
        let mut w = JsonWriter::new();
        w.begin_array();
        for i in 0..2 {
            w.begin_object();
            w.field_u64("i", i);
            w.end_object();
        }
        w.end_array();
        assert_eq!(w.finish(), r#"[{"i":0},{"i":1}]"#);
    }
}
