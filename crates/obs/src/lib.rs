//! # chef-obs
//!
//! Observability substrate for the CHEF pipeline: structured tracing
//! spans, a metrics registry (counters, gauges, fixed-bucket
//! histograms), and a JSON exporter for the versioned `telemetry.v1`
//! schema documented in DESIGN.md §10.
//!
//! CHEF's claim is *cost* — Increm-Infl prunes gradient work (Theorem 1)
//! and DeltaGrad-L replaces retraining with replay (Algorithm 2) — so
//! reproducing the paper's cost breakdowns (Tables 2, 5–9, Figure 2)
//! needs phase-level visibility, not two opaque durations. This crate
//! provides it in three layers:
//!
//! * [`schema`] — plain-data per-round breakdowns ([`RoundTelemetry`]
//!   and its phase sections), always compiled;
//! * [`json`] — the hand-rolled [`JsonWriter`] every exported document
//!   goes through (the offline build has no serde);
//! * [`Telemetry`] — the handle `chef-core` threads through
//!   `PipelineConfig`. With the `enabled` feature (default) it owns a
//!   shared registry fed by `tracing`-shim spans; without it the handle
//!   is a zero-sized no-op and instrumentation compiles out.

#![warn(missing_docs)]

pub mod json;
#[cfg(feature = "enabled")]
pub mod metrics;
pub mod parse;
pub mod schema;
mod telemetry;

pub use json::JsonWriter;
pub use parse::{expect_schema, parse_json, JsonValue, ParseError};
pub use schema::{
    available_cores, AnnotationTelemetry, ConstructorTelemetry, RoundTelemetry, SelectorTelemetry,
    SCHEMA_VERSION,
};
pub use telemetry::{SpanGuard, Telemetry, Timer};
