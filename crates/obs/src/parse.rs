//! A minimal hand-rolled JSON parser, the read side of [`crate::json`].
//!
//! The offline build has no serde, so every document the workspace needs
//! to read back — `telemetry.v1` exports and the `checkpoint.v1` files of
//! chef-core — goes through this parser. Two properties matter more than
//! generality:
//!
//! * **Byte-identical round-trips.** Numbers are kept as their raw
//!   source tokens (never re-formatted through `f64`), and objects
//!   preserve key order, so `parse_json(doc).to_json() == doc` for every
//!   document the [`crate::json::JsonWriter`] emits. That is the
//!   golden-file guarantee the schema tests pin.
//! * **Errors, not panics.** Malformed input and unknown schema versions
//!   surface as [`ParseError`] values with positions/messages, because a
//!   corrupt checkpoint must fall back to the previous generation rather
//!   than abort a resume.
//!
//! ```
//! use chef_obs::parse::{expect_schema, parse_json};
//!
//! let doc = r#"{"schema":"telemetry.v1","rounds":[1,2.5,-3e2]}"#;
//! let v = parse_json(doc).unwrap();
//! assert_eq!(v.to_json(), doc); // byte-identical round-trip
//! assert!(expect_schema(&v, "telemetry.v1").is_ok());
//! assert!(expect_schema(&v, "telemetry.v2").unwrap_err().to_string().contains("telemetry.v1"));
//! ```

use crate::json::JsonWriter;
use std::fmt;

/// A parsed JSON value.
///
/// Numbers keep their raw source token so re-serialization is
/// byte-identical and integer/float precision is never laundered through
/// an intermediate `f64`; use [`JsonValue::as_u64`] / [`JsonValue::as_f64`]
/// to interpret them.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw token (e.g. `"-3.25e2"`).
    Number(String),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved for round-tripping.
    Object(Vec<(String, JsonValue)>),
}

/// Parse failure (or schema-version rejection) with a human-readable
/// message; byte position is included where it applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
    pos: Option<usize>,
}

impl ParseError {
    fn at(pos: usize, msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            pos: Some(pos),
        }
    }

    /// An error with no specific byte position (schema-level problems).
    pub fn schema(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            pos: None,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "JSON parse error at byte {p}: {}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for ParseError {}

impl JsonValue {
    /// Serialize back to compact JSON. For documents produced by
    /// [`JsonWriter`] this is byte-identical to the original text.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write(&mut w);
        w.finish()
    }

    /// Write this value (in value position) into an open [`JsonWriter`].
    pub fn write(&self, w: &mut JsonWriter) {
        match self {
            JsonValue::Null => w.raw("null"),
            JsonValue::Bool(b) => w.bool(*b),
            JsonValue::Number(tok) => w.raw(tok),
            JsonValue::String(s) => w.string(s),
            JsonValue::Array(items) => {
                w.begin_array();
                for item in items {
                    item.write(w);
                }
                w.end_array();
            }
            JsonValue::Object(fields) => {
                w.begin_object();
                for (k, v) in fields {
                    w.key(k);
                    v.write(w);
                }
                w.end_object();
            }
        }
    }

    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an integral number token in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number as `usize` (via [`Self::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The number as `f64`. Rust's float formatter emits the shortest
    /// representation that round-trips, so a token written by
    /// [`JsonWriter::f64`] parses back to the bit-identical value.
    /// `null` maps to `None` (the writer's encoding of non-finite).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Check that `doc` is an object whose `"schema"` field equals
/// `expected`; unknown or missing versions are reported as a clear
/// [`ParseError`] naming both versions — never a panic.
pub fn expect_schema(doc: &JsonValue, expected: &str) -> Result<(), ParseError> {
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(v) if v == expected => Ok(()),
        Some(v) => Err(ParseError::schema(format!(
            "unsupported schema version {v:?} (this build reads {expected:?})"
        ))),
        None => Err(ParseError::schema(format!(
            "document carries no \"schema\" string field (expected {expected:?})"
        ))),
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(ParseError::at(p.pos, "trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::at(
                self.pos,
                format!("expected {:?}", b as char),
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(ParseError::at(self.pos, format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(ParseError::at(
                self.pos,
                format!("unexpected character {:?}", c as char),
            )),
            None => Err(ParseError::at(self.pos, "unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(ParseError::at(self.pos, "expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(ParseError::at(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(ParseError::at(self.pos, "malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(ParseError::at(self.pos, "digits required after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(ParseError::at(self.pos, "digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(JsonValue::Number(tok))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(ParseError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(ParseError::at(self.pos, "lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(ParseError::at(self.pos, "invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| ParseError::at(self.pos, "invalid code point"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| ParseError::at(self.pos, "invalid code point"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(ParseError::at(self.pos, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(ParseError::at(self.pos, "raw control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).expect("input is valid UTF-8");
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Four hex digits at the cursor, advancing past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(ParseError::at(self.pos, "truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| ParseError::at(self.pos, "non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| ParseError::at(self.pos, "invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            parse_json("-12.5e-3").unwrap(),
            JsonValue::Number("-12.5e-3".into())
        );
        assert_eq!(
            parse_json(r#""a\nb""#).unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn writer_documents_round_trip_byte_identically() {
        let docs = [
            r#"{"schema":"telemetry.v1","count":3,"inner":{"ms":1.5,"ok":true},"list":[1,2]}"#,
            r#"[null,null,2]"#,
            r#"{"k":"a\"b\\c\nd","x":-0.00000001,"y":1e300}"#,
            r#"{"empty":{},"none":[],"nested":[[1],[2,[3]]]}"#,
        ];
        for doc in docs {
            let v = parse_json(doc).unwrap();
            assert_eq!(v.to_json(), doc);
        }
    }

    #[test]
    fn f64_display_round_trips_exact_bits() {
        for x in [
            1.0 / 3.0,
            -0.1,
            1e-300,
            6.02214076e23,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let tok = x.to_string();
            let v = parse_json(&tok).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn object_accessors() {
        let v = parse_json(r#"{"a":1,"b":"x","c":[true],"d":2.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("d").unwrap().as_f64(), Some(2.5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "nulll",
            "[1] trailing",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn schema_check_rejects_unknown_versions_clearly() {
        let ok = parse_json(r#"{"schema":"telemetry.v1"}"#).unwrap();
        assert!(expect_schema(&ok, "telemetry.v1").is_ok());
        let newer = parse_json(r#"{"schema":"telemetry.v9"}"#).unwrap();
        let err = expect_schema(&newer, "telemetry.v1")
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("telemetry.v9") && err.contains("telemetry.v1"),
            "{err}"
        );
        let none = parse_json(r#"{"rounds":[]}"#).unwrap();
        assert!(expect_schema(&none, "telemetry.v1").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse_json(r#""\ud83e\udd14""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F914}"));
    }
}
