//! The [`Telemetry`] handle threaded through `PipelineConfig`.
//!
//! Two compilations of the same API:
//!
//! * **`enabled` feature on (default):** the handle optionally owns a
//!   shared [`crate::metrics::Registry`]; clones share it, so a caller
//!   keeps one clone and reads counters / exports JSON after the run.
//!   A handle created with [`Telemetry::disabled`] carries no registry
//!   and every operation is a cheap `None` check.
//! * **`enabled` feature off:** `Telemetry` is a zero-sized type and
//!   every method is an empty inline body — the instrumentation compiles
//!   out entirely, which is the no-telemetry configuration `ci.sh`
//!   builds with `--no-default-features`.
//!
//! # Examples
//!
//! ```
//! use chef_obs::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! tel.add("demo.widgets", 3);
//! {
//!     let _guard = tel.span("demo.phase"); // timed until dropped
//! }
//! if tel.is_enabled() {
//!     assert_eq!(tel.counter("demo.widgets"), 3);
//!     let json = tel.export_json("demo").unwrap();
//!     assert!(json.contains("\"schema\":\"telemetry.v1\""));
//!     assert!(json.contains("demo.phase"));
//! } else {
//!     // Feature `enabled` is off: same code, all no-ops.
//!     assert_eq!(tel.counter("demo.widgets"), 0);
//!     assert!(tel.export_json("demo").is_none());
//! }
//! ```

use crate::schema::RoundTelemetry;

#[cfg(feature = "enabled")]
pub use enabled::{SpanGuard, Telemetry, Timer};

#[cfg(feature = "enabled")]
mod enabled {
    use super::RoundTelemetry;
    use crate::json::JsonWriter;
    use crate::metrics::{Registry, MS_BUCKETS};
    use crate::schema::{available_cores, SCHEMA_VERSION};
    use std::sync::Arc;
    use std::time::Instant;

    /// A cloneable handle to one run's metrics. See the module docs.
    #[derive(Clone, Debug, Default)]
    pub struct Telemetry {
        inner: Option<Arc<Registry>>,
    }

    /// RAII guard returned by [`Telemetry::span`]; reports the span's
    /// wall-clock on drop.
    pub struct SpanGuard(#[allow(dead_code)] Option<tracing::EnteredSpan>);

    /// Records the elapsed time into a histogram when dropped.
    pub struct Timer {
        name: &'static str,
        start: Instant,
        registry: Arc<Registry>,
    }

    impl Drop for Timer {
        fn drop(&mut self) {
            self.registry
                .observe_ms(self.name, self.start.elapsed().as_secs_f64() * 1e3);
        }
    }

    impl Telemetry {
        /// A handle that records nothing (the `Default`).
        pub fn disabled() -> Self {
            Self { inner: None }
        }

        /// A handle with a fresh registry; clones share it.
        pub fn enabled() -> Self {
            Self {
                inner: Some(Arc::new(Registry::default())),
            }
        }

        /// Whether this handle records anything.
        pub fn is_enabled(&self) -> bool {
            self.inner.is_some()
        }

        /// Enter a named span; the returned guard reports enter/exit and
        /// wall-clock to the span statistics until dropped.
        pub fn span(&self, name: &'static str) -> SpanGuard {
            SpanGuard(self.inner.as_ref().map(|reg| {
                let collector: Arc<dyn tracing::Collect> = reg.clone();
                tracing::Span::with_collector(name, collector).entered()
            }))
        }

        /// Increment a counter by `n`.
        pub fn add(&self, name: &'static str, n: u64) {
            if let Some(reg) = &self.inner {
                reg.add(name, n);
            }
        }

        /// Set a gauge to `v` (last write wins).
        pub fn set_gauge(&self, name: &'static str, v: f64) {
            if let Some(reg) = &self.inner {
                reg.set_gauge(name, v);
            }
        }

        /// Record one observation into a fixed-bucket histogram.
        pub fn observe_ms(&self, name: &'static str, ms: f64) {
            if let Some(reg) = &self.inner {
                reg.observe_ms(name, ms);
            }
        }

        /// Start a histogram timer, or `None` on a disabled handle —
        /// callers skip even the clock read when nothing records.
        pub fn timer(&self, name: &'static str) -> Option<Timer> {
            self.inner.as_ref().map(|reg| Timer {
                name,
                start: Instant::now(),
                registry: reg.clone(),
            })
        }

        /// Append one round's structured breakdown to the export.
        pub fn record_round(&self, round: RoundTelemetry) {
            if let Some(reg) = &self.inner {
                reg.rounds.lock().unwrap().push(round);
            }
        }

        /// Current value of a counter (0 when absent or disabled).
        pub fn counter(&self, name: &str) -> u64 {
            self.inner
                .as_ref()
                .and_then(|reg| reg.counters.lock().unwrap().get(name).copied())
                .unwrap_or(0)
        }

        /// Current value of a gauge (`None` when never set or disabled).
        pub fn gauge(&self, name: &str) -> Option<f64> {
            self.inner
                .as_ref()
                .and_then(|reg| reg.gauges.lock().unwrap().get(name).copied())
        }

        /// Number of rounds recorded so far (0 when disabled).
        pub fn rounds_recorded(&self) -> usize {
            self.inner
                .as_ref()
                .map_or(0, |reg| reg.rounds.lock().unwrap().len())
        }

        /// Export everything recorded so far as a `telemetry.v1` JSON
        /// document, or `None` on a disabled handle.
        ///
        /// `kind` distinguishes document flavors sharing the envelope
        /// (`"pipeline_run"` from `Pipeline::run`, `"bench"` from the
        /// benchmark harness).
        pub fn export_json(&self, kind: &str) -> Option<String> {
            let reg = self.inner.as_ref()?;
            let mut w = JsonWriter::new();
            w.begin_object();
            w.field_str("schema", SCHEMA_VERSION);
            w.field_str("kind", kind);
            w.key("context");
            w.begin_object();
            w.field_u64("available_cores", available_cores() as u64);
            w.field_bool("telemetry_feature", true);
            w.end_object();

            w.key("counters");
            w.begin_object();
            for (name, v) in reg.counters.lock().unwrap().iter() {
                w.field_u64(name, *v);
            }
            w.end_object();

            w.key("gauges");
            w.begin_object();
            for (name, v) in reg.gauges.lock().unwrap().iter() {
                w.field_f64(name, *v);
            }
            w.end_object();

            w.key("histograms");
            w.begin_object();
            for (name, h) in reg.histograms.lock().unwrap().iter() {
                w.key(name);
                w.begin_object();
                w.key("buckets_ms");
                w.begin_array();
                for b in MS_BUCKETS {
                    w.f64(b);
                }
                w.end_array();
                w.key("counts");
                w.begin_array();
                for c in h.counts {
                    w.u64(c);
                }
                w.end_array();
                w.field_u64("count", h.count);
                w.field_f64("sum_ms", h.sum_ms);
                w.end_object();
            }
            w.end_object();

            w.key("spans");
            w.begin_object();
            for (name, s) in reg.spans.lock().unwrap().iter() {
                w.key(name);
                w.begin_object();
                w.field_u64("count", s.count);
                w.field_f64("total_ms", s.total_ns as f64 / 1e6);
                w.field_f64("min_ms", s.min_ns as f64 / 1e6);
                w.field_f64("max_ms", s.max_ns as f64 / 1e6);
                w.end_object();
            }
            w.end_object();

            w.key("rounds");
            w.begin_array();
            for round in reg.rounds.lock().unwrap().iter() {
                round.write_json(&mut w);
            }
            w.end_array();
            w.end_object();
            Some(w.finish())
        }
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{SpanGuard, Telemetry, Timer};

#[cfg(not(feature = "enabled"))]
mod noop {
    use super::RoundTelemetry;

    /// Zero-sized no-op telemetry handle (`enabled` feature off). Every
    /// method matches the enabled signature and compiles to nothing.
    /// Deliberately not `Copy`: the enabled counterpart can't be, and the
    /// two must present the same trait surface to callers.
    #[derive(Clone, Debug, Default)]
    pub struct Telemetry;

    /// Inert span guard.
    pub struct SpanGuard;

    /// Inert timer; [`Telemetry::timer`] never returns one.
    pub struct Timer {
        _private: (),
    }

    impl Telemetry {
        /// A handle that records nothing.
        pub fn disabled() -> Self {
            Self
        }

        /// With the `enabled` feature off this still records nothing;
        /// build with the feature (the default) to actually collect.
        pub fn enabled() -> Self {
            Self
        }

        /// Always `false` in this configuration.
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// No-op span guard.
        pub fn span(&self, _name: &'static str) -> SpanGuard {
            SpanGuard
        }

        /// No-op.
        pub fn add(&self, _name: &'static str, _n: u64) {}

        /// No-op.
        pub fn set_gauge(&self, _name: &'static str, _v: f64) {}

        /// No-op.
        pub fn observe_ms(&self, _name: &'static str, _ms: f64) {}

        /// Always `None`; the clock is never read.
        pub fn timer(&self, _name: &'static str) -> Option<Timer> {
            None
        }

        /// No-op.
        pub fn record_round(&self, _round: RoundTelemetry) {}

        /// Always 0.
        pub fn counter(&self, _name: &str) -> u64 {
            0
        }

        /// Always `None`.
        pub fn gauge(&self, _name: &str) -> Option<f64> {
            None
        }

        /// Always 0.
        pub fn rounds_recorded(&self) -> usize {
            0
        }

        /// Always `None`.
        pub fn export_json(&self, _kind: &str) -> Option<String> {
            None
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::schema::SelectorTelemetry;

    #[test]
    fn counters_accumulate_across_clones() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        tel.add("x", 2);
        clone.add("x", 3);
        assert_eq!(tel.counter("x"), 5);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        tel.add("x", 2);
        tel.observe_ms("h", 1.0);
        assert!(tel.timer("h").is_none());
        assert_eq!(tel.counter("x"), 0);
        assert!(tel.export_json("pipeline_run").is_none());
    }

    #[test]
    fn export_contains_envelope_and_rounds() {
        let tel = Telemetry::enabled();
        tel.add("selector.scored", 7);
        tel.set_gauge("val_f1", 0.5);
        tel.observe_ms("train.batch_ms", 0.3);
        drop(tel.span("round.select"));
        tel.record_round(RoundTelemetry {
            round: 0,
            selector: SelectorTelemetry {
                selector: "Infl".into(),
                ..SelectorTelemetry::default()
            },
            ..RoundTelemetry::default()
        });
        let json = tel.export_json("pipeline_run").unwrap();
        for needle in [
            "\"schema\":\"telemetry.v1\"",
            "\"kind\":\"pipeline_run\"",
            "\"available_cores\":",
            "\"selector.scored\":7",
            "\"val_f1\":0.5",
            "\"train.batch_ms\":{",
            "\"round.select\":{",
            "\"rounds\":[{\"round\":0",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }

    #[test]
    fn timer_feeds_histogram() {
        let tel = Telemetry::enabled();
        drop(tel.timer("t"));
        let json = tel.export_json("bench").unwrap();
        assert!(json.contains("\"t\":{\"buckets_ms\""));
    }
}
