//! The `telemetry.v1` schema: plain-data per-round breakdowns.
//!
//! These types are **always compiled** — with the `enabled` feature off
//! only the recording machinery (registry, spans, export) disappears.
//! The pipeline therefore always carries a structured per-round
//! breakdown in its `RoundReport`, because every field below is derived
//! from counts the phases compute anyway; only wall-clock histograms and
//! span statistics cost anything to collect.
//!
//! Field-by-field units and the paper tables each field validates are
//! documented in DESIGN.md §10.

use crate::json::JsonWriter;
use crate::parse::{JsonValue, ParseError};

/// Version tag carried by every exported telemetry document.
pub const SCHEMA_VERSION: &str = "telemetry.v1";

/// Sample-selector phase counters (paper §4.1, Exp2 / Table 2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectorTelemetry {
    /// Selector name as reported by `SampleSelector::name`.
    pub selector: String,
    /// Uncleaned samples eligible this round (`|pool|`).
    pub pool: usize,
    /// Samples eliminated by the Theorem-1 bound pass before exact
    /// scoring (0 for Full Infl and for baselines).
    pub pruned: usize,
    /// Samples whose exact Eq. 6 influence was evaluated.
    pub scored: usize,
    /// Gradient evaluations of the exact-scoring pass
    /// (`scored × (C + 1)` for Infl; 0 when the selector doesn't report).
    pub grad_evals: usize,
    /// Hessian-vector products spent on the CG solve for `H⁻¹∇F_val`.
    pub hvp_evals: usize,
    /// Fraction of the pool the Theorem-1 bound pruned
    /// (`pruned / pool`; the paper's Exp2 "evaluated" column inverted).
    pub bound_hit_rate: f64,
    /// Which scoring kernel served the round: `"gemm"` for the batched
    /// structure-aware closed form, `"per_sample"` for the generic
    /// fallback, empty when the selector doesn't report one.
    pub kernel_path: String,
    /// Which precision/ILP backend the GEMM panels ran on
    /// (`"reference"`, `"unrolled_f64"` or `"mixed_f32"`; empty when
    /// `kernel_path` is not `"gemm"`).
    ///
    /// Additive `telemetry.v1` field: omitted from the serialized object
    /// when empty so documents (and `checkpoint.v1` files, which embed
    /// round telemetry) written before the field existed still
    /// round-trip byte-identically.
    pub kernel_backend: String,
    /// Wall-clock of the selector phase in milliseconds (Time_inf).
    pub select_ms: f64,
}

/// Annotation phase counters (paper §4.3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnnotationTelemetry {
    /// Selections handed to the annotators this round.
    pub requested: usize,
    /// Individual votes cast (humans + algorithmic suggestions).
    pub votes: usize,
    /// Samples whose vote set was not unanimous.
    pub conflicts: usize,
    /// Samples left probabilistic: vote ties, empty panels, or missing
    /// ground truth (Appendix F.1's "ambiguous" rule).
    pub abstains: usize,
    /// Samples that received a deterministic label and weight 1.
    pub cleaned: usize,
    /// Wall-clock of the annotation phase in milliseconds.
    pub annotate_ms: f64,
}

/// Model-constructor phase counters (paper §4.2, Exp3 / Figure 2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstructorTelemetry {
    /// `"retrain"` or `"deltagrad-l"`.
    pub kind: String,
    /// SGD iterations computed with an exact minibatch gradient
    /// (all of them for Retrain; the `j₀`-burn-in/`T₀`-periodic ones for
    /// DeltaGrad-L, Algorithm 2 line 4).
    pub exact_steps: usize,
    /// Iterations replayed with the L-BFGS Hessian approximation
    /// (DeltaGrad-L only, Algorithm 2 line 7).
    pub replay_steps: usize,
    /// Exact gradients on the changed set `A_t = B_t ∩ R⁽ᵏ⁾` spent on
    /// replay corrections (DeltaGrad-L only).
    pub correction_grads: usize,
    /// L-BFGS history size `m₀` (0 for Retrain).
    pub lbfgs_history: usize,
    /// SGD epoch budget of this construction.
    pub epochs: usize,
    /// Which minibatch-gradient kernel the construction ran on
    /// (`"gemm"` for the batched closed form, `"per_sample"` for the
    /// generic fallback, empty when the constructor doesn't report one).
    ///
    /// Additive `telemetry.v1` field: omitted from the serialized object
    /// when empty so documents (and `checkpoint.v1` files, which embed
    /// round telemetry) written before the field existed still
    /// round-trip byte-identically.
    pub kernel_path: String,
    /// Which precision/ILP backend the training GEMM panels ran on
    /// (`"reference"`, `"unrolled_f64"` or `"mixed_f32"`; empty when
    /// `kernel_path` is not `"gemm"`). Additive and omitted when empty,
    /// like `kernel_path`.
    pub kernel_backend: String,
    /// Wall-clock of the constructor phase in milliseconds.
    pub update_ms: f64,
}

/// One cleaning round's structured breakdown, in phase order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundTelemetry {
    /// Round number (0-based).
    pub round: usize,
    /// Selector phase.
    pub selector: SelectorTelemetry,
    /// Annotation phase.
    pub annotation: AnnotationTelemetry,
    /// Constructor phase.
    pub constructor: ConstructorTelemetry,
}

/// Pull a named `usize` field out of a telemetry object.
fn req_usize(v: &JsonValue, section: &str, key: &str) -> Result<usize, ParseError> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| ParseError::schema(format!("{section}: missing/non-integer \"{key}\"")))
}

/// Pull a named `f64` field out of a telemetry object (`null` → NaN,
/// mirroring the writer's encoding of non-finite values).
fn req_f64(v: &JsonValue, section: &str, key: &str) -> Result<f64, ParseError> {
    match v.get(key) {
        Some(JsonValue::Null) => Ok(f64::NAN),
        Some(n) => n
            .as_f64()
            .ok_or_else(|| ParseError::schema(format!("{section}: non-numeric \"{key}\""))),
        None => Err(ParseError::schema(format!("{section}: missing \"{key}\""))),
    }
}

/// Pull a named string field out of a telemetry object.
fn req_str(v: &JsonValue, section: &str, key: &str) -> Result<String, ParseError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| ParseError::schema(format!("{section}: missing/non-string \"{key}\"")))
}

/// Pull an **additive-optional** string field: absent (a pre-field
/// document) parses as empty, which the writers in turn omit — the pair
/// of rules that keeps old documents round-tripping byte-identically.
fn opt_str(v: &JsonValue, section: &str, key: &str) -> Result<String, ParseError> {
    match v.get(key) {
        Some(k) => k
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| ParseError::schema(format!("{section}: non-string \"{key}\""))),
        None => Ok(String::new()),
    }
}

impl SelectorTelemetry {
    /// Serialize as a JSON object in value position.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("selector", &self.selector);
        w.field_u64("pool", self.pool as u64);
        w.field_u64("pruned", self.pruned as u64);
        w.field_u64("scored", self.scored as u64);
        w.field_u64("grad_evals", self.grad_evals as u64);
        w.field_u64("hvp_evals", self.hvp_evals as u64);
        w.field_f64("bound_hit_rate", self.bound_hit_rate);
        w.field_str("kernel_path", &self.kernel_path);
        if !self.kernel_backend.is_empty() {
            w.field_str("kernel_backend", &self.kernel_backend);
        }
        w.field_f64("select_ms", self.select_ms);
        w.end_object();
    }

    /// Reconstruct from a parsed `telemetry.v1` selector object.
    pub fn from_json(v: &JsonValue) -> Result<Self, ParseError> {
        Ok(Self {
            selector: req_str(v, "selector", "selector")?,
            pool: req_usize(v, "selector", "pool")?,
            pruned: req_usize(v, "selector", "pruned")?,
            scored: req_usize(v, "selector", "scored")?,
            grad_evals: req_usize(v, "selector", "grad_evals")?,
            hvp_evals: req_usize(v, "selector", "hvp_evals")?,
            bound_hit_rate: req_f64(v, "selector", "bound_hit_rate")?,
            kernel_path: req_str(v, "selector", "kernel_path")?,
            // Optional (additive): absent in pre-PR-6 documents.
            kernel_backend: opt_str(v, "selector", "kernel_backend")?,
            select_ms: req_f64(v, "selector", "select_ms")?,
        })
    }
}

impl AnnotationTelemetry {
    /// Serialize as a JSON object in value position.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("requested", self.requested as u64);
        w.field_u64("votes", self.votes as u64);
        w.field_u64("conflicts", self.conflicts as u64);
        w.field_u64("abstains", self.abstains as u64);
        w.field_u64("cleaned", self.cleaned as u64);
        w.field_f64("annotate_ms", self.annotate_ms);
        w.end_object();
    }

    /// Reconstruct from a parsed `telemetry.v1` annotation object.
    pub fn from_json(v: &JsonValue) -> Result<Self, ParseError> {
        Ok(Self {
            requested: req_usize(v, "annotation", "requested")?,
            votes: req_usize(v, "annotation", "votes")?,
            conflicts: req_usize(v, "annotation", "conflicts")?,
            abstains: req_usize(v, "annotation", "abstains")?,
            cleaned: req_usize(v, "annotation", "cleaned")?,
            annotate_ms: req_f64(v, "annotation", "annotate_ms")?,
        })
    }
}

impl ConstructorTelemetry {
    /// Serialize as a JSON object in value position.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("kind", &self.kind);
        w.field_u64("exact_steps", self.exact_steps as u64);
        w.field_u64("replay_steps", self.replay_steps as u64);
        w.field_u64("correction_grads", self.correction_grads as u64);
        w.field_u64("lbfgs_history", self.lbfgs_history as u64);
        w.field_u64("epochs", self.epochs as u64);
        if !self.kernel_path.is_empty() {
            w.field_str("kernel_path", &self.kernel_path);
        }
        if !self.kernel_backend.is_empty() {
            w.field_str("kernel_backend", &self.kernel_backend);
        }
        w.field_f64("update_ms", self.update_ms);
        w.end_object();
    }

    /// Reconstruct from a parsed `telemetry.v1` constructor object.
    pub fn from_json(v: &JsonValue) -> Result<Self, ParseError> {
        Ok(Self {
            kind: req_str(v, "constructor", "kind")?,
            exact_steps: req_usize(v, "constructor", "exact_steps")?,
            replay_steps: req_usize(v, "constructor", "replay_steps")?,
            correction_grads: req_usize(v, "constructor", "correction_grads")?,
            lbfgs_history: req_usize(v, "constructor", "lbfgs_history")?,
            epochs: req_usize(v, "constructor", "epochs")?,
            // Optional (additive): absent in pre-PR-5 documents.
            kernel_path: opt_str(v, "constructor", "kernel_path")?,
            // Optional (additive): absent in pre-PR-6 documents.
            kernel_backend: opt_str(v, "constructor", "kernel_backend")?,
            update_ms: req_f64(v, "constructor", "update_ms")?,
        })
    }
}

impl RoundTelemetry {
    /// Serialize as a JSON object in value position.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("round", self.round as u64);
        w.key("selector");
        self.selector.write_json(w);
        w.key("annotation");
        self.annotation.write_json(w);
        w.key("constructor");
        self.constructor.write_json(w);
        w.end_object();
    }

    /// Reconstruct from a parsed `telemetry.v1` round object.
    pub fn from_json(v: &JsonValue) -> Result<Self, ParseError> {
        let section = |key: &str| {
            v.get(key)
                .ok_or_else(|| ParseError::schema(format!("round: missing \"{key}\" section")))
        };
        Ok(Self {
            round: req_usize(v, "round", "round")?,
            selector: SelectorTelemetry::from_json(section("selector")?)?,
            annotation: AnnotationTelemetry::from_json(section("annotation")?)?,
            constructor: ConstructorTelemetry::from_json(section("constructor")?)?,
        })
    }
}

/// `std::thread::available_parallelism`, defaulting to 1 — recorded in
/// every exported document so a ~1.0× parallel speedup on 1-core
/// hardware is self-explaining.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_telemetry_serializes_all_sections() {
        let r = RoundTelemetry {
            round: 2,
            selector: SelectorTelemetry {
                selector: "Infl+Increm".into(),
                pool: 100,
                pruned: 90,
                scored: 10,
                grad_evals: 30,
                hvp_evals: 12,
                bound_hit_rate: 0.9,
                kernel_path: "gemm".into(),
                kernel_backend: "reference".into(),
                select_ms: 1.25,
            },
            ..RoundTelemetry::default()
        };
        let mut w = JsonWriter::new();
        r.write_json(&mut w);
        let json = w.finish();
        for needle in [
            "\"round\":2",
            "\"pruned\":90",
            "\"scored\":10",
            "\"grad_evals\":30",
            "\"bound_hit_rate\":0.9",
            "\"annotation\":{",
            "\"constructor\":{",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }

    #[test]
    fn round_telemetry_round_trips_through_parser() {
        let r = RoundTelemetry {
            round: 7,
            selector: SelectorTelemetry {
                selector: "Infl".into(),
                pool: 250,
                pruned: 0,
                scored: 250,
                grad_evals: 750,
                hvp_evals: 40,
                bound_hit_rate: 0.0,
                kernel_path: "per_sample".into(),
                kernel_backend: String::new(),
                select_ms: 3.5,
            },
            annotation: AnnotationTelemetry {
                requested: 20,
                votes: 60,
                conflicts: 4,
                abstains: 2,
                cleaned: 18,
                annotate_ms: 0.25,
            },
            constructor: ConstructorTelemetry {
                kind: "deltagrad-l".into(),
                exact_steps: 12,
                replay_steps: 88,
                correction_grads: 30,
                lbfgs_history: 2,
                epochs: 10,
                kernel_path: "gemm".into(),
                kernel_backend: "unrolled_f64".into(),
                update_ms: 9.75,
            },
        };
        let mut w = JsonWriter::new();
        r.write_json(&mut w);
        let json = w.finish();
        let parsed = crate::parse::parse_json(&json).unwrap();
        let restored = RoundTelemetry::from_json(&parsed).unwrap();
        assert_eq!(restored, r);
        // Re-serializing the restored value is byte-identical.
        let mut w2 = JsonWriter::new();
        restored.write_json(&mut w2);
        assert_eq!(w2.finish(), json);
    }

    #[test]
    fn constructor_kernel_path_is_additive_and_optional() {
        // A pre-PR-5 constructor object (no kernel_path) still parses,
        // defaults to empty, and re-serializes byte-identically — the
        // guarantee that keeps old telemetry.v1 documents and the
        // checkpoint.v1 golden file valid.
        let old = r#"{"kind":"retrain","exact_steps":5,"replay_steps":0,"correction_grads":0,"lbfgs_history":0,"epochs":3,"update_ms":1.5}"#;
        let parsed = crate::parse::parse_json(old).unwrap();
        let ct = ConstructorTelemetry::from_json(&parsed).unwrap();
        assert_eq!(ct.kernel_path, "");
        let mut w = JsonWriter::new();
        ct.write_json(&mut w);
        assert_eq!(w.finish(), old);

        // A populated field survives its own round trip.
        let with = ConstructorTelemetry {
            kernel_path: "gemm".into(),
            ..ct
        };
        let mut w = JsonWriter::new();
        with.write_json(&mut w);
        let json = w.finish();
        assert!(json.contains("\"kernel_path\":\"gemm\""));
        let reparsed =
            ConstructorTelemetry::from_json(&crate::parse::parse_json(&json).unwrap()).unwrap();
        assert_eq!(reparsed, with);
    }

    #[test]
    fn kernel_backend_is_additive_and_optional_in_both_sections() {
        // Pre-PR-6 documents carry kernel_path but no kernel_backend:
        // they must parse (empty backend) and re-serialize byte-
        // identically, in both the selector and constructor sections.
        let old_sel = r#"{"selector":"Infl","pool":10,"pruned":0,"scored":10,"grad_evals":30,"hvp_evals":4,"bound_hit_rate":0,"kernel_path":"gemm","select_ms":1.5}"#;
        let st = SelectorTelemetry::from_json(&crate::parse::parse_json(old_sel).unwrap()).unwrap();
        assert_eq!(st.kernel_backend, "");
        let mut w = JsonWriter::new();
        st.write_json(&mut w);
        assert_eq!(w.finish(), old_sel);

        let with = SelectorTelemetry {
            kernel_backend: "mixed_f32".into(),
            ..st
        };
        let mut w = JsonWriter::new();
        with.write_json(&mut w);
        let json = w.finish();
        assert!(json.contains("\"kernel_backend\":\"mixed_f32\""));
        let reparsed =
            SelectorTelemetry::from_json(&crate::parse::parse_json(&json).unwrap()).unwrap();
        assert_eq!(reparsed, with);

        let old_ctor = r#"{"kind":"retrain","exact_steps":5,"replay_steps":0,"correction_grads":0,"lbfgs_history":0,"epochs":3,"kernel_path":"gemm","update_ms":1.5}"#;
        let ct =
            ConstructorTelemetry::from_json(&crate::parse::parse_json(old_ctor).unwrap()).unwrap();
        assert_eq!(ct.kernel_backend, "");
        let mut w = JsonWriter::new();
        ct.write_json(&mut w);
        assert_eq!(w.finish(), old_ctor);
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let v = crate::parse::parse_json(r#"{"round":1,"selector":{}}"#).unwrap();
        let err = RoundTelemetry::from_json(&v).unwrap_err().to_string();
        assert!(err.contains("selector"), "{err}");
    }
}
