//! The `telemetry.v1` schema: plain-data per-round breakdowns.
//!
//! These types are **always compiled** — with the `enabled` feature off
//! only the recording machinery (registry, spans, export) disappears.
//! The pipeline therefore always carries a structured per-round
//! breakdown in its `RoundReport`, because every field below is derived
//! from counts the phases compute anyway; only wall-clock histograms and
//! span statistics cost anything to collect.
//!
//! Field-by-field units and the paper tables each field validates are
//! documented in DESIGN.md §10.

use crate::json::JsonWriter;

/// Version tag carried by every exported telemetry document.
pub const SCHEMA_VERSION: &str = "telemetry.v1";

/// Sample-selector phase counters (paper §4.1, Exp2 / Table 2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectorTelemetry {
    /// Selector name as reported by `SampleSelector::name`.
    pub selector: String,
    /// Uncleaned samples eligible this round (`|pool|`).
    pub pool: usize,
    /// Samples eliminated by the Theorem-1 bound pass before exact
    /// scoring (0 for Full Infl and for baselines).
    pub pruned: usize,
    /// Samples whose exact Eq. 6 influence was evaluated.
    pub scored: usize,
    /// Gradient evaluations of the exact-scoring pass
    /// (`scored × (C + 1)` for Infl; 0 when the selector doesn't report).
    pub grad_evals: usize,
    /// Hessian-vector products spent on the CG solve for `H⁻¹∇F_val`.
    pub hvp_evals: usize,
    /// Fraction of the pool the Theorem-1 bound pruned
    /// (`pruned / pool`; the paper's Exp2 "evaluated" column inverted).
    pub bound_hit_rate: f64,
    /// Which scoring kernel served the round: `"gemm"` for the batched
    /// structure-aware closed form, `"per_sample"` for the generic
    /// fallback, empty when the selector doesn't report one.
    pub kernel_path: String,
    /// Wall-clock of the selector phase in milliseconds (Time_inf).
    pub select_ms: f64,
}

/// Annotation phase counters (paper §4.3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnnotationTelemetry {
    /// Selections handed to the annotators this round.
    pub requested: usize,
    /// Individual votes cast (humans + algorithmic suggestions).
    pub votes: usize,
    /// Samples whose vote set was not unanimous.
    pub conflicts: usize,
    /// Samples left probabilistic: vote ties, empty panels, or missing
    /// ground truth (Appendix F.1's "ambiguous" rule).
    pub abstains: usize,
    /// Samples that received a deterministic label and weight 1.
    pub cleaned: usize,
    /// Wall-clock of the annotation phase in milliseconds.
    pub annotate_ms: f64,
}

/// Model-constructor phase counters (paper §4.2, Exp3 / Figure 2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstructorTelemetry {
    /// `"retrain"` or `"deltagrad-l"`.
    pub kind: String,
    /// SGD iterations computed with an exact minibatch gradient
    /// (all of them for Retrain; the `j₀`-burn-in/`T₀`-periodic ones for
    /// DeltaGrad-L, Algorithm 2 line 4).
    pub exact_steps: usize,
    /// Iterations replayed with the L-BFGS Hessian approximation
    /// (DeltaGrad-L only, Algorithm 2 line 7).
    pub replay_steps: usize,
    /// Exact gradients on the changed set `A_t = B_t ∩ R⁽ᵏ⁾` spent on
    /// replay corrections (DeltaGrad-L only).
    pub correction_grads: usize,
    /// L-BFGS history size `m₀` (0 for Retrain).
    pub lbfgs_history: usize,
    /// SGD epoch budget of this construction.
    pub epochs: usize,
    /// Wall-clock of the constructor phase in milliseconds.
    pub update_ms: f64,
}

/// One cleaning round's structured breakdown, in phase order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundTelemetry {
    /// Round number (0-based).
    pub round: usize,
    /// Selector phase.
    pub selector: SelectorTelemetry,
    /// Annotation phase.
    pub annotation: AnnotationTelemetry,
    /// Constructor phase.
    pub constructor: ConstructorTelemetry,
}

impl SelectorTelemetry {
    /// Serialize as a JSON object in value position.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("selector", &self.selector);
        w.field_u64("pool", self.pool as u64);
        w.field_u64("pruned", self.pruned as u64);
        w.field_u64("scored", self.scored as u64);
        w.field_u64("grad_evals", self.grad_evals as u64);
        w.field_u64("hvp_evals", self.hvp_evals as u64);
        w.field_f64("bound_hit_rate", self.bound_hit_rate);
        w.field_str("kernel_path", &self.kernel_path);
        w.field_f64("select_ms", self.select_ms);
        w.end_object();
    }
}

impl AnnotationTelemetry {
    /// Serialize as a JSON object in value position.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("requested", self.requested as u64);
        w.field_u64("votes", self.votes as u64);
        w.field_u64("conflicts", self.conflicts as u64);
        w.field_u64("abstains", self.abstains as u64);
        w.field_u64("cleaned", self.cleaned as u64);
        w.field_f64("annotate_ms", self.annotate_ms);
        w.end_object();
    }
}

impl ConstructorTelemetry {
    /// Serialize as a JSON object in value position.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("kind", &self.kind);
        w.field_u64("exact_steps", self.exact_steps as u64);
        w.field_u64("replay_steps", self.replay_steps as u64);
        w.field_u64("correction_grads", self.correction_grads as u64);
        w.field_u64("lbfgs_history", self.lbfgs_history as u64);
        w.field_u64("epochs", self.epochs as u64);
        w.field_f64("update_ms", self.update_ms);
        w.end_object();
    }
}

impl RoundTelemetry {
    /// Serialize as a JSON object in value position.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("round", self.round as u64);
        w.key("selector");
        self.selector.write_json(w);
        w.key("annotation");
        self.annotation.write_json(w);
        w.key("constructor");
        self.constructor.write_json(w);
        w.end_object();
    }
}

/// `std::thread::available_parallelism`, defaulting to 1 — recorded in
/// every exported document so a ~1.0× parallel speedup on 1-core
/// hardware is self-explaining.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_telemetry_serializes_all_sections() {
        let r = RoundTelemetry {
            round: 2,
            selector: SelectorTelemetry {
                selector: "Infl+Increm".into(),
                pool: 100,
                pruned: 90,
                scored: 10,
                grad_evals: 30,
                hvp_evals: 12,
                bound_hit_rate: 0.9,
                kernel_path: "gemm".into(),
                select_ms: 1.25,
            },
            ..RoundTelemetry::default()
        };
        let mut w = JsonWriter::new();
        r.write_json(&mut w);
        let json = w.finish();
        for needle in [
            "\"round\":2",
            "\"pruned\":90",
            "\"scored\":10",
            "\"grad_evals\":30",
            "\"bound_hit_rate\":0.9",
            "\"annotation\":{",
            "\"constructor\":{",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
    }
}
