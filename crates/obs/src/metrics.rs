//! The metrics registry behind an enabled [`crate::Telemetry`] handle:
//! counters, gauges, fixed-bucket histograms, span statistics, and the
//! recorded per-round breakdowns.
//!
//! Everything is keyed by `&'static str` metric names in `BTreeMap`s, so
//! iteration — and therefore the exported JSON — is deterministic.
//! Mutexes (not atomics) keep the implementation simple; instrumented
//! code touches the registry a handful of times per *phase*, never per
//! sample, so contention is irrelevant next to the <2% overhead budget
//! of DESIGN.md §10.

use crate::schema::RoundTelemetry;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Histogram bucket upper bounds in milliseconds (last bucket is +∞).
///
/// Fixed boundaries keep exported histograms comparable across runs and
/// hosts — the point of a versioned schema.
pub const MS_BUCKETS: [f64; 12] = [
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
];

/// A fixed-bucket latency histogram over [`MS_BUCKETS`].
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `counts[i]` = observations ≤ `MS_BUCKETS[i]`; the final slot
    /// counts overflows.
    pub counts: [u64; MS_BUCKETS.len() + 1],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values in milliseconds.
    pub sum_ms: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; MS_BUCKETS.len() + 1],
            count: 0,
            sum_ms: 0.0,
        }
    }
}

impl Histogram {
    /// Record one observation in milliseconds.
    pub fn observe(&mut self, ms: f64) {
        let slot = MS_BUCKETS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(MS_BUCKETS.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum_ms += ms;
    }
}

/// Aggregated enter/exit statistics of one span name.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanStats {
    /// Number of completed span instances.
    pub count: u64,
    /// Accumulated wall-clock nanoseconds.
    pub total_ns: u64,
    /// Shortest instance in nanoseconds.
    pub min_ns: u64,
    /// Longest instance in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    fn record(&mut self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }
}

/// The backing store shared by all clones of one enabled `Telemetry`
/// handle.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) counters: Mutex<BTreeMap<&'static str, u64>>,
    pub(crate) gauges: Mutex<BTreeMap<&'static str, f64>>,
    pub(crate) histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    pub(crate) spans: Mutex<BTreeMap<&'static str, SpanStats>>,
    pub(crate) rounds: Mutex<Vec<RoundTelemetry>>,
}

impl Registry {
    pub(crate) fn add(&self, name: &'static str, n: u64) {
        *self.counters.lock().unwrap().entry(name).or_insert(0) += n;
    }

    pub(crate) fn set_gauge(&self, name: &'static str, v: f64) {
        self.gauges.lock().unwrap().insert(name, v);
    }

    pub(crate) fn observe_ms(&self, name: &'static str, ms: f64) {
        self.histograms
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .observe(ms);
    }
}

impl tracing::Collect for Registry {
    fn enter(&self, _span: &'static str) {}

    fn exit(&self, span: &'static str, elapsed: Duration) {
        self.spans
            .lock()
            .unwrap()
            .entry(span)
            .or_default()
            .record(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracing::Collect;

    #[test]
    fn histogram_buckets_are_cumulative_by_slot() {
        let mut h = Histogram::default();
        h.observe(0.1); // ≤ 0.25 → slot 0
        h.observe(3.0); // ≤ 5.0 → slot 4
        h.observe(5000.0); // beyond the last bound → overflow slot
        assert_eq!(h.count, 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[4], 1);
        assert_eq!(h.counts[MS_BUCKETS.len()], 1);
        assert!((h.sum_ms - 5003.1).abs() < 1e-9);
    }

    #[test]
    fn span_stats_track_min_max() {
        let reg = Registry::default();
        reg.exit("s", Duration::from_millis(2));
        reg.exit("s", Duration::from_millis(8));
        let spans = reg.spans.lock().unwrap();
        let s = spans.get("s").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.min_ns, 2_000_000);
        assert_eq!(s.max_ns, 8_000_000);
        assert_eq!(s.total_ns, 10_000_000);
    }
}
