//! Deterministic fault injection for the cleaning loop (the
//! `fault-inject` feature).
//!
//! A [`FaultPlan`] describes *when* the pipeline misbehaves — crash after
//! a given round, mangle the checkpoint file it just wrote, time out the
//! annotators for whole rounds — and the pipeline driver consults it at
//! fixed points, so a faulty run is exactly reproducible. The
//! replay-equivalence harness (`tests/checkpoint_resume.rs`) relies on
//! this: it kills a run at round `k`, resumes from the surviving
//! checkpoint generation, and asserts the result is bit-identical to an
//! uninterrupted run under the *same* plan.
//!
//! Everything here is compiled only with `--features fault-inject`;
//! production builds carry no injection code paths.

use std::path::Path;

/// Where and how the run misbehaves. Round indices are 0-based and refer
/// to the round that has *just completed* when the fault fires.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Simulated `kill -9` after this round completes (and after its
    /// checkpoint, if due, is written): the driver returns early with
    /// [`crate::PipelineReport::interrupted`] set.
    pub crash_after_round: Option<usize>,
    /// Truncate the checkpoint written after this round mid-file — a torn
    /// write that the checksum header must catch at resume.
    pub torn_write_after_round: Option<usize>,
    /// Flip one byte deep in the checkpoint written after this round — a
    /// silent corruption that the checksum must catch at resume.
    pub bitflip_after_round: Option<usize>,
    /// Rounds in which every annotator times out: the whole batch
    /// abstains (labels stay probabilistic) but still consumes budget.
    pub annotator_timeout_rounds: Vec<usize>,
    /// Simulated `kill -9` *mid-round*: a `chef-serve` job thread dies at
    /// the awaiting-annotation point of this round — after the batch went
    /// out, before any outcome was applied. Unlike
    /// [`Self::crash_after_round`], nothing of this round reaches the
    /// checkpoint, so a resume re-runs the selection (and, selection
    /// being deterministic at the restored parameters, re-emits the very
    /// same batch). The synchronous driver ignores this field.
    pub kill_mid_round: Option<usize>,
}

impl FaultPlan {
    /// A plan that only crashes after `round`.
    pub fn crash_after(round: usize) -> Self {
        Self {
            crash_after_round: Some(round),
            ..Self::default()
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Whether every annotator times out in `round`.
    pub fn annotators_time_out(&self, round: usize) -> bool {
        self.annotator_timeout_rounds.contains(&round)
    }

    /// Whether a serve job thread should die mid-`round` (see
    /// [`Self::kill_mid_round`]).
    pub fn kill_requested(&self, round: usize) -> bool {
        self.kill_mid_round == Some(round)
    }

    /// Corrupt the checkpoint generation written after `round` according
    /// to the plan. Mutates the renamed file in place — modeling media
    /// corruption *after* the atomic rename, which is exactly the case
    /// the checksum-plus-generation-fallback design must survive.
    pub fn mangle_after_write(&self, round: usize, path: &Path) {
        if self.torn_write_after_round == Some(round) {
            if let Ok(bytes) = std::fs::read(path) {
                let keep = bytes.len() / 2;
                let _ = std::fs::write(path, &bytes[..keep]);
            }
        }
        if self.bitflip_after_round == Some(round) {
            if let Ok(mut bytes) = std::fs::read(path) {
                if !bytes.is_empty() {
                    let pos = bytes.len() * 3 / 4;
                    bytes[pos] ^= 0x10;
                    let _ = std::fs::write(path, bytes);
                }
            }
        }
    }
}
