//! The human-annotation phase (paper §4.3).
//!
//! Selected samples are labeled by a panel of simulated annotators; the
//! selector's suggested label may join the panel as one more independent
//! labeler. Conflicts are resolved by majority vote; ties keep the
//! probabilistic label (the Fact/Twitter "ambiguous" rule of Appendix
//! F.1) but still consume the sample's slot in the cleaning budget.
//!
//! The three Infl strategies of §5.1:
//!
//! | strategy       | panel            | suggestion used? |
//! |----------------|------------------|------------------|
//! | Infl (one)     | 3 human voters   | no               |
//! | Infl (two)     | none             | yes (alone)      |
//! | Infl (three)   | 2 human voters   | yes              |

use crate::round::AnnotationBatch;
use crate::selector::Selection;
use chef_model::DatasetStore;
use chef_weak::{majority_vote, AnnotatorPanel, VoteOutcome};

/// How cleaned labels are produced from panel votes and suggestions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelStrategy {
    /// Majority vote over `n` human annotators (Infl (one) with n = 3).
    HumansOnly(usize),
    /// Use the selector's suggested label directly (Infl (two)).
    SuggestionOnly,
    /// Suggested label + `n` human annotators, majority vote
    /// (Infl (three) with n = 2).
    SuggestionPlusHumans(usize),
}

impl LabelStrategy {
    /// Paper name of the strategy.
    pub fn paper_name(&self) -> &'static str {
        match self {
            LabelStrategy::HumansOnly(_) => "Infl (one)",
            LabelStrategy::SuggestionOnly => "Infl (two)",
            LabelStrategy::SuggestionPlusHumans(_) => "Infl (three)",
        }
    }
}

/// Annotation-phase configuration.
#[derive(Debug, Clone, Copy)]
pub struct AnnotationConfig {
    /// Vote-aggregation strategy.
    pub strategy: LabelStrategy,
    /// Per-annotator error rate (the paper flips 5% of ground truth).
    pub error_rate: f64,
    /// Seed for the annotator panel.
    pub seed: u64,
}

impl Default for AnnotationConfig {
    fn default() -> Self {
        Self {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.05,
            seed: 42,
        }
    }
}

/// Outcome of annotating one selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationOutcome {
    /// The sample's label was replaced and up-weighted.
    Cleaned(usize),
    /// Votes tied (or no ground truth available): label kept
    /// probabilistic, budget slot consumed.
    Ambiguous,
}

/// Vote-level counters for one annotation round, consumed by the
/// pipeline's telemetry layer (the `annotation` object of telemetry.v1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnotationStats {
    /// Samples handed to the phase this round (`cleaned + abstains`).
    pub requested: usize,
    /// Total individual votes cast (humans plus suggestions).
    pub votes: usize,
    /// Samples whose ballot was non-unanimous — the panel disagreed even
    /// if a strict majority still emerged.
    pub conflicts: usize,
    /// Samples left probabilistic: vote ties, empty ballots, or missing
    /// ground truth (each still consumes a budget slot, Appendix F.1).
    pub abstains: usize,
    /// Samples whose label was replaced and up-weighted.
    pub cleaned: usize,
}

impl AnnotationStats {
    /// Fold one sample's decision into the counters (`requested` is the
    /// caller's: it counts handed-out slots, not received decisions —
    /// the two differ when an async annotator drops replies).
    pub fn record(&mut self, d: &SampleDecision) {
        self.votes += d.votes;
        if d.conflict {
            self.conflicts += 1;
        }
        match d.outcome {
            AnnotationOutcome::Cleaned(_) => self.cleaned += 1,
            AnnotationOutcome::Ambiguous => self.abstains += 1,
        }
    }

    /// Fold a dropped (never answered) slot into the counters: the
    /// sample abstains with zero votes, exactly like the synchronous
    /// whole-batch-timeout path.
    pub fn record_dropped(&mut self) {
        self.abstains += 1;
    }
}

/// The resolution of one sample's ballot, decoupled from the store
/// mutation so an out-of-process annotator host can compute it remotely
/// and ship it back as a reply ([`AnnotationPhase::decide_one`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleDecision {
    /// Individual votes cast (humans plus suggestion).
    pub votes: usize,
    /// Whether the ballot was non-unanimous.
    pub conflict: bool,
    /// The outcome the pipeline applies.
    pub outcome: AnnotationOutcome,
}

/// Stateful annotation phase (panel is reused across rounds so each
/// annotator stays self-consistent).
#[derive(Debug, Clone)]
pub struct AnnotationPhase {
    cfg: AnnotationConfig,
    panel: AnnotatorPanel,
}

impl AnnotationPhase {
    /// Build the phase: the panel size follows the strategy.
    pub fn new(cfg: AnnotationConfig) -> Self {
        let humans = match cfg.strategy {
            LabelStrategy::HumansOnly(n) => n,
            LabelStrategy::SuggestionOnly => 0,
            LabelStrategy::SuggestionPlusHumans(n) => n,
        };
        Self {
            cfg,
            panel: AnnotatorPanel::uniform(humans, cfg.error_rate, cfg.seed),
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> LabelStrategy {
        self.cfg.strategy
    }

    /// Annotate `selections` in place on `data`.
    ///
    /// Returns one [`AnnotationOutcome`] per selection, in order. Cleaned
    /// samples get a deterministic label and weight 1 (`clean_label`).
    pub fn annotate(
        &self,
        data: &mut dyn DatasetStore,
        selections: &[Selection],
    ) -> Vec<AnnotationOutcome> {
        self.annotate_with_stats(data, selections).0
    }

    /// [`Self::annotate`] plus the round's vote-level telemetry counters.
    pub fn annotate_with_stats(
        &self,
        data: &mut dyn DatasetStore,
        selections: &[Selection],
    ) -> (Vec<AnnotationOutcome>, AnnotationStats) {
        let c = data.num_classes();
        let mut stats = AnnotationStats {
            requested: selections.len(),
            ..AnnotationStats::default()
        };
        let outcomes = selections
            .iter()
            .map(|sel| {
                let d = self.decide_one(sel.index, data.ground_truth(sel.index), c, sel.suggested);
                stats.record(&d);
                if let AnnotationOutcome::Cleaned(class) = d.outcome {
                    data.clean_label(sel.index, chef_model::SoftLabel::onehot(class, c));
                }
                d.outcome
            })
            .collect();
        (outcomes, stats)
    }

    /// Resolve one sample's ballot *without* touching any store — the
    /// pure core of [`Self::annotate_with_stats`], and the exact function
    /// a simulated annotator host evaluates remotely. Votes are
    /// deterministic per `(panel seed, sample index)` (each annotator
    /// seeds a fresh RNG per call), so the decision is independent of
    /// call order and of whatever other samples were annotated before —
    /// the property that makes out-of-order async annotation
    /// bit-identical to the synchronous phase.
    pub fn decide_one(
        &self,
        index: usize,
        truth: Option<usize>,
        num_classes: usize,
        suggested: Option<usize>,
    ) -> SampleDecision {
        let suggestion = match self.cfg.strategy {
            LabelStrategy::HumansOnly(_) => None,
            _ => suggested,
        };
        // Ground truth only feeds the *human* simulators; a
        // suggestion-only ballot must not abstain just because truth is
        // unknown (pinned by `suggestion_only_cleans_without_ground_
        // truth` below).
        let votes: Vec<usize> = if self.panel.is_empty() {
            suggestion.into_iter().collect()
        } else {
            let Some(truth) = truth else {
                return SampleDecision {
                    votes: 0,
                    conflict: false,
                    outcome: AnnotationOutcome::Ambiguous,
                };
            };
            self.panel.votes(index, truth, num_classes, suggestion)
        };
        if votes.is_empty() {
            return SampleDecision {
                votes: 0,
                conflict: false,
                outcome: AnnotationOutcome::Ambiguous,
            };
        }
        let conflict = votes.iter().any(|&v| v != votes[0]);
        let outcome = match majority_vote(&votes, num_classes) {
            VoteOutcome::Majority(class) => AnnotationOutcome::Cleaned(class),
            VoteOutcome::Tie => AnnotationOutcome::Ambiguous,
        };
        SampleDecision {
            votes: votes.len(),
            conflict,
            outcome,
        }
    }

    /// Decide a whole [`AnnotationBatch`] (store-free), aggregating the
    /// round's stats. Answering a [`crate::RoundLoop`] batch with this is
    /// bit-identical to the synchronous [`Self::annotate_with_stats`]
    /// path — `Pipeline::run` is implemented exactly that way.
    pub fn decide_batch(
        &self,
        batch: &AnnotationBatch,
    ) -> (Vec<AnnotationOutcome>, AnnotationStats) {
        let mut stats = AnnotationStats {
            requested: batch.items.len(),
            ..AnnotationStats::default()
        };
        let outcomes = batch
            .items
            .iter()
            .map(|it| {
                let d = self.decide_one(it.index, it.truth, batch.num_classes, it.suggested);
                stats.record(&d);
                d.outcome
            })
            .collect();
        (outcomes, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_linalg::Matrix;
    use chef_model::Dataset;
    use chef_model::SoftLabel;

    fn data(n: usize) -> Dataset {
        Dataset::new(
            Matrix::from_vec(n, 1, (0..n).map(|i| i as f64).collect()),
            (0..n).map(|_| SoftLabel::new(vec![0.5, 0.5])).collect(),
            vec![false; n],
            (0..n).map(|i| Some(i % 2)).collect(),
            2,
        )
    }

    fn sels(idx: &[usize], suggested: Option<usize>) -> Vec<Selection> {
        idx.iter()
            .map(|&index| Selection { index, suggested })
            .collect()
    }

    #[test]
    fn suggestion_only_installs_suggested_label() {
        let mut d = data(4);
        let phase = AnnotationPhase::new(AnnotationConfig {
            strategy: LabelStrategy::SuggestionOnly,
            ..AnnotationConfig::default()
        });
        let out = phase.annotate(&mut d, &sels(&[2], Some(0)));
        assert_eq!(out, vec![AnnotationOutcome::Cleaned(0)]);
        assert!(d.is_clean(2));
        assert_eq!(d.label(2), &SoftLabel::onehot(0, 2));
    }

    #[test]
    fn suggestion_only_without_suggestion_is_ambiguous() {
        let mut d = data(4);
        let phase = AnnotationPhase::new(AnnotationConfig {
            strategy: LabelStrategy::SuggestionOnly,
            ..AnnotationConfig::default()
        });
        let out = phase.annotate(&mut d, &sels(&[1], None));
        assert_eq!(out, vec![AnnotationOutcome::Ambiguous]);
        assert!(!d.is_clean(1));
    }

    #[test]
    fn perfect_humans_recover_truth() {
        let mut d = data(6);
        let phase = AnnotationPhase::new(AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.0,
            seed: 1,
        });
        let out = phase.annotate(&mut d, &sels(&[0, 1, 2], None));
        assert_eq!(
            out,
            vec![
                AnnotationOutcome::Cleaned(0),
                AnnotationOutcome::Cleaned(1),
                AnnotationOutcome::Cleaned(0)
            ]
        );
    }

    #[test]
    fn humans_only_ignores_suggestion() {
        let mut d = data(4);
        let phase = AnnotationPhase::new(AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: 0.0,
            seed: 2,
        });
        // Suggestion says class 1, but truth of sample 0 is class 0 and
        // the 3 perfect annotators outvote... actually never see it.
        let out = phase.annotate(&mut d, &sels(&[0], Some(1)));
        assert_eq!(out, vec![AnnotationOutcome::Cleaned(0)]);
    }

    #[test]
    fn suggestion_plus_humans_uses_all_votes() {
        let mut d = data(4);
        // 2 perfect humans + wrong suggestion → humans win 2-1.
        let phase = AnnotationPhase::new(AnnotationConfig {
            strategy: LabelStrategy::SuggestionPlusHumans(2),
            error_rate: 0.0,
            seed: 3,
        });
        let out = phase.annotate(&mut d, &sels(&[0], Some(1)));
        assert_eq!(out, vec![AnnotationOutcome::Cleaned(0)]);
    }

    #[test]
    fn missing_truth_is_ambiguous() {
        let mut d = data(2);
        d.push(&[9.0], SoftLabel::uniform(2), false, None);
        let phase = AnnotationPhase::new(AnnotationConfig::default());
        let out = phase.annotate(&mut d, &sels(&[2], Some(1)));
        assert_eq!(out, vec![AnnotationOutcome::Ambiguous]);
    }

    #[test]
    fn suggestion_only_cleans_without_ground_truth() {
        // Infl (two) needs no ground truth: the suggestion is the whole
        // ballot. This pins the resolution order — the truth gate applies
        // to human simulators only.
        let mut d = data(2);
        d.push(&[9.0], SoftLabel::uniform(2), false, None);
        let phase = AnnotationPhase::new(AnnotationConfig {
            strategy: LabelStrategy::SuggestionOnly,
            ..AnnotationConfig::default()
        });
        let (out, stats) = phase.annotate_with_stats(&mut d, &sels(&[2], Some(1)));
        assert_eq!(out, vec![AnnotationOutcome::Cleaned(1)]);
        assert!(d.is_clean(2));
        assert_eq!(d.label(2), &SoftLabel::onehot(1, 2));
        assert_eq!(stats.votes, 1);
        assert_eq!(stats.cleaned, 1);
        assert_eq!(stats.abstains, 0);
    }

    #[test]
    fn even_panel_tie_keeps_probabilistic_label() {
        // Even ballot (1 perfect human + 1 wrong suggestion): no strict
        // majority, so the label stays probabilistic but the budget slot
        // is consumed (Appendix F.1's ambiguous rule).
        let mut d = data(4);
        let phase = AnnotationPhase::new(AnnotationConfig {
            strategy: LabelStrategy::SuggestionPlusHumans(1),
            error_rate: 0.0,
            seed: 4,
        });
        // Truth of sample 0 is class 0; suggestion votes class 1 → 1–1.
        let (out, stats) = phase.annotate_with_stats(&mut d, &sels(&[0], Some(1)));
        assert_eq!(out, vec![AnnotationOutcome::Ambiguous]);
        assert!(!d.is_clean(0));
        assert_eq!(d.label(0), &SoftLabel::new(vec![0.5, 0.5]));
        assert_eq!(stats.votes, 2);
        assert_eq!(stats.conflicts, 1);
        assert_eq!(stats.abstains, 1);
        assert_eq!(stats.cleaned, 0);
    }

    #[test]
    fn all_abstain_round_mutates_nothing() {
        // A whole round without ground truth (human panel, nothing to
        // simulate): every slot abstains, the dataset is untouched.
        let mut d = Dataset::new(
            Matrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]),
            (0..3).map(|_| SoftLabel::uniform(2)).collect(),
            vec![false; 3],
            vec![None; 3],
            2,
        );
        let phase = AnnotationPhase::new(AnnotationConfig::default());
        let (out, stats) = phase.annotate_with_stats(&mut d, &sels(&[0, 1, 2], None));
        assert_eq!(out, vec![AnnotationOutcome::Ambiguous; 3]);
        assert_eq!(stats.requested, 3);
        assert_eq!(stats.abstains, 3);
        assert_eq!(stats.votes, 0);
        assert_eq!(stats.cleaned, 0);
        assert!((0..3).all(|i| !d.is_clean(i)));
    }

    #[test]
    fn suggestion_conflicting_with_humans_is_outvoted_and_counted() {
        // Infl (three): a wrong suggestion joins 2 perfect humans. The
        // humans win 2–1; the non-unanimous ballot counts as a conflict.
        let mut d = data(4);
        let phase = AnnotationPhase::new(AnnotationConfig {
            strategy: LabelStrategy::SuggestionPlusHumans(2),
            error_rate: 0.0,
            seed: 5,
        });
        let (out, stats) = phase.annotate_with_stats(&mut d, &sels(&[0], Some(1)));
        assert_eq!(out, vec![AnnotationOutcome::Cleaned(0)]);
        assert_eq!(stats.votes, 3);
        assert_eq!(stats.conflicts, 1);
        assert_eq!(stats.cleaned, 1);
    }

    #[test]
    fn paper_names() {
        assert_eq!(LabelStrategy::HumansOnly(3).paper_name(), "Infl (one)");
        assert_eq!(LabelStrategy::SuggestionOnly.paper_name(), "Infl (two)");
        assert_eq!(
            LabelStrategy::SuggestionPlusHumans(2).paper_name(),
            "Infl (three)"
        );
    }
}
