//! The redesigned iterative cleaning pipeline (paper Figure 1, loop 2).
//!
//! Instead of spending the whole budget `B` in one shot, the pipeline
//! cleans `b ≪ B` samples per round: select with Infl (or a baseline),
//! annotate, refresh the model (Retrain or DeltaGrad-L), re-evaluate —
//! and stop early once the target quality is reached. Per-phase
//! wall-clock times are recorded so the harness can regenerate the
//! paper's Table 2 and Figure 2 directly from a pipeline run.

use crate::annotation::{AnnotationConfig, AnnotationOutcome, AnnotationPhase};
use crate::constructor::{ConstructorKind, ModelConstructor};
use crate::increm::IncremStats;
use crate::metrics::evaluate_f1;
use crate::selector::{SampleSelector, Selection, SelectorContext};
use chef_model::{Dataset, Model, WeightedObjective};
use chef_obs::{
    AnnotationTelemetry, ConstructorTelemetry, RoundTelemetry, SelectorTelemetry, Telemetry,
};
use chef_train::{select_early_stop, SgdConfig};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Total cleaning budget `B` (number of samples shown to annotators).
    pub budget: usize,
    /// Per-round batch `b ≤ B`.
    pub round_size: usize,
    /// Objective (γ on uncleaned samples, L2 strength λ).
    pub objective: WeightedObjective,
    /// SGD hyperparameters shared by initialization and every update.
    pub sgd: SgdConfig,
    /// Model-constructor strategy.
    pub constructor: ConstructorKind,
    /// Annotation-phase setup.
    pub annotation: AnnotationConfig,
    /// Early termination: stop once validation F1 reaches this value.
    pub target_val_f1: Option<f64>,
    /// Warm-start retraining from the previous round's parameters (for
    /// non-convex models; see [`ModelConstructor::warm_start`]).
    pub warm_start: bool,
    /// Telemetry handle every phase reports into. Defaults to disabled;
    /// with the `telemetry` feature off this field is a zero-sized no-op
    /// and all instrumentation compiles away.
    pub telemetry: Telemetry,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            budget: 100,
            round_size: 10,
            objective: WeightedObjective::new(0.8, 0.05),
            sgd: SgdConfig::default(),
            constructor: ConstructorKind::Retrain,
            annotation: AnnotationConfig::default(),
            target_val_f1: None,
            warm_start: false,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Everything measured in one cleaning round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round number (0-based).
    pub round: usize,
    /// The selections handed to the annotators.
    pub selected: Vec<Selection>,
    /// How many selections ended with a cleaned label.
    pub cleaned: usize,
    /// How many ended ambiguous (label kept probabilistic).
    pub ambiguous: usize,
    /// Validation F1 after this round's model refresh (early-stopped).
    pub val_f1: f64,
    /// Test F1 after this round's model refresh (early-stopped).
    pub test_f1: f64,
    /// Wall-clock time of the sample-selector phase (Time_inf of Exp2).
    pub select_time: Duration,
    /// Wall-clock time of the model-constructor phase (Exp3).
    pub update_time: Duration,
    /// Increm-Infl pruning counters, if the selector reported any.
    pub selector_stats: Option<IncremStats>,
    /// Structured per-phase breakdown (telemetry.v1 `rounds[i]`). Always
    /// populated — the counts are computed by the phases regardless of
    /// the `telemetry` feature; only spans/histograms/export need it.
    pub telemetry: RoundTelemetry,
}

/// Full pipeline run summary.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Validation F1 of the uncleaned model (the tables' "uncleaned" column).
    pub initial_val_f1: f64,
    /// Test F1 of the uncleaned model.
    pub initial_test_f1: f64,
    /// Wall-clock time of the initialization training.
    pub init_time: Duration,
    /// Per-round measurements.
    pub rounds: Vec<RoundReport>,
    /// Final (early-stopped) parameters.
    pub final_w: Vec<f64>,
    /// Final full-budget parameters (not early-stopped).
    pub final_w_raw: Vec<f64>,
    /// Whether the run stopped before exhausting the budget.
    pub early_terminated: bool,
    /// Total samples cleaned (deterministic labels installed).
    pub cleaned_total: usize,
    /// The training set after all cleaning (for inspection).
    pub final_data: Dataset,
}

impl PipelineReport {
    /// Test F1 after the last round (or of the uncleaned model when no
    /// rounds ran).
    pub fn final_test_f1(&self) -> f64 {
        self.rounds
            .last()
            .map_or(self.initial_test_f1, |r| r.test_f1)
    }

    /// Validation F1 after the last round.
    pub fn final_val_f1(&self) -> f64 {
        self.rounds.last().map_or(self.initial_val_f1, |r| r.val_f1)
    }

    /// Accumulated selector time across rounds.
    pub fn total_select_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.select_time).sum()
    }

    /// Accumulated model-constructor time across rounds.
    pub fn total_update_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.update_time).sum()
    }
}

/// The CHEF pipeline driver.
pub struct Pipeline {
    cfg: PipelineConfig,
}

impl Pipeline {
    /// Create a pipeline with the given configuration.
    ///
    /// # Panics
    /// Panics if `round_size == 0` or `budget == 0`.
    pub fn new(cfg: PipelineConfig) -> Self {
        assert!(cfg.budget > 0, "Pipeline: zero budget");
        assert!(cfg.round_size > 0, "Pipeline: zero round size");
        Self { cfg }
    }

    /// Run the full cleaning loop on `data`, mutating a private copy.
    ///
    /// `selector` picks the samples; `val` drives both influence and early
    /// stopping; `test` is only ever used for reporting.
    ///
    /// Every phase reports into `cfg.telemetry`: wall-clock spans
    /// (`pipeline.init`, `round.select`, `round.annotate`, `round.update`,
    /// `round.eval`, `train.sgd`), counters, and a structured
    /// [`RoundTelemetry`] per round (also stored on the [`RoundReport`]).
    ///
    /// # Example
    ///
    /// Run two cleaning rounds on a toy problem and read the structured
    /// breakdown. With the `telemetry` feature on (the default), the same
    /// handle also exports a versioned `telemetry.v1` JSON document; with
    /// the feature off, `export_json` returns `None` and the handle is a
    /// zero-sized no-op — this example compiles and passes either way.
    ///
    /// ```
    /// use chef_core::{InflSelector, Pipeline, PipelineConfig, Telemetry};
    /// use chef_linalg::Matrix;
    /// use chef_model::{Dataset, LogisticRegression, SoftLabel};
    /// use chef_train::SgdConfig;
    ///
    /// // Ten 1-D samples, alternating classes; the training copy starts
    /// // with uninformative probabilistic labels.
    /// let make = |clean: bool| {
    ///     let n = 10;
    ///     let raw = (0..n).map(|i| if i % 2 == 0 { -1.0 } else { 1.0 }).collect();
    ///     let labels = (0..n)
    ///         .map(|i| if clean { SoftLabel::onehot(i % 2, 2) } else { SoftLabel::uniform(2) })
    ///         .collect();
    ///     let truth = (0..n).map(|i| Some(i % 2)).collect();
    ///     Dataset::new(Matrix::from_vec(n, 1, raw), labels, vec![clean; n], truth, 2)
    /// };
    ///
    /// let cfg = PipelineConfig {
    ///     budget: 4,
    ///     round_size: 2,
    ///     sgd: SgdConfig { epochs: 2, batch_size: 5, ..SgdConfig::default() },
    ///     telemetry: Telemetry::enabled(),
    ///     ..PipelineConfig::default()
    /// };
    /// let telemetry = cfg.telemetry.clone();
    /// let pipeline = Pipeline::new(cfg);
    /// let model = LogisticRegression::new(1, 2);
    /// let mut selector = InflSelector::full();
    /// let report = pipeline.run(&model, make(false), &make(true), &make(true), &mut selector);
    ///
    /// assert_eq!(report.rounds.len(), 2);
    /// assert_eq!(report.rounds[0].telemetry.selector.pool, 10);
    /// if let Some(json) = telemetry.export_json("pipeline") {
    ///     assert!(json.contains("\"schema\":\"telemetry.v1\""));
    /// }
    /// ```
    pub fn run(
        &self,
        model: &dyn Model,
        mut data: Dataset,
        val: &Dataset,
        test: &Dataset,
        selector: &mut dyn SampleSelector,
    ) -> PipelineReport {
        let cfg = &self.cfg;
        let tel = &cfg.telemetry;
        let ctor = ModelConstructor::new(cfg.constructor, cfg.sgd)
            .with_warm_start(cfg.warm_start)
            .with_telemetry(tel.clone());
        let annotator = AnnotationPhase::new(cfg.annotation);

        // ---- Initialization step (offline): train + provenance. ----
        let init = {
            let _span = tel.span("pipeline.init");
            ctor.initial_train(model, &cfg.objective, &data)
        };
        let mut trace = init.trace;
        let mut w_raw = init.w;
        let (mut w_eval, _) =
            select_early_stop(model, &cfg.objective, val, &trace.epoch_checkpoints, &w_raw);
        let initial_val_f1 = evaluate_f1(model, &w_eval, val).f1;
        let initial_test_f1 = evaluate_f1(model, &w_eval, test).f1;

        let mut attempted: HashSet<usize> = HashSet::new();
        let mut rounds = Vec::new();
        let mut spent = 0usize;
        let mut cleaned_total = 0usize;
        let mut early_terminated = false;

        if cfg
            .target_val_f1
            .is_some_and(|target| initial_val_f1 >= target)
        {
            early_terminated = true;
        }

        let mut round = 0usize;
        while !early_terminated && spent < cfg.budget {
            let b = cfg.round_size.min(cfg.budget - spent);
            let pool: Vec<usize> = data
                .uncleaned_indices()
                .into_iter()
                .filter(|i| !attempted.contains(i))
                .collect();
            if pool.is_empty() {
                break;
            }

            // ---- Sample selector phase. ----
            let select_start = Instant::now();
            let selections = {
                let _span = tel.span("round.select");
                let ctx = SelectorContext {
                    model,
                    objective: &cfg.objective,
                    data: &data,
                    val,
                    // Influence is computed at the full-budget parameters
                    // w_raw: they evolve smoothly across rounds (early
                    // stopping may jump between epochs), which keeps the
                    // Increm-Infl drift ‖w⁽ᵏ⁾ − w⁽⁰⁾‖ small, exactly as the
                    // paper's provenance assumes. Early stopping still
                    // decides the *reported* model.
                    w: &w_raw,
                    pool: &pool,
                    b,
                    round,
                };
                selector.select(&ctx)
            };
            let select_time = select_start.elapsed();
            if selections.is_empty() {
                break;
            }
            spent += selections.len();

            let phase_stats = selector.phase_stats();
            let selector_tel = match phase_stats {
                Some(ps) => SelectorTelemetry {
                    selector: selector.name().to_string(),
                    pool: ps.pool,
                    pruned: ps.pruned,
                    scored: ps.scored,
                    grad_evals: ps.grad_evals,
                    hvp_evals: ps.hvp_evals,
                    bound_hit_rate: ps.bound_hit_rate,
                    kernel_path: ps.kernel_path.to_string(),
                    select_ms: select_time.as_secs_f64() * 1e3,
                },
                // Baselines report no cost counters; pool size is still known.
                None => SelectorTelemetry {
                    selector: selector.name().to_string(),
                    pool: pool.len(),
                    select_ms: select_time.as_secs_f64() * 1e3,
                    ..SelectorTelemetry::default()
                },
            };
            tel.add("selector.scored", selector_tel.scored as u64);
            tel.add("selector.pruned", selector_tel.pruned as u64);
            tel.add("selector.grad_evals", selector_tel.grad_evals as u64);
            tel.add("selector.hvp_evals", selector_tel.hvp_evals as u64);
            match selector_tel.kernel_path.as_str() {
                "gemm" => tel.add("selector.kernel_gemm", 1),
                "per_sample" => tel.add("selector.kernel_per_sample", 1),
                _ => {}
            }
            if let Some(ps) = phase_stats {
                if ps.provenance_grads > 0 {
                    tel.add("increm.provenance_grads", ps.provenance_grads as u64);
                }
            }

            // ---- Human annotation phase. ----
            let annotate_start = Instant::now();
            let old_data = data.clone();
            let (outcomes, ann_stats) = {
                let _span = tel.span("round.annotate");
                annotator.annotate_with_stats(&mut data, &selections)
            };
            let annotate_time = annotate_start.elapsed();
            let mut changed = Vec::new();
            let mut ambiguous = 0usize;
            for (sel, out) in selections.iter().zip(&outcomes) {
                attempted.insert(sel.index);
                match out {
                    AnnotationOutcome::Cleaned(_) => changed.push(sel.index),
                    AnnotationOutcome::Ambiguous => ambiguous += 1,
                }
            }
            cleaned_total += changed.len();
            let annotation_tel = AnnotationTelemetry {
                requested: ann_stats.requested,
                votes: ann_stats.votes,
                conflicts: ann_stats.conflicts,
                abstains: ann_stats.abstains,
                cleaned: ann_stats.cleaned,
                annotate_ms: annotate_time.as_secs_f64() * 1e3,
            };
            tel.add("annotation.votes", ann_stats.votes as u64);
            tel.add("annotation.conflicts", ann_stats.conflicts as u64);
            tel.add("annotation.abstains", ann_stats.abstains as u64);
            tel.add("annotation.cleaned", ann_stats.cleaned as u64);

            // ---- Model constructor phase. ----
            let update = {
                let _span = tel.span("round.update");
                ctor.update(model, &cfg.objective, &old_data, &data, &changed, &trace)
            };
            let update_time = update.elapsed;
            let constructor_tel = match (cfg.constructor, &update.stats) {
                (ConstructorKind::DeltaGradL(dg), Some(stats)) => ConstructorTelemetry {
                    kind: "deltagrad-l".to_string(),
                    exact_steps: stats.explicit_iters,
                    replay_steps: stats.approx_iters,
                    correction_grads: stats.correction_grads,
                    lbfgs_history: dg.m0,
                    epochs: cfg.sgd.epochs,
                    update_ms: update_time.as_secs_f64() * 1e3,
                },
                _ => ConstructorTelemetry {
                    kind: "retrain".to_string(),
                    exact_steps: update.trace.plan.total_iterations(),
                    epochs: cfg.sgd.epochs,
                    update_ms: update_time.as_secs_f64() * 1e3,
                    ..ConstructorTelemetry::default()
                },
            };
            tel.add(
                "constructor.exact_steps",
                constructor_tel.exact_steps as u64,
            );
            tel.add(
                "constructor.replay_steps",
                constructor_tel.replay_steps as u64,
            );
            w_raw = update.w;
            trace = update.trace;

            // ---- Evaluation. ----
            let (val_f1, test_f1) = {
                let _span = tel.span("round.eval");
                let (we, _) =
                    select_early_stop(model, &cfg.objective, val, &trace.epoch_checkpoints, &w_raw);
                w_eval = we;
                (
                    evaluate_f1(model, &w_eval, val).f1,
                    evaluate_f1(model, &w_eval, test).f1,
                )
            };
            tel.set_gauge("pipeline.val_f1", val_f1);
            tel.set_gauge("pipeline.test_f1", test_f1);
            tel.add("pipeline.rounds", 1);

            let round_tel = RoundTelemetry {
                round,
                selector: selector_tel,
                annotation: annotation_tel,
                constructor: constructor_tel,
            };
            tel.record_round(round_tel.clone());

            let selector_stats = selector.stats();
            rounds.push(RoundReport {
                round,
                selected: selections,
                cleaned: changed.len(),
                ambiguous,
                val_f1,
                test_f1,
                select_time,
                update_time,
                selector_stats,
                telemetry: round_tel,
            });

            if cfg.target_val_f1.is_some_and(|target| val_f1 >= target) {
                early_terminated = true;
            }
            round += 1;
        }

        PipelineReport {
            initial_val_f1,
            initial_test_f1,
            init_time: init.elapsed,
            rounds,
            final_w: w_eval,
            final_w_raw: w_raw,
            early_terminated,
            cleaned_total,
            final_data: data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::LabelStrategy;
    use crate::selector::InflSelector;
    use chef_linalg::Matrix;
    use chef_model::{LogisticRegression, SoftLabel};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn fixture(seed: u64) -> (LogisticRegression, Dataset, Dataset, Dataset) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut make = |count: usize, weak: bool| {
            let mut raw = Vec::new();
            let mut labels = Vec::new();
            let mut truth = Vec::new();
            for _ in 0..count {
                let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
                let sign = if c == 1 { 1.0 } else { -1.0 };
                raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
                raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
                if weak {
                    // ~35% of weak labels point the wrong way.
                    let good = rng.gen_range(0.0..1.0) < 0.65;
                    let p = rng.gen_range(0.55..0.95);
                    let l = if good == (c == 1) {
                        SoftLabel::new(vec![1.0 - p, p])
                    } else {
                        SoftLabel::new(vec![p, 1.0 - p])
                    };
                    labels.push(l);
                } else {
                    labels.push(SoftLabel::onehot(c, 2));
                }
                truth.push(Some(c));
            }
            Dataset::new(
                Matrix::from_vec(count, 2, raw),
                labels,
                vec![!weak; count],
                truth,
                2,
            )
        };
        let train = make(120, true);
        let val = make(40, false);
        let test = make(40, false);
        (LogisticRegression::new(2, 2), train, val, test)
    }

    fn config() -> PipelineConfig {
        PipelineConfig {
            budget: 20,
            round_size: 5,
            objective: WeightedObjective::new(0.8, 0.05),
            sgd: SgdConfig {
                lr: 0.1,
                epochs: 8,
                batch_size: 30,
                seed: 3,
                cache_provenance: true,
            },
            constructor: ConstructorKind::Retrain,
            annotation: AnnotationConfig {
                strategy: LabelStrategy::HumansOnly(3),
                error_rate: 0.05,
                seed: 11,
            },
            target_val_f1: None,
            warm_start: false,
            telemetry: Telemetry::disabled(),
        }
    }

    #[test]
    fn runs_all_rounds_and_cleans_budget() {
        let (model, train, val, test) = fixture(1);
        let pipeline = Pipeline::new(config());
        let mut sel = InflSelector::full();
        let report = pipeline.run(&model, train, &val, &test, &mut sel);
        assert_eq!(report.rounds.len(), 4);
        let selected: usize = report.rounds.iter().map(|r| r.selected.len()).sum();
        assert_eq!(selected, 20);
        assert!(report.cleaned_total <= 20);
        assert!(!report.early_terminated);
        assert_eq!(report.final_data.num_clean(), report.cleaned_total);
    }

    #[test]
    fn never_reselects_a_sample() {
        let (model, train, val, test) = fixture(2);
        let pipeline = Pipeline::new(config());
        let mut sel = InflSelector::full();
        let report = pipeline.run(&model, train, &val, &test, &mut sel);
        let mut seen = HashSet::new();
        for r in &report.rounds {
            for s in &r.selected {
                assert!(seen.insert(s.index), "sample {} selected twice", s.index);
            }
        }
    }

    #[test]
    fn cleaning_does_not_hurt_quality() {
        let (model, train, val, test) = fixture(3);
        let mut cfg = config();
        cfg.budget = 30;
        cfg.annotation.strategy = LabelStrategy::SuggestionOnly;
        let pipeline = Pipeline::new(cfg);
        let mut sel = InflSelector::full();
        let report = pipeline.run(&model, train, &val, &test, &mut sel);
        assert!(
            report.final_val_f1() >= report.initial_val_f1 - 0.05,
            "val F1 {} → {}",
            report.initial_val_f1,
            report.final_val_f1()
        );
    }

    #[test]
    fn early_termination_respects_target() {
        let (model, train, val, test) = fixture(4);
        let mut cfg = config();
        cfg.target_val_f1 = Some(0.0); // trivially satisfied before round 1
        let pipeline = Pipeline::new(cfg);
        let mut sel = InflSelector::full();
        let report = pipeline.run(&model, train, &val, &test, &mut sel);
        assert!(report.early_terminated);
        assert!(report.rounds.is_empty());
    }

    #[test]
    fn deltagrad_l_pipeline_matches_retrain_quality() {
        let (model, train, val, test) = fixture(5);
        let mut cfg = config();
        cfg.annotation.strategy = LabelStrategy::SuggestionOnly;
        let mut cfg_d = cfg.clone();
        let pipeline_r = Pipeline::new(cfg);
        cfg_d.constructor = ConstructorKind::DeltaGradL(chef_train::DeltaGradConfig::default());
        let pipeline_d = Pipeline::new(cfg_d);
        let mut sel_r = InflSelector::full();
        let mut sel_d = InflSelector::full();
        let rep_r = pipeline_r.run(&model, train.clone(), &val, &test, &mut sel_r);
        let rep_d = pipeline_d.run(&model, train, &val, &test, &mut sel_d);
        assert!(
            (rep_r.final_test_f1() - rep_d.final_test_f1()).abs() < 0.08,
            "Retrain {} vs DeltaGrad-L {}",
            rep_r.final_test_f1(),
            rep_d.final_test_f1()
        );
    }

    #[test]
    fn report_accumulators_are_consistent() {
        let (model, train, val, test) = fixture(6);
        let pipeline = Pipeline::new(config());
        let mut sel = InflSelector::incremental();
        let report = pipeline.run(&model, train, &val, &test, &mut sel);
        let sum: Duration = report.rounds.iter().map(|r| r.select_time).sum();
        assert_eq!(sum, report.total_select_time());
        for r in &report.rounds {
            assert_eq!(r.selected.len(), r.cleaned + r.ambiguous);
            // The structured breakdown agrees with the flat counters.
            assert_eq!(r.telemetry.round, r.round);
            assert_eq!(r.telemetry.annotation.cleaned, r.cleaned);
            assert_eq!(r.telemetry.annotation.abstains, r.ambiguous);
            assert_eq!(
                r.telemetry.selector.pool,
                r.telemetry.selector.pruned + r.telemetry.selector.scored
            );
        }
    }
}
