//! The redesigned iterative cleaning pipeline (paper Figure 1, loop 2).
//!
//! Instead of spending the whole budget `B` in one shot, the pipeline
//! cleans `b ≪ B` samples per round: select with Infl (or a baseline),
//! annotate, refresh the model (Retrain or DeltaGrad-L), re-evaluate —
//! and stop early once the target quality is reached. Per-phase
//! wall-clock times are recorded so the harness can regenerate the
//! paper's Table 2 and Figure 2 directly from a pipeline run.

use crate::annotation::{AnnotationConfig, AnnotationOutcome, AnnotationPhase, AnnotationStats};
use crate::checkpoint::{Checkpoint, CheckpointConfig, CheckpointError, LabelPatch};
use crate::constructor::{ConstructorKind, ModelConstructor};
#[cfg(feature = "fault-inject")]
use crate::fault::FaultPlan;
use crate::increm::IncremStats;
use crate::metrics::evaluate_f1;
use crate::round::{LoopState, RoundLoop, RoundStep};
use crate::selector::{SampleSelector, Selection};
use chef_model::{Dataset, DatasetStore, Model, WeightedObjective};
use chef_obs::{RoundTelemetry, Telemetry};
use chef_train::{select_early_stop, SgdConfig};
use std::collections::HashSet;
use std::path::Path;
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Total cleaning budget `B` (number of samples shown to annotators).
    pub budget: usize,
    /// Per-round batch `b ≤ B`.
    pub round_size: usize,
    /// Objective (γ on uncleaned samples, L2 strength λ).
    pub objective: WeightedObjective,
    /// SGD hyperparameters shared by initialization and every update.
    pub sgd: SgdConfig,
    /// Model-constructor strategy.
    pub constructor: ConstructorKind,
    /// Annotation-phase setup.
    pub annotation: AnnotationConfig,
    /// Early termination: stop once validation F1 reaches this value.
    pub target_val_f1: Option<f64>,
    /// Warm-start retraining from the previous round's parameters (for
    /// non-convex models; see [`ModelConstructor::warm_start`]).
    pub warm_start: bool,
    /// Telemetry handle every phase reports into. Defaults to disabled;
    /// with the `telemetry` feature off this field is a zero-sized no-op
    /// and all instrumentation compiles away.
    pub telemetry: Telemetry,
    /// Durable checkpointing (DESIGN.md §12): when set, the loop writes a
    /// `checkpoint.v1` generation file every
    /// [`CheckpointConfig::every_rounds`] completed rounds, and
    /// [`Pipeline::resume`] / [`Pipeline::resume_latest`] continue an
    /// interrupted run bit-identically. `None` (the default) writes
    /// nothing.
    pub checkpoint: Option<CheckpointConfig>,
    /// Deterministic fault injection (`fault-inject` feature only): the
    /// test harness's crash/torn-write/bit-flip/timeout schedule.
    #[cfg(feature = "fault-inject")]
    pub faults: FaultPlan,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            budget: 100,
            round_size: 10,
            objective: WeightedObjective::new(0.8, 0.05),
            sgd: SgdConfig::default(),
            constructor: ConstructorKind::Retrain,
            annotation: AnnotationConfig::default(),
            target_val_f1: None,
            warm_start: false,
            telemetry: Telemetry::disabled(),
            checkpoint: None,
            #[cfg(feature = "fault-inject")]
            faults: FaultPlan::default(),
        }
    }
}

/// Everything measured in one cleaning round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Round number (0-based).
    pub round: usize,
    /// The selections handed to the annotators.
    pub selected: Vec<Selection>,
    /// How many selections ended with a cleaned label.
    pub cleaned: usize,
    /// How many ended ambiguous (label kept probabilistic).
    pub ambiguous: usize,
    /// Validation F1 after this round's model refresh (early-stopped).
    pub val_f1: f64,
    /// Test F1 after this round's model refresh (early-stopped).
    pub test_f1: f64,
    /// Wall-clock time of the sample-selector phase (Time_inf of Exp2).
    pub select_time: Duration,
    /// Wall-clock time of the model-constructor phase (Exp3).
    pub update_time: Duration,
    /// Increm-Infl pruning counters, if the selector reported any.
    pub selector_stats: Option<IncremStats>,
    /// Structured per-phase breakdown (telemetry.v1 `rounds[i]`). Always
    /// populated — the counts are computed by the phases regardless of
    /// the `telemetry` feature; only spans/histograms/export need it.
    pub telemetry: RoundTelemetry,
}

/// Full pipeline run summary.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Validation F1 of the uncleaned model (the tables' "uncleaned" column).
    pub initial_val_f1: f64,
    /// Test F1 of the uncleaned model.
    pub initial_test_f1: f64,
    /// Wall-clock time of the initialization training.
    pub init_time: Duration,
    /// Per-round measurements.
    pub rounds: Vec<RoundReport>,
    /// Final (early-stopped) parameters.
    pub final_w: Vec<f64>,
    /// Final full-budget parameters (not early-stopped).
    pub final_w_raw: Vec<f64>,
    /// Whether the run stopped before exhausting the budget.
    pub early_terminated: bool,
    /// Total samples cleaned (deterministic labels installed).
    pub cleaned_total: usize,
    /// The training set after all cleaning (for inspection).
    pub final_data: Dataset,
    /// Whether the run was cut short by an injected crash (`fault-inject`
    /// feature) rather than finishing its budget. Always `false` in
    /// production builds; a resumed run that completes clears it.
    pub interrupted: bool,
}

impl PipelineReport {
    /// Test F1 after the last round (or of the uncleaned model when no
    /// rounds ran).
    pub fn final_test_f1(&self) -> f64 {
        self.rounds
            .last()
            .map_or(self.initial_test_f1, |r| r.test_f1)
    }

    /// Validation F1 after the last round.
    pub fn final_val_f1(&self) -> f64 {
        self.rounds.last().map_or(self.initial_val_f1, |r| r.val_f1)
    }

    /// Accumulated selector time across rounds. After a
    /// [`Pipeline::resume`], `rounds` includes the restored pre-crash
    /// reports (durations persisted in the checkpoint), so this total
    /// covers the whole logical run, not just the resumed session.
    pub fn total_select_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.select_time).sum()
    }

    /// Accumulated model-constructor time across rounds (aggregates
    /// across resume, like [`Self::total_select_time`]).
    pub fn total_update_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.update_time).sum()
    }
}

/// A [`PipelineReport`] without the materialized `final_data` copy: the
/// result of the store-generic entry points ([`Pipeline::run_store`],
/// [`Pipeline::resume_store`]), which mutate the caller's
/// [`DatasetStore`] in place. An out-of-core run at n = 10⁶ must not
/// end by cloning a quarter-gigabyte of features into RAM; callers that
/// do want an owned snapshot call [`DatasetStore::to_dataset`]
/// explicitly.
#[derive(Debug, Clone)]
pub struct StorePipelineReport {
    /// Validation F1 of the uncleaned model.
    pub initial_val_f1: f64,
    /// Test F1 of the uncleaned model.
    pub initial_test_f1: f64,
    /// Wall-clock time of the initialization training.
    pub init_time: Duration,
    /// Per-round measurements.
    pub rounds: Vec<RoundReport>,
    /// Final (early-stopped) parameters.
    pub final_w: Vec<f64>,
    /// Final full-budget parameters (not early-stopped).
    pub final_w_raw: Vec<f64>,
    /// Whether the run stopped before exhausting the budget.
    pub early_terminated: bool,
    /// Total samples cleaned (deterministic labels installed).
    pub cleaned_total: usize,
    /// Whether the run was cut short by an injected crash.
    pub interrupted: bool,
}

impl StorePipelineReport {
    /// Attach an owned final dataset, producing the classic
    /// [`PipelineReport`]. Used by [`Pipeline::run`], which owns its
    /// in-memory training copy anyway.
    pub fn into_report(self, final_data: Dataset) -> PipelineReport {
        PipelineReport {
            initial_val_f1: self.initial_val_f1,
            initial_test_f1: self.initial_test_f1,
            init_time: self.init_time,
            rounds: self.rounds,
            final_w: self.final_w,
            final_w_raw: self.final_w_raw,
            early_terminated: self.early_terminated,
            cleaned_total: self.cleaned_total,
            final_data,
            interrupted: self.interrupted,
        }
    }

    /// Test F1 after the last round (or of the uncleaned model when no
    /// rounds ran).
    pub fn final_test_f1(&self) -> f64 {
        self.rounds
            .last()
            .map_or(self.initial_test_f1, |r| r.test_f1)
    }

    /// Validation F1 after the last round.
    pub fn final_val_f1(&self) -> f64 {
        self.rounds.last().map_or(self.initial_val_f1, |r| r.val_f1)
    }
}

/// The CHEF pipeline driver.
pub struct Pipeline {
    pub(crate) cfg: PipelineConfig,
}

impl Pipeline {
    /// Create a pipeline with the given configuration.
    ///
    /// # Panics
    /// Panics if `round_size == 0` or `budget == 0`.
    pub fn new(cfg: PipelineConfig) -> Self {
        assert!(cfg.budget > 0, "Pipeline: zero budget");
        assert!(cfg.round_size > 0, "Pipeline: zero round size");
        Self { cfg }
    }

    /// Run the full cleaning loop on `data`, mutating a private copy.
    ///
    /// `selector` picks the samples; `val` drives both influence and early
    /// stopping; `test` is only ever used for reporting.
    ///
    /// Every phase reports into `cfg.telemetry`: wall-clock spans
    /// (`pipeline.init`, `round.select`, `round.annotate`, `round.update`,
    /// `round.eval`, `train.sgd`), counters, and a structured
    /// [`RoundTelemetry`] per round (also stored on the [`RoundReport`]).
    ///
    /// # Example
    ///
    /// Run two cleaning rounds on a toy problem and read the structured
    /// breakdown. With the `telemetry` feature on (the default), the same
    /// handle also exports a versioned `telemetry.v1` JSON document; with
    /// the feature off, `export_json` returns `None` and the handle is a
    /// zero-sized no-op — this example compiles and passes either way.
    ///
    /// ```
    /// use chef_core::{InflSelector, Pipeline, PipelineConfig, Telemetry};
    /// use chef_linalg::Matrix;
    /// use chef_model::{Dataset, LogisticRegression, SoftLabel};
    /// use chef_train::SgdConfig;
    ///
    /// // Ten 1-D samples, alternating classes; the training copy starts
    /// // with uninformative probabilistic labels.
    /// let make = |clean: bool| {
    ///     let n = 10;
    ///     let raw = (0..n).map(|i| if i % 2 == 0 { -1.0 } else { 1.0 }).collect();
    ///     let labels = (0..n)
    ///         .map(|i| if clean { SoftLabel::onehot(i % 2, 2) } else { SoftLabel::uniform(2) })
    ///         .collect();
    ///     let truth = (0..n).map(|i| Some(i % 2)).collect();
    ///     Dataset::new(Matrix::from_vec(n, 1, raw), labels, vec![clean; n], truth, 2)
    /// };
    ///
    /// let cfg = PipelineConfig {
    ///     budget: 4,
    ///     round_size: 2,
    ///     sgd: SgdConfig { epochs: 2, batch_size: 5, ..SgdConfig::default() },
    ///     telemetry: Telemetry::enabled(),
    ///     ..PipelineConfig::default()
    /// };
    /// let telemetry = cfg.telemetry.clone();
    /// let pipeline = Pipeline::new(cfg);
    /// let model = LogisticRegression::new(1, 2);
    /// let mut selector = InflSelector::full();
    /// let report = pipeline.run(&model, make(false), &make(true), &make(true), &mut selector);
    ///
    /// assert_eq!(report.rounds.len(), 2);
    /// assert_eq!(report.rounds[0].telemetry.selector.pool, 10);
    /// if let Some(json) = telemetry.export_json("pipeline") {
    ///     assert!(json.contains("\"schema\":\"telemetry.v1\""));
    /// }
    /// ```
    pub fn run(
        &self,
        model: &dyn Model,
        mut data: Dataset,
        val: &Dataset,
        test: &Dataset,
        selector: &mut dyn SampleSelector,
    ) -> PipelineReport {
        let out = self.run_store(model, &mut data, val, test, selector);
        out.into_report(data)
    }

    /// Storage-generic [`Self::run`]: drives the cleaning loop over any
    /// [`DatasetStore`], mutating its labels in place. This is the entry
    /// point for out-of-core runs (DESIGN.md §15) — a
    /// `chef_data::MmapStore` keeps features on disk while labels and
    /// flags update in RAM — and is exactly what [`Self::run`] calls on
    /// its owned in-memory copy, so both paths are one code path and
    /// bit-identical on the same data.
    pub fn run_store(
        &self,
        model: &dyn Model,
        data: &mut dyn DatasetStore,
        val: &dyn DatasetStore,
        test: &dyn DatasetStore,
        selector: &mut dyn SampleSelector,
    ) -> StorePipelineReport {
        self.drive_sync(self.round_loop(model, data, val, test, selector))
    }

    /// The async-boundary entry point (DESIGN.md §16): run the
    /// initialization training and return the loop as a [`RoundLoop`]
    /// state machine that yields [`crate::AnnotationBatch`]es instead of
    /// blocking on annotators. [`Self::run_store`] is this plus a driver
    /// that answers every batch with the in-process simulated panel —
    /// one code path, so both are bit-identical on the same data.
    pub fn round_loop<'a>(
        &'a self,
        model: &'a dyn Model,
        data: &'a mut dyn DatasetStore,
        val: &'a dyn DatasetStore,
        test: &'a dyn DatasetStore,
        selector: &'a mut dyn SampleSelector,
    ) -> RoundLoop<'a> {
        let cfg = &self.cfg;
        let tel = &cfg.telemetry;
        let ctor = self.constructor();

        // ---- Initialization step (offline): train + provenance. ----
        let init = {
            let _span = tel.span("pipeline.init");
            ctor.initial_train(model, &cfg.objective, data)
        };
        let trace = init.trace;
        let w_raw = init.w;
        let (w_eval, _) =
            select_early_stop(model, &cfg.objective, val, &trace.epoch_checkpoints, &w_raw);
        let initial_val_f1 = evaluate_f1(model, &w_eval, val).f1;
        let initial_test_f1 = evaluate_f1(model, &w_eval, test).f1;

        let state = LoopState {
            w_raw,
            w_eval,
            trace,
            attempted: HashSet::new(),
            rounds: Vec::new(),
            spent: 0,
            cleaned_total: 0,
            early_terminated: cfg
                .target_val_f1
                .is_some_and(|target| initial_val_f1 >= target),
            round: 0,
            initial_val_f1,
            initial_test_f1,
            init_time: init.elapsed,
        };
        RoundLoop::new(self, model, data, val, test, selector, state)
    }

    /// Resume an interrupted run from the checkpoint file at `path`.
    ///
    /// `data` must be the *pristine* training set the original run
    /// started from — the checkpoint's label patches are replayed onto
    /// it. `selector` must be the same selector kind the original run
    /// used; its frozen Increm-Infl provenance is restored from the
    /// checkpoint, so no re-initialization pass runs. The continued run
    /// is bit-identical to one that was never interrupted (the
    /// replay-equivalence guarantee of DESIGN.md §12, pinned by
    /// `tests/checkpoint_resume.rs`), and the returned report aggregates
    /// the restored rounds — `total_select_time` / `total_update_time` /
    /// `init_time` cover the pre-crash work too.
    ///
    /// Restored rounds are replayed into the telemetry handle
    /// (`resume.rounds_skipped` counts them) so counters and the exported
    /// `rounds` array match an uninterrupted run; wall-clock histograms
    /// and spans only cover the resumed session.
    pub fn resume(
        &self,
        model: &dyn Model,
        mut data: Dataset,
        val: &Dataset,
        test: &Dataset,
        selector: &mut dyn SampleSelector,
        path: &Path,
    ) -> Result<PipelineReport, CheckpointError> {
        let out = self.resume_store(model, &mut data, val, test, selector, path)?;
        Ok(out.into_report(data))
    }

    /// Storage-generic [`Self::resume`]: replays the checkpoint's label
    /// patches onto `data` (which must be the pristine training store
    /// the original run started from) and continues the loop in place.
    /// `checkpoint.v1` stores row indices and label vectors only — no
    /// feature bytes — so the same file resumes an in-memory run or an
    /// out-of-core one interchangeably.
    pub fn resume_store(
        &self,
        model: &dyn Model,
        data: &mut dyn DatasetStore,
        val: &dyn DatasetStore,
        test: &dyn DatasetStore,
        selector: &mut dyn SampleSelector,
        path: &Path,
    ) -> Result<StorePipelineReport, CheckpointError> {
        let ckpt = Checkpoint::read_from(path)?;
        self.resume_from(model, data, val, test, selector, ckpt, 0)
    }

    /// [`Self::resume`] from the newest readable generation in `dir`,
    /// falling back over corrupt generations (each fallback is counted in
    /// the `resume.corrupt_fallbacks` telemetry counter).
    pub fn resume_latest(
        &self,
        model: &dyn Model,
        mut data: Dataset,
        val: &Dataset,
        test: &Dataset,
        selector: &mut dyn SampleSelector,
        dir: &Path,
    ) -> Result<PipelineReport, CheckpointError> {
        let (ckpt, _path, corrupt_skipped) = Checkpoint::latest_in_dir(dir)?;
        let out = self.resume_from(model, &mut data, val, test, selector, ckpt, corrupt_skipped)?;
        Ok(out.into_report(data))
    }

    /// [`Self::resume_store`] from the newest readable generation in
    /// `dir`, with the same corrupt-generation fallback as
    /// [`Self::resume_latest`].
    pub fn resume_latest_store(
        &self,
        model: &dyn Model,
        data: &mut dyn DatasetStore,
        val: &dyn DatasetStore,
        test: &dyn DatasetStore,
        selector: &mut dyn SampleSelector,
        dir: &Path,
    ) -> Result<StorePipelineReport, CheckpointError> {
        let (ckpt, _path, corrupt_skipped) = Checkpoint::latest_in_dir(dir)?;
        self.resume_from(model, data, val, test, selector, ckpt, corrupt_skipped)
    }

    #[allow(clippy::too_many_arguments)]
    fn resume_from(
        &self,
        model: &dyn Model,
        data: &mut dyn DatasetStore,
        val: &dyn DatasetStore,
        test: &dyn DatasetStore,
        selector: &mut dyn SampleSelector,
        ckpt: Checkpoint,
        corrupt_skipped: usize,
    ) -> Result<StorePipelineReport, CheckpointError> {
        let state = self.restored_state(data, selector, ckpt, corrupt_skipped)?;
        Ok(self.drive_sync(RoundLoop::new(
            self, model, data, val, test, selector, state,
        )))
    }

    /// Reattach a [`crate::SuspendedLoop`] to its resources and continue
    /// it as a live [`RoundLoop`] — the other half of
    /// [`RoundLoop::suspend`]. The borrows must be the same logical
    /// resources the loop was suspended from (same training store
    /// contents, same model, same selector instance); the constructor is
    /// rebuilt fresh, which is bit-identical because it is stateless
    /// across rounds (the resume path already relies on this).
    pub fn reattach_round_loop<'a>(
        &'a self,
        model: &'a dyn Model,
        data: &'a mut dyn DatasetStore,
        val: &'a dyn DatasetStore,
        test: &'a dyn DatasetStore,
        selector: &'a mut dyn SampleSelector,
        suspended: crate::SuspendedLoop,
    ) -> RoundLoop<'a> {
        RoundLoop::from_suspended(self, model, data, val, test, selector, suspended)
    }

    /// [`Self::round_loop`] resuming from the newest readable checkpoint
    /// generation in `dir` (same fallback-over-corrupt-generations
    /// behavior as [`Self::resume_latest`]): restores labels, selector
    /// provenance and telemetry, then returns the parked state machine
    /// for an external annotation source to drive. This is how a
    /// `chef-serve` job picks up a killed tenant bit-identically.
    pub fn resume_round_loop_latest<'a>(
        &'a self,
        model: &'a dyn Model,
        data: &'a mut dyn DatasetStore,
        val: &'a dyn DatasetStore,
        test: &'a dyn DatasetStore,
        selector: &'a mut dyn SampleSelector,
        dir: &Path,
    ) -> Result<RoundLoop<'a>, CheckpointError> {
        let (ckpt, _path, corrupt_skipped) = Checkpoint::latest_in_dir(dir)?;
        let state = self.restored_state(data, selector, ckpt, corrupt_skipped)?;
        Ok(RoundLoop::new(
            self, model, data, val, test, selector, state,
        ))
    }

    /// Validate a checkpoint against the config, replay its label
    /// patches and telemetry, restore the selector, and rebuild the loop
    /// state — the shared prologue of every resume entry point.
    fn restored_state(
        &self,
        data: &mut dyn DatasetStore,
        selector: &mut dyn SampleSelector,
        ckpt: Checkpoint,
        corrupt_skipped: usize,
    ) -> Result<LoopState, CheckpointError> {
        let cfg = &self.cfg;
        if ckpt.annotation_seed != cfg.annotation.seed {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint was taken with annotation seed {}, config has {}",
                ckpt.annotation_seed, cfg.annotation.seed
            )));
        }
        if ckpt.sgd_seed != cfg.sgd.seed {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint was taken with SGD seed {}, config has {}",
                ckpt.sgd_seed, cfg.sgd.seed
            )));
        }
        ckpt.apply_labels(data)?;
        selector
            .restore_checkpoint(ckpt.selector.clone())
            .map_err(CheckpointError::Mismatch)?;

        // Replay the restored rounds into the telemetry handle so
        // counters and the exported `rounds` array match an uninterrupted
        // run (`record_round_counters` is the single source of truth for
        // both paths).
        let tel = &cfg.telemetry;
        tel.add("resume.rounds_skipped", ckpt.rounds.len() as u64);
        if corrupt_skipped > 0 {
            tel.add("resume.corrupt_fallbacks", corrupt_skipped as u64);
        }
        for r in &ckpt.rounds {
            record_round_counters(tel, &r.telemetry);
            tel.record_round(r.telemetry.clone());
        }
        if let Some(last) = ckpt.rounds.last() {
            tel.set_gauge("pipeline.val_f1", last.val_f1);
            tel.set_gauge("pipeline.test_f1", last.test_f1);
        }

        Ok(LoopState {
            w_raw: ckpt.w_raw,
            w_eval: ckpt.w_eval,
            trace: ckpt.trace,
            attempted: ckpt.attempted.into_iter().collect(),
            rounds: ckpt.rounds,
            spent: ckpt.spent,
            cleaned_total: ckpt.cleaned_total,
            early_terminated: ckpt.early_terminated,
            round: ckpt.round,
            initial_val_f1: ckpt.initial_val_f1,
            initial_test_f1: ckpt.initial_test_f1,
            init_time: Duration::from_nanos(ckpt.init_ns),
        })
    }

    pub(crate) fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    pub(crate) fn constructor(&self) -> ModelConstructor {
        ModelConstructor::new(self.cfg.constructor, self.cfg.sgd)
            .with_warm_start(self.cfg.warm_start)
            .with_telemetry(self.cfg.telemetry.clone())
    }

    /// The synchronous annotation driver, shared by [`Self::run`] and
    /// [`Self::resume`]: answers every batch the [`RoundLoop`] yields
    /// with the in-process simulated panel (or the injected whole-batch
    /// timeout), immediately. All loop mechanics live in the state
    /// machine itself.
    fn drive_sync(&self, mut rl: RoundLoop<'_>) -> StorePipelineReport {
        let annotator = AnnotationPhase::new(self.cfg.annotation);
        loop {
            match rl.next_batch() {
                RoundStep::Done => return rl.finish(),
                RoundStep::Awaiting(batch) => {
                    let annotate_start = Instant::now();
                    let (outcomes, ann_stats) = if self.annotators_time_out(batch.round) {
                        // Injected timeout: the whole batch abstains —
                        // labels stay probabilistic, budget slots are
                        // still consumed.
                        (
                            vec![AnnotationOutcome::Ambiguous; batch.items.len()],
                            AnnotationStats {
                                requested: batch.items.len(),
                                abstains: batch.items.len(),
                                ..AnnotationStats::default()
                            },
                        )
                    } else {
                        let _span = self.cfg.telemetry.span("round.annotate");
                        annotator.decide_batch(&batch)
                    };
                    rl.provide(&outcomes, ann_stats, annotate_start.elapsed());
                }
            }
        }
    }

    /// Snapshot the loop state as a [`Checkpoint`]. Label patches cover
    /// exactly the attempted samples — the only ones annotation can have
    /// mutated — so replaying them onto the pristine dataset reproduces
    /// `state.data` bit-for-bit.
    fn checkpoint_from(
        &self,
        state: &LoopState,
        data: &dyn DatasetStore,
        selector: &dyn SampleSelector,
    ) -> Checkpoint {
        let mut attempted: Vec<usize> = state.attempted.iter().copied().collect();
        attempted.sort_unstable();
        let labels = attempted
            .iter()
            .map(|&i| LabelPatch {
                index: i,
                clean: data.is_clean(i),
                probs: data.label(i).probs().to_vec(),
            })
            .collect();
        Checkpoint {
            round: state.round,
            spent: state.spent,
            cleaned_total: state.cleaned_total,
            early_terminated: state.early_terminated,
            initial_val_f1: state.initial_val_f1,
            initial_test_f1: state.initial_test_f1,
            init_ns: state.init_time.as_nanos() as u64,
            annotation_seed: self.cfg.annotation.seed,
            sgd_seed: self.cfg.sgd.seed,
            attempted,
            labels,
            rounds: state.rounds.clone(),
            w_raw: state.w_raw.clone(),
            w_eval: state.w_eval.clone(),
            trace: state.trace.clone(),
            selector: selector.checkpoint_state(),
        }
    }

    pub(crate) fn write_checkpoint(
        &self,
        ckcfg: &CheckpointConfig,
        state: &LoopState,
        data: &dyn DatasetStore,
        selector: &dyn SampleSelector,
        finished_round: usize,
    ) {
        let tel = &self.cfg.telemetry;
        let ckpt = self.checkpoint_from(state, data, selector);
        let start = Instant::now();
        match ckpt.write_generation(ckcfg) {
            Ok((path, bytes)) => {
                tel.add("checkpoint.writes", 1);
                tel.add("checkpoint.bytes", bytes);
                tel.observe_ms("checkpoint.write_ms", start.elapsed().as_secs_f64() * 1e3);
                self.mangle_checkpoint(finished_round, &path);
            }
            Err(_) => {
                // A failed write must not kill the cleaning run; the
                // previous generation (if any) still covers recovery.
                tel.add("checkpoint.write_errors", 1);
            }
        }
    }

    #[cfg(feature = "fault-inject")]
    pub(crate) fn crash_requested(&self, finished_round: usize) -> bool {
        self.cfg.faults.crash_after_round == Some(finished_round)
    }

    #[cfg(not(feature = "fault-inject"))]
    pub(crate) fn crash_requested(&self, _finished_round: usize) -> bool {
        false
    }

    #[cfg(feature = "fault-inject")]
    fn annotators_time_out(&self, round: usize) -> bool {
        self.cfg.faults.annotators_time_out(round)
    }

    #[cfg(not(feature = "fault-inject"))]
    fn annotators_time_out(&self, _round: usize) -> bool {
        false
    }

    #[cfg(feature = "fault-inject")]
    fn mangle_checkpoint(&self, finished_round: usize, path: &Path) {
        self.cfg.faults.mangle_after_write(finished_round, path);
    }

    #[cfg(not(feature = "fault-inject"))]
    fn mangle_checkpoint(&self, _finished_round: usize, _path: &Path) {}
}

/// Fold one round's structured breakdown into the flat telemetry
/// counters. The single source of truth for both the live loop and the
/// resume replay — keeping them on one code path is what makes counter
/// totals match between an uninterrupted run and a crash-plus-resume run
/// (`increm.provenance_grads` and `cg.warm_start_iters_saved` are the
/// documented exceptions: neither is part of [`RoundTelemetry`], so
/// resume cannot replay them).
pub(crate) fn record_round_counters(tel: &Telemetry, rt: &RoundTelemetry) {
    tel.add("selector.scored", rt.selector.scored as u64);
    tel.add("selector.pruned", rt.selector.pruned as u64);
    tel.add("selector.grad_evals", rt.selector.grad_evals as u64);
    tel.add("selector.hvp_evals", rt.selector.hvp_evals as u64);
    match rt.selector.kernel_path.as_str() {
        "gemm" => tel.add("selector.kernel_gemm", 1),
        "per_sample" => tel.add("selector.kernel_per_sample", 1),
        _ => {}
    }
    match rt.constructor.kernel_path.as_str() {
        "gemm" => tel.add("train.kernel_gemm", 1),
        "per_sample" => tel.add("train.kernel_per_sample", 1),
        _ => {}
    }
    tel.add("annotation.votes", rt.annotation.votes as u64);
    tel.add("annotation.conflicts", rt.annotation.conflicts as u64);
    tel.add("annotation.abstains", rt.annotation.abstains as u64);
    tel.add("annotation.cleaned", rt.annotation.cleaned as u64);
    tel.add("constructor.exact_steps", rt.constructor.exact_steps as u64);
    tel.add(
        "constructor.replay_steps",
        rt.constructor.replay_steps as u64,
    );
    tel.add("pipeline.rounds", 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::LabelStrategy;
    use crate::selector::InflSelector;
    use chef_linalg::Matrix;
    use chef_model::{LogisticRegression, SoftLabel};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn fixture(seed: u64) -> (LogisticRegression, Dataset, Dataset, Dataset) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut make = |count: usize, weak: bool| {
            let mut raw = Vec::new();
            let mut labels = Vec::new();
            let mut truth = Vec::new();
            for _ in 0..count {
                let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
                let sign = if c == 1 { 1.0 } else { -1.0 };
                raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
                raw.push(sign * 1.2 + rng.gen_range(-1.0..1.0));
                if weak {
                    // ~35% of weak labels point the wrong way.
                    let good = rng.gen_range(0.0..1.0) < 0.65;
                    let p = rng.gen_range(0.55..0.95);
                    let l = if good == (c == 1) {
                        SoftLabel::new(vec![1.0 - p, p])
                    } else {
                        SoftLabel::new(vec![p, 1.0 - p])
                    };
                    labels.push(l);
                } else {
                    labels.push(SoftLabel::onehot(c, 2));
                }
                truth.push(Some(c));
            }
            Dataset::new(
                Matrix::from_vec(count, 2, raw),
                labels,
                vec![!weak; count],
                truth,
                2,
            )
        };
        let train = make(120, true);
        let val = make(40, false);
        let test = make(40, false);
        (LogisticRegression::new(2, 2), train, val, test)
    }

    fn config() -> PipelineConfig {
        PipelineConfig {
            budget: 20,
            round_size: 5,
            objective: WeightedObjective::new(0.8, 0.05),
            sgd: SgdConfig {
                lr: 0.1,
                epochs: 8,
                batch_size: 30,
                seed: 3,
                cache_provenance: true,
            },
            constructor: ConstructorKind::Retrain,
            annotation: AnnotationConfig {
                strategy: LabelStrategy::HumansOnly(3),
                error_rate: 0.05,
                seed: 11,
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn runs_all_rounds_and_cleans_budget() {
        let (model, train, val, test) = fixture(1);
        let pipeline = Pipeline::new(config());
        let mut sel = InflSelector::full();
        let report = pipeline.run(&model, train, &val, &test, &mut sel);
        assert_eq!(report.rounds.len(), 4);
        let selected: usize = report.rounds.iter().map(|r| r.selected.len()).sum();
        assert_eq!(selected, 20);
        assert!(report.cleaned_total <= 20);
        assert!(!report.early_terminated);
        assert_eq!(report.final_data.num_clean(), report.cleaned_total);
    }

    #[test]
    fn never_reselects_a_sample() {
        let (model, train, val, test) = fixture(2);
        let pipeline = Pipeline::new(config());
        let mut sel = InflSelector::full();
        let report = pipeline.run(&model, train, &val, &test, &mut sel);
        let mut seen = HashSet::new();
        for r in &report.rounds {
            for s in &r.selected {
                assert!(seen.insert(s.index), "sample {} selected twice", s.index);
            }
        }
    }

    #[test]
    fn cleaning_does_not_hurt_quality() {
        let (model, train, val, test) = fixture(3);
        let mut cfg = config();
        cfg.budget = 30;
        cfg.annotation.strategy = LabelStrategy::SuggestionOnly;
        let pipeline = Pipeline::new(cfg);
        let mut sel = InflSelector::full();
        let report = pipeline.run(&model, train, &val, &test, &mut sel);
        assert!(
            report.final_val_f1() >= report.initial_val_f1 - 0.05,
            "val F1 {} → {}",
            report.initial_val_f1,
            report.final_val_f1()
        );
    }

    #[test]
    fn early_termination_respects_target() {
        let (model, train, val, test) = fixture(4);
        let mut cfg = config();
        cfg.target_val_f1 = Some(0.0); // trivially satisfied before round 1
        let pipeline = Pipeline::new(cfg);
        let mut sel = InflSelector::full();
        let report = pipeline.run(&model, train, &val, &test, &mut sel);
        assert!(report.early_terminated);
        assert!(report.rounds.is_empty());
    }

    #[test]
    fn deltagrad_l_pipeline_matches_retrain_quality() {
        let (model, train, val, test) = fixture(5);
        let mut cfg = config();
        cfg.annotation.strategy = LabelStrategy::SuggestionOnly;
        let mut cfg_d = cfg.clone();
        let pipeline_r = Pipeline::new(cfg);
        cfg_d.constructor = ConstructorKind::DeltaGradL(chef_train::DeltaGradConfig::default());
        let pipeline_d = Pipeline::new(cfg_d);
        let mut sel_r = InflSelector::full();
        let mut sel_d = InflSelector::full();
        let rep_r = pipeline_r.run(&model, train.clone(), &val, &test, &mut sel_r);
        let rep_d = pipeline_d.run(&model, train, &val, &test, &mut sel_d);
        assert!(
            (rep_r.final_test_f1() - rep_d.final_test_f1()).abs() < 0.08,
            "Retrain {} vs DeltaGrad-L {}",
            rep_r.final_test_f1(),
            rep_d.final_test_f1()
        );
    }

    #[test]
    fn report_accumulators_are_consistent() {
        let (model, train, val, test) = fixture(6);
        let pipeline = Pipeline::new(config());
        let mut sel = InflSelector::incremental();
        let report = pipeline.run(&model, train, &val, &test, &mut sel);
        let sum: Duration = report.rounds.iter().map(|r| r.select_time).sum();
        assert_eq!(sum, report.total_select_time());
        for r in &report.rounds {
            assert_eq!(r.selected.len(), r.cleaned + r.ambiguous);
            // The structured breakdown agrees with the flat counters.
            assert_eq!(r.telemetry.round, r.round);
            assert_eq!(r.telemetry.annotation.cleaned, r.cleaned);
            assert_eq!(r.telemetry.annotation.abstains, r.ambiguous);
            assert_eq!(
                r.telemetry.selector.pool,
                r.telemetry.selector.pruned + r.telemetry.selector.scored
            );
        }
    }
}
