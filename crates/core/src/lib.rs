//! # chef-core
//!
//! **CHEF: CHEap and Fast label cleaning** — a Rust reproduction of the
//! VLDB 2021 paper by Wu, Weimer and Davidson.
//!
//! CHEF iteratively cleans the *probabilistic* labels that weak
//! supervision produces, spending a human-annotation budget where it
//! matters most. The crate implements the paper's three contributions on
//! top of the `chef-*` substrate crates:
//!
//! * [`influence`] — **Infl** (paper Eq. 6): an influence function that
//!   jointly models replacing a probabilistic label with a deterministic
//!   one and up-weighting the cleaned sample, and that therefore both
//!   *ranks* samples for cleaning and *suggests* the cleaned label;
//! * [`increm`] — **Increm-Infl** (Theorem 1, Algorithm 1): perturbation
//!   bounds around influence values frozen at the initialization model
//!   `w⁽⁰⁾` prune uninfluential samples early, so later rounds evaluate
//!   exact influences on a small candidate set only;
//! * [`constructor`] — **DeltaGrad-L** (§4.2): the model constructor
//!   updates parameters incrementally by replaying SGD with the
//!   `chef-train` DeltaGrad engine instead of retraining from scratch;
//! * [`annotation`] — the human-annotation phase (§4.3): panels of
//!   simulated annotators, with Infl's suggestion usable as one more
//!   independent labeler (the paper's Infl (one)/(two)/(three) variants);
//! * [`pipeline`] — the redesigned cleaning loop of Figure 1 (loop 2):
//!   clean `b ≪ B` samples per round, refresh the model, re-select, stop
//!   early when the target quality is reached;
//! * [`metrics`] — F1/accuracy evaluation used by every experiment;
//! * [`selector`] — the `SampleSelector` abstraction that lets the
//!   pipeline swap Infl for the baselines in `chef-baselines`.
//!
//! Every phase reports into a [`Telemetry`] handle (`chef-obs`) threaded
//! through [`PipelineConfig`]; see DESIGN.md §10 for the `telemetry.v1`
//! schema. With the `telemetry` feature off the handle is a zero-sized
//! no-op and the instrumentation compiles away.

#![warn(missing_docs)]

pub mod annotation;
pub mod checkpoint;
pub mod constructor;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod increm;
pub mod influence;
pub mod lissa;
pub mod metrics;
pub mod pipeline;
pub mod round;
pub mod selector;

pub use annotation::{
    AnnotationConfig, AnnotationOutcome, AnnotationPhase, AnnotationStats, LabelStrategy,
    SampleDecision,
};
pub use checkpoint::{
    Checkpoint, CheckpointConfig, CheckpointError, LabelPatch, CHECKPOINT_VERSION,
};
pub use chef_model::KernelPath;
pub use chef_obs::{
    AnnotationTelemetry, ConstructorTelemetry, RoundTelemetry, SelectorTelemetry, Telemetry,
    SCHEMA_VERSION,
};
pub use constructor::{ConstructorKind, ConstructorOutcome, ModelConstructor};
#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;
pub use increm::{IncremInfl, IncremSnapshot, IncremStats};
pub use influence::{
    influence_vector, influence_vector_outcome, influence_vector_outcome_from, rank_infl,
    rank_infl_top_b, rank_infl_with_vector, rank_infl_with_vector_per_sample,
    rank_infl_with_vector_serial, InflConfig, InflScore, InflVectorOutcome,
};
pub use lissa::{lissa_influence_vector, lissa_solve, LissaConfig};
pub use metrics::{accuracy, confusion_matrix, evaluate_f1, f1_score, macro_f1, Evaluation};
pub use pipeline::{Pipeline, PipelineConfig, PipelineReport, RoundReport, StorePipelineReport};
pub use round::{AnnotationBatch, BatchItem, RoundLoop, RoundStep, SuspendedLoop};
pub use selector::{
    InflSelector, SampleSelector, Selection, SelectorCheckpoint, SelectorContext, SelectorStats,
};
