//! **Increm-Infl** — incremental influence with early pruning
//! (paper Theorem 1, Algorithm 1, Appendices B, D, E).
//!
//! Evaluating Infl on every uncleaned sample costs `C + 1` gradients per
//! sample per round. Increm-Infl avoids most of that in rounds `k ≥ 1` by
//! freezing per-sample quantities at the initialization model `w⁽⁰⁾` as
//! *provenance* — the gradients `∇_wF(w⁽⁰⁾, z̃)`, the per-class gradients
//! `∇_y∇_wF(w⁽⁰⁾, z̃)` and the Hessian spectral norms of Appendix D — and
//! bounding how far the true influence at `w⁽ᵏ⁾` can drift from the
//! frozen value `I₀`:
//!
//! ```text
//! I_pert⁽ᵏ⁾ − I₀ ∈ [ ½ Σ_j (δ_j e₁ − |δ_j| e₂) ‖H⁽ʲ⁾‖ + ((1−γ)/2)(e₁−e₂) μ_z ,
//!                   ½ Σ_j (δ_j e₁ + |δ_j| e₂) ‖H⁽ʲ⁾‖ + ((1−γ)/2)(e₁+e₂) μ_z ]
//! ```
//!
//! with `e₁ = vᵀ(w⁽ᵏ⁾ − w⁽⁰⁾)`, `e₂ = ‖v‖‖w⁽ᵏ⁾ − w⁽⁰⁾‖` and
//! `v = −H⁻¹∇F_val` (the bounds exactly as derived in Appendix A.2; the
//! in-text statement of Theorem 1 drops a factor ½, see DESIGN.md).
//! Algorithm 1 then keeps (a) the samples with the top-b smallest `I₀`
//! and (b) every sample whose lower bound undercuts the largest upper
//! bound `L` among those top-b — a set that provably contains the true
//! top-b, so the expensive exact pass runs on a few samples only.
//!
//! Like the paper, the integrated Hessians in the bound are approximated
//! by their value at `w⁽⁰⁾`; the `slack` factor (default 1, i.e. the
//! paper's behaviour) can widen the interval to absorb that approximation.

use crate::influence::{rank_infl_top_b_sharded, InflScore};
use chef_linalg::kernels;
use chef_model::{DatasetStore, Model};

/// Minimum pool size before the `parallel` feature fans the provenance
/// initialization / bound pass out to the thread pool. The fan-out is
/// additionally gated on `rayon::current_num_threads() > 1`: on a 1-core
/// pool the rayon split/join overhead is pure loss (BENCH_selector.json
/// showed the parallel bound pass *slower* than serial at n=50k–200k on
/// 1 core). The gate is machine-dependent, but both sides of every gated
/// sweep are bit-identical (independent rows / full-row dot products),
/// so it can only change which code runs, never what it computes.
#[cfg(feature = "parallel")]
const PAR_GRAIN: usize = 128;

/// Pre-computed per-sample provenance (the "initialization step" state).
///
/// All per-sample vectors live in contiguous row-major buffers (stride
/// `m = num_params`, class-major within a sample) so the bound pass can
/// hoist its dot products into blocked [`kernels::gather_matvec`] sweeps
/// over provenance rows instead of chasing one heap allocation per
/// sample.
#[derive(Debug, Clone)]
struct Provenance {
    w0: Vec<f64>,
    /// `∇_w F(w⁽⁰⁾, z̃)` per sample: row `i` of an `n × m` matrix.
    grads0: Vec<f64>,
    /// Per-class gradients: row `i·C + c` of an `(n·C) × m` matrix.
    class_grads0: Vec<f64>,
    /// `‖H(w⁽⁰⁾, z̃)‖` per sample (μ_z in the bound).
    hessian_norms0: Vec<f64>,
    /// `‖−∇²_w log p⁽ʲ⁾(w⁽⁰⁾, x̃)‖`, flat `n·C` (sample-major).
    class_hessian_norms0: Vec<f64>,
    /// Parameter count `m` (row stride of the gradient buffers).
    num_params: usize,
    /// Class count `C` (row-group stride of `class_grads0`).
    num_classes: usize,
}

/// One sample's provenance, produced independently per sample so the
/// initialization step can fan out over the thread pool.
struct ProvenanceRow {
    grad0: Vec<f64>,
    class_grads0: Vec<f64>,
    hessian_norm0: f64,
    class_hessian_norms0: Vec<f64>,
}

/// Compute sample `i`'s provenance at `w0`. `g` is a reusable gradient
/// buffer of length `model.num_params()`.
fn provenance_row<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    w0: &[f64],
    i: usize,
    g: &mut [f64],
) -> ProvenanceRow {
    let m = model.num_params();
    let c_count = model.num_classes();
    let x = data.feature(i);
    let y = data.label(i);
    model.grad(w0, x, y, g);
    let grad0 = g.to_vec();
    let mut cg = vec![0.0; c_count * m];
    for c in 0..c_count {
        model.class_grad(w0, x, c, g);
        cg[c * m..(c + 1) * m].copy_from_slice(g);
    }
    ProvenanceRow {
        grad0,
        class_grads0: cg,
        hessian_norm0: model.hessian_norm(w0, x, y),
        class_hessian_norms0: (0..c_count)
            .map(|c| model.class_hessian_norm(w0, x, c))
            .collect(),
    }
}

/// Per-sample result of the Theorem 1 bound pass: the best frozen
/// influence with its upper bound and the smallest lower bound over
/// classes.
struct Entry {
    index: usize,
    i0: f64,
    ub: f64,
    lb_min: f64,
}

/// Work counters for one Increm-Infl round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncremStats {
    /// Samples in the uncleaned pool this round.
    pub pool: usize,
    /// Samples surviving the bound-based pruning (whose influence was
    /// evaluated exactly).
    pub candidates: usize,
}

/// The Increm-Infl sample selector state.
#[derive(Debug, Clone)]
pub struct IncremInfl {
    provenance: Provenance,
    /// Multiplier on the half-width of the Theorem 1 interval (1 = exact
    /// paper bounds).
    pub slack: f64,
}

/// An owned, serializable copy of the full Increm-Infl state: the frozen
/// `w⁽⁰⁾` provenance of the initialization step plus the bound-slack
/// knob. Produced by [`IncremInfl::snapshot`] and consumed by
/// [`IncremInfl::from_snapshot`]; the checkpoint subsystem stores the
/// matrix fields in its binary payload so a resumed run prunes with
/// bit-identical Theorem 1 intervals instead of re-running the
/// initialization step at a different model.
#[derive(Debug, Clone, PartialEq)]
pub struct IncremSnapshot {
    /// Initialization-step parameters `w⁽⁰⁾` (length `num_params`).
    pub w0: Vec<f64>,
    /// Frozen per-sample gradients, row-major `n × num_params`.
    pub grads0: Vec<f64>,
    /// Frozen per-class gradients, row-major `(n·num_classes) × num_params`.
    pub class_grads0: Vec<f64>,
    /// Frozen per-sample Hessian norms (length `n`).
    pub hessian_norms0: Vec<f64>,
    /// Frozen per-class Hessian norms, flat `n·num_classes` sample-major.
    pub class_hessian_norms0: Vec<f64>,
    /// Parameter count `m` (row stride of the gradient buffers).
    pub num_params: usize,
    /// Class count `C` (row-group stride of `class_grads0`).
    pub num_classes: usize,
    /// The [`IncremInfl::slack`] multiplier in effect.
    pub slack: f64,
}

impl IncremSnapshot {
    /// Validate internal length invariants, returning a description of
    /// the first violation. `from_snapshot` calls this so a checkpoint
    /// corrupted in a length-preserving way still fails loudly.
    pub fn validate(&self) -> Result<(), String> {
        let m = self.num_params;
        let c = self.num_classes;
        if m == 0 || c == 0 {
            return Err("IncremSnapshot: zero num_params/num_classes".into());
        }
        if self.w0.len() != m {
            return Err(format!(
                "IncremSnapshot: w0 length {} != {m}",
                self.w0.len()
            ));
        }
        if !self.grads0.len().is_multiple_of(m) {
            return Err("IncremSnapshot: grads0 not a multiple of num_params".into());
        }
        let n = self.grads0.len() / m;
        if self.class_grads0.len() != n * c * m {
            return Err("IncremSnapshot: class_grads0 length mismatch".into());
        }
        if self.hessian_norms0.len() != n {
            return Err("IncremSnapshot: hessian_norms0 length mismatch".into());
        }
        if self.class_hessian_norms0.len() != n * c {
            return Err("IncremSnapshot: class_hessian_norms0 length mismatch".into());
        }
        Ok(())
    }
}

impl IncremInfl {
    /// Initialization step: pre-compute provenance for every training
    /// sample at the initial model `w⁽⁰⁾`.
    ///
    /// With the `parallel` feature (default) and more than one worker
    /// thread, the per-sample rows are computed across the thread pool;
    /// every row is independent (no floating-point reduction), so the
    /// provenance is bit-identical to the serial computation.
    pub fn initialize<M: Model + ?Sized>(model: &M, data: &dyn DatasetStore, w0: &[f64]) -> Self {
        let m = model.num_params();
        let n = data.len();
        // One storage shard at a time: each shard's feature rows are
        // prefetched, swept, and released before the next shard is
        // touched, so an out-of-core store never holds more than one
        // shard resident during the initialization step. Rows are
        // independent (no cross-row reduction), so the slab partition —
        // and the parallel fan-out within a slab — cannot change a bit
        // of the provenance relative to one flat 0..n sweep.
        let bounds = data.shard_boundaries();
        let mut rows: Vec<ProvenanceRow> = Vec::with_capacity(n);
        for (k, win) in bounds.windows(2).enumerate() {
            let (lo, hi) = (win[0], win[1]);
            data.advise_range(lo, hi);
            // Let the store's background worker verify-and-warm the
            // next shard while this one is swept (no-op on in-memory
            // data or serial builds; the sweep's output is independent
            // of whether the hint is honored).
            if k + 2 < bounds.len() {
                data.prefetch_upcoming(bounds[k + 1], bounds[k + 2]);
            }
            #[cfg(feature = "parallel")]
            if hi - lo >= PAR_GRAIN && rayon::current_num_threads() > 1 {
                use rayon::prelude::*;
                let mut slab: Vec<ProvenanceRow> = (lo..hi)
                    .into_par_iter()
                    .map_init(
                        || vec![0.0; m],
                        |g, i| provenance_row(model, data, w0, i, g),
                    )
                    .collect();
                rows.append(&mut slab);
                data.advise_scanned(lo, hi);
                continue;
            }
            let mut g = vec![0.0; m];
            rows.extend((lo..hi).map(|i| provenance_row(model, data, w0, i, &mut g)));
            data.advise_scanned(lo, hi);
        }

        let c_count = model.num_classes();
        let mut grads0 = Vec::with_capacity(n * m);
        let mut class_grads0 = Vec::with_capacity(n * c_count * m);
        let mut hessian_norms0 = Vec::with_capacity(n);
        let mut class_hessian_norms0 = Vec::with_capacity(n * c_count);
        for row in rows {
            grads0.extend_from_slice(&row.grad0);
            class_grads0.extend_from_slice(&row.class_grads0);
            hessian_norms0.push(row.hessian_norm0);
            class_hessian_norms0.extend_from_slice(&row.class_hessian_norms0);
        }
        Self {
            provenance: Provenance {
                w0: w0.to_vec(),
                grads0,
                class_grads0,
                hessian_norms0,
                class_hessian_norms0,
                num_params: m,
                num_classes: c_count,
            },
            slack: 1.0,
        }
    }

    /// The initialization-step parameters `w⁽⁰⁾`.
    pub fn w0(&self) -> &[f64] {
        &self.provenance.w0
    }

    /// Copy the full state into a serializable [`IncremSnapshot`].
    pub fn snapshot(&self) -> IncremSnapshot {
        IncremSnapshot {
            w0: self.provenance.w0.clone(),
            grads0: self.provenance.grads0.clone(),
            class_grads0: self.provenance.class_grads0.clone(),
            hessian_norms0: self.provenance.hessian_norms0.clone(),
            class_hessian_norms0: self.provenance.class_hessian_norms0.clone(),
            num_params: self.provenance.num_params,
            num_classes: self.provenance.num_classes,
            slack: self.slack,
        }
    }

    /// Rebuild the selector state from a snapshot (the inverse of
    /// [`Self::snapshot`]): byte-for-byte the same provenance, so the
    /// bound pass of a resumed run is bit-identical to the original.
    ///
    /// # Errors
    /// Returns the violated invariant if the snapshot's buffer lengths
    /// are inconsistent (e.g. a corrupt checkpoint).
    pub fn from_snapshot(snap: IncremSnapshot) -> Result<Self, String> {
        snap.validate()?;
        Ok(Self {
            provenance: Provenance {
                w0: snap.w0,
                grads0: snap.grads0,
                class_grads0: snap.class_grads0,
                hessian_norms0: snap.hessian_norms0,
                class_hessian_norms0: snap.class_hessian_norms0,
                num_params: snap.num_params,
                num_classes: snap.num_classes,
            },
            slack: snap.slack,
        })
    }

    /// Frozen influence `I₀(z̃, δ_y, γ)` for sample `i` and target class
    /// `class`, given the current influence vector `v_pos = H⁻¹∇F_val`.
    /// (Reference implementation kept for the unit tests; the production
    /// path in [`Self::candidates`] inlines it with hoisted dot products.)
    #[cfg(test)]
    fn frozen_influence(
        &self,
        data: &dyn DatasetStore,
        m: usize,
        v_pos: &[f64],
        i: usize,
        class: usize,
        gamma: f64,
    ) -> f64 {
        let delta = data.label(i).delta_to(class);
        let cg_base = i * self.provenance.num_classes * m;
        let mut acc = 0.0;
        for (c, &d) in delta.iter().enumerate() {
            if d == 0.0 {
                continue;
            }
            let row = &self.provenance.class_grads0[cg_base + c * m..cg_base + (c + 1) * m];
            acc += d * chef_linalg::vector::dot(v_pos, row);
        }
        if gamma < 1.0 {
            let grow = &self.provenance.grads0[i * m..(i + 1) * m];
            acc += (1.0 - gamma) * chef_linalg::vector::dot(v_pos, grow);
        }
        -acc
    }

    /// Evaluate the Theorem 1 interval for one pool sample. The dot
    /// products against the provenance gradients (`g_dot`, `class_dots`)
    /// are hoisted out entirely — [`Self::candidates`] computes them for
    /// the whole pool in blocked [`kernels::gather_matvec`] sweeps —
    /// so everything here is O(C) arithmetic on cached scalars, which is
    /// what makes the bound pass cheap relative to exact influence
    /// evaluation (Appendix E's complexity argument).
    #[allow(clippy::too_many_arguments)]
    fn bound_entry(
        &self,
        data: &dyn DatasetStore,
        e1: f64,
        e2: f64,
        gamma: f64,
        i: usize,
        g_dot: f64,
        class_dots: &[f64],
    ) -> Entry {
        let c_count = class_dots.len();
        let norms = &self.provenance.class_hessian_norms0[i * c_count..(i + 1) * c_count];
        let mu = self.provenance.hessian_norms0[i];
        let gterm = (1.0 - gamma) / 2.0;
        let mut best_i0 = f64::INFINITY;
        let mut best_ub = f64::INFINITY;
        let mut lb_min = f64::INFINITY;
        for c in 0..c_count {
            let delta = data.label(i).delta_to(c);
            let mut acc = 0.0;
            let mut signed = 0.0;
            let mut absolute = 0.0;
            for (k, &d) in delta.iter().enumerate() {
                acc += d * class_dots[k];
                signed += d * norms[k];
                absolute += d.abs() * norms[k];
            }
            if gamma < 1.0 {
                acc += (1.0 - gamma) * g_dot;
            }
            let i0 = -acc;
            let mut lo = 0.5 * (signed * e1 - absolute * e2) + gterm * (e1 - e2) * mu;
            let mut hi = 0.5 * (signed * e1 + absolute * e2) + gterm * (e1 + e2) * mu;
            if self.slack != 1.0 {
                let mid = 0.5 * (lo + hi);
                let half = 0.5 * (hi - lo) * self.slack;
                lo = mid - half;
                hi = mid + half;
            }
            if i0 < best_i0 {
                best_i0 = i0;
                best_ub = i0 + hi;
            }
            lb_min = lb_min.min(i0 + lo);
        }
        Entry {
            index: i,
            i0: best_i0,
            ub: best_ub,
            lb_min,
        }
    }

    /// Algorithm 1: return the candidate set `Z_inf⁽ᵏ⁾ ⊆ pool` that is
    /// guaranteed (under the Hessian-freeze approximation) to contain the
    /// top-`b` most influential samples at `w_k`.
    ///
    /// With the `parallel` feature (default) pools of at least 128
    /// samples run the bound pass across the thread pool; the entries
    /// carry no cross-sample reduction, so the candidate set is
    /// bit-identical to [`Self::candidates_serial`].
    #[allow(clippy::too_many_arguments)]
    pub fn candidates<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        w_k: &[f64],
        v_pos: &[f64],
        pool: &[usize],
        b: usize,
        gamma: f64,
    ) -> (Vec<usize>, IncremStats) {
        self.candidates_impl(model, data, w_k, v_pos, pool, b, gamma, true)
    }

    /// Single-threaded [`Self::candidates`]. Always compiled; used as
    /// the equivalence baseline and by the speedup bench.
    #[allow(clippy::too_many_arguments)]
    pub fn candidates_serial<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        w_k: &[f64],
        v_pos: &[f64],
        pool: &[usize],
        b: usize,
        gamma: f64,
    ) -> (Vec<usize>, IncremStats) {
        self.candidates_impl(model, data, w_k, v_pos, pool, b, gamma, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn candidates_impl<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        w_k: &[f64],
        v_pos: &[f64],
        pool: &[usize],
        b: usize,
        gamma: f64,
        allow_parallel: bool,
    ) -> (Vec<usize>, IncremStats) {
        let m = self.provenance.num_params;
        let c_count = self.provenance.num_classes;
        debug_assert_eq!(m, model.num_params());
        debug_assert_eq!(c_count, model.num_classes());
        let _ = model;
        let dw = chef_linalg::vector::sub(w_k, &self.provenance.w0);
        // v = −v_pos in the paper's convention.
        let e1 = -chef_linalg::vector::dot(v_pos, &dw);
        let e2 = chef_linalg::vector::norm2(v_pos) * chef_linalg::vector::norm2(&dw);

        // Hoist every provenance dot product out of the per-sample loop:
        // one blocked gather-matvec sweep over the pool's frozen
        // gradients and one over its per-class gradient rows. Each output
        // element is a full-length row dot, so the parallel sweep is
        // bit-identical to the serial one; `bound_entry` is then pure
        // O(C) arithmetic per sample.
        let mut g_dots = vec![0.0; pool.len()];
        let mut class_dots = vec![0.0; pool.len() * c_count];
        let class_rows: Vec<usize> = pool
            .iter()
            .flat_map(|&i| i * c_count..(i + 1) * c_count)
            .collect();
        #[cfg(feature = "parallel")]
        let use_parallel_sweep =
            allow_parallel && pool.len() >= PAR_GRAIN && rayon::current_num_threads() > 1;
        #[cfg(not(feature = "parallel"))]
        let use_parallel_sweep = {
            let _ = allow_parallel;
            false
        };
        if use_parallel_sweep {
            kernels::gather_matvec(&self.provenance.grads0, m, pool, v_pos, &mut g_dots);
            kernels::gather_matvec(
                &self.provenance.class_grads0,
                m,
                &class_rows,
                v_pos,
                &mut class_dots,
            );
        } else {
            kernels::gather_matvec_serial(&self.provenance.grads0, m, pool, v_pos, &mut g_dots);
            kernels::gather_matvec_serial(
                &self.provenance.class_grads0,
                m,
                &class_rows,
                v_pos,
                &mut class_dots,
            );
        }

        // Per sample: the best (smallest) frozen influence over classes,
        // with its interval (`bound_entry`), in pool order.
        let mut entries: Vec<Entry> = pool
            .iter()
            .enumerate()
            .map(|(r, &i)| {
                let cd = &class_dots[r * c_count..(r + 1) * c_count];
                self.bound_entry(data, e1, e2, gamma, i, g_dots[r], cd)
            })
            .collect();

        // Top-b smallest I₀ (Algorithm 1 line 3) and the largest upper
        // bound L among them (line 4).
        entries.sort_by(|a, b| a.i0.total_cmp(&b.i0));
        let b_eff = b.min(entries.len());
        let l = entries[..b_eff]
            .iter()
            .map(|e| e.ub)
            .fold(f64::NEG_INFINITY, f64::max);

        // Diagnostic: CHEF_INCREM_DEBUG=1 prints the bound geometry
        // (e₁, e₂, L, I₀/lower-bound quantiles) for tuning runs.
        if std::env::var("CHEF_INCREM_DEBUG").is_ok() {
            let lbs: Vec<f64> = entries.iter().map(|e| e.lb_min).collect();
            let i0s: Vec<f64> = entries.iter().map(|e| e.i0).collect();
            let med = |v: &Vec<f64>| {
                let mut u = v.clone();
                u.sort_by(|a, b| a.total_cmp(b));
                u[u.len() / 2]
            };
            eprintln!(
                "increm dbg: e1={e1:.3e} e2={e2:.3e} L={l:.3e} i0[min={:.3e} med={:.3e}] lb[min={:.3e} med={:.3e}] width_med={:.3e}",
                i0s.iter().cloned().fold(f64::INFINITY, f64::min),
                med(&i0s),
                lbs.iter().cloned().fold(f64::INFINITY, f64::min),
                med(&lbs),
                med(&i0s) - med(&lbs),
            );
        }
        let mut cands: Vec<usize> = entries[..b_eff].iter().map(|e| e.index).collect();
        for e in &entries[b_eff..] {
            if e.lb_min < l {
                cands.push(e.index);
            }
        }
        let stats = IncremStats {
            pool: pool.len(),
            candidates: cands.len(),
        };
        (cands, stats)
    }

    /// Full Increm-Infl round: prune with Algorithm 1, then evaluate Infl
    /// exactly on the candidates and return the top-`b` scores (most
    /// harmful first) plus work counters.
    #[allow(clippy::too_many_arguments)]
    pub fn select<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        w_k: &[f64],
        v_pos: &[f64],
        pool: &[usize],
        b: usize,
        gamma: f64,
    ) -> (Vec<InflScore>, IncremStats) {
        let (cands, stats) = self.candidates(model, data, w_k, v_pos, pool, b, gamma);
        let ranked = rank_infl_top_b_sharded(model, data, w_k, v_pos, &cands, gamma, b);
        (ranked, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::influence::{influence_vector, rank_infl_with_vector, InflConfig};
    use chef_linalg::Matrix;
    use chef_model::{Dataset, LogisticRegression, SoftLabel, WeightedObjective};
    use chef_train::{train, SgdConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn fixture(n: usize, seed: u64) -> (LogisticRegression, WeightedObjective, Dataset, Dataset) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..n {
            let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
            let sign = if c == 1 { 1.0 } else { -1.0 };
            raw.push(sign + rng.gen_range(-1.0..1.0));
            raw.push(sign + rng.gen_range(-1.0..1.0));
            let p = rng.gen_range(0.1..0.9);
            labels.push(SoftLabel::new(vec![p, 1.0 - p]));
            truth.push(Some(c));
        }
        let data = Dataset::new(
            Matrix::from_vec(n, 2, raw),
            labels,
            vec![false; n],
            truth,
            2,
        );
        let mut vraw = Vec::new();
        let mut vlab = Vec::new();
        let mut vtruth = Vec::new();
        for _ in 0..40 {
            let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
            let sign = if c == 1 { 1.0 } else { -1.0 };
            vraw.push(sign + rng.gen_range(-1.0..1.0));
            vraw.push(sign + rng.gen_range(-1.0..1.0));
            vlab.push(SoftLabel::onehot(c, 2));
            vtruth.push(Some(c));
        }
        let val = Dataset::new(
            Matrix::from_vec(40, 2, vraw),
            vlab,
            vec![true; 40],
            vtruth,
            2,
        );
        (
            LogisticRegression::new(2, 2),
            WeightedObjective::new(0.8, 0.05),
            data,
            val,
        )
    }

    fn fit(
        model: &LogisticRegression,
        obj: &WeightedObjective,
        data: &dyn DatasetStore,
        epochs: usize,
        seed: u64,
    ) -> Vec<f64> {
        let cfg = SgdConfig {
            lr: 0.1,
            epochs,
            batch_size: 50,
            seed,
            cache_provenance: false,
        };
        let w0 = vec![0.0; chef_model::Model::num_params(model)];
        train(model, obj, data, &w0, &cfg).w
    }

    #[test]
    fn at_w0_bounds_are_tight_and_candidates_minimal() {
        let (model, obj, data, val) = fixture(80, 1);
        let w0 = fit(&model, &obj, &data, 20, 3);
        let inc = IncremInfl::initialize(&model, &data, &w0);
        let v = influence_vector(&model, &obj, &data, &val, &w0, &InflConfig::default());
        let pool = data.uncleaned_indices();
        let (cands, stats) = inc.candidates(&model, &data, &w0, &v, &pool, 5, obj.gamma);
        // At w_k = w0, e1 = e2 = 0 → intervals are points → only exact
        // ties can join the top-5.
        assert!(stats.candidates <= 7, "candidates {}", stats.candidates);
        assert_eq!(cands.len(), stats.candidates);
        assert_eq!(stats.pool, 80);
    }

    #[test]
    fn frozen_influence_matches_exact_at_w0() {
        let (model, obj, data, val) = fixture(50, 2);
        let w0 = fit(&model, &obj, &data, 20, 4);
        let inc = IncremInfl::initialize(&model, &data, &w0);
        let v = influence_vector(&model, &obj, &data, &val, &w0, &InflConfig::default());
        let exact = rank_infl_with_vector(&model, &data, &w0, &v, &[3, 7, 11], obj.gamma);
        for s in exact {
            let frozen = inc.frozen_influence(
                &data,
                chef_model::Model::num_params(&model),
                &v,
                s.index,
                s.suggested,
                obj.gamma,
            );
            assert!(
                (frozen - s.score).abs() < 1e-10,
                "sample {}: frozen {frozen} vs exact {}",
                s.index,
                s.score
            );
        }
    }

    #[test]
    fn increm_returns_same_top_b_as_full_after_drift() {
        // The paper's Exp2 correctness claim: Increm-Infl always returns
        // the same influential set as the Full evaluation.
        let (model, obj, data, val) = fixture(150, 3);
        let w0 = fit(&model, &obj, &data, 15, 5);
        let inc = IncremInfl::initialize(&model, &data, &w0);
        // Drift: continue training for a few more epochs.
        let w_k = {
            let cfg = SgdConfig {
                lr: 0.05,
                epochs: 4,
                batch_size: 50,
                seed: 9,
                cache_provenance: false,
            };
            train(&model, &obj, &data, &w0, &cfg).w
        };
        let v = influence_vector(&model, &obj, &data, &val, &w_k, &InflConfig::default());
        let pool = data.uncleaned_indices();
        let b = 10;
        let (inc_top, stats) = inc.select(&model, &data, &w_k, &v, &pool, b, obj.gamma);
        let mut full = rank_infl_with_vector(&model, &data, &w_k, &v, &pool, obj.gamma);
        full.truncate(b);
        let inc_set: Vec<usize> = inc_top.iter().map(|s| s.index).collect();
        let full_set: Vec<usize> = full.iter().map(|s| s.index).collect();
        assert_eq!(inc_set, full_set, "stats: {stats:?}");
        // And the pruning actually pruned something.
        assert!(stats.candidates < stats.pool, "stats: {stats:?}");
    }

    #[test]
    fn candidate_set_always_contains_true_top_b() {
        for seed in 0..5 {
            let (model, obj, data, val) = fixture(100, 10 + seed);
            let w0 = fit(&model, &obj, &data, 10, seed);
            let inc = IncremInfl::initialize(&model, &data, &w0);
            let w_k = {
                let cfg = SgdConfig {
                    lr: 0.08,
                    epochs: 3,
                    batch_size: 25,
                    seed: seed + 100,
                    cache_provenance: false,
                };
                train(&model, &obj, &data, &w0, &cfg).w
            };
            let v = influence_vector(&model, &obj, &data, &val, &w_k, &InflConfig::default());
            let pool = data.uncleaned_indices();
            let (cands, _) = inc.candidates(&model, &data, &w_k, &v, &pool, 5, obj.gamma);
            let mut full = rank_infl_with_vector(&model, &data, &w_k, &v, &pool, obj.gamma);
            full.truncate(5);
            for s in &full {
                assert!(
                    cands.contains(&s.index),
                    "seed {seed}: true top-b sample {} pruned away",
                    s.index
                );
            }
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let (model, obj, data, val) = fixture(60, 5);
        let w0 = fit(&model, &obj, &data, 10, 7);
        let mut inc = IncremInfl::initialize(&model, &data, &w0);
        inc.slack = 1.5;
        let snap = inc.snapshot();
        let restored = IncremInfl::from_snapshot(snap.clone()).unwrap();
        assert_eq!(restored.snapshot(), snap);
        // The restored selector produces the identical candidate set.
        let v = influence_vector(&model, &obj, &data, &val, &w0, &InflConfig::default());
        let pool = data.uncleaned_indices();
        let (a, _) = inc.candidates(&model, &data, &w0, &v, &pool, 5, obj.gamma);
        let (b, _) = restored.candidates(&model, &data, &w0, &v, &pool, 5, obj.gamma);
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_validation_rejects_inconsistent_lengths() {
        let (model, obj, data, _) = fixture(20, 6);
        let w0 = fit(&model, &obj, &data, 5, 8);
        let inc = IncremInfl::initialize(&model, &data, &w0);
        let mut snap = inc.snapshot();
        snap.hessian_norms0.pop();
        assert!(IncremInfl::from_snapshot(snap).is_err());
    }

    #[test]
    fn slack_widens_candidates() {
        let (model, obj, data, val) = fixture(120, 4);
        let w0 = fit(&model, &obj, &data, 10, 6);
        let mut inc = IncremInfl::initialize(&model, &data, &w0);
        let w_k = {
            let cfg = SgdConfig {
                lr: 0.05,
                epochs: 2,
                batch_size: 40,
                seed: 12,
                cache_provenance: false,
            };
            train(&model, &obj, &data, &w0, &cfg).w
        };
        let v = influence_vector(&model, &obj, &data, &val, &w_k, &InflConfig::default());
        let pool = data.uncleaned_indices();
        let (_, tight) = inc.candidates(&model, &data, &w_k, &v, &pool, 5, obj.gamma);
        inc.slack = 3.0;
        let (_, wide) = inc.candidates(&model, &data, &w_k, &v, &pool, 5, obj.gamma);
        assert!(wide.candidates >= tight.candidates);
    }
}
