//! **Infl** — the paper's modified influence function (Eq. 6).
//!
//! For an uncleaned sample `z̃` and a candidate deterministic label `c`
//! with perturbation `δ_y = onehot(c) − ỹ`, Infl estimates the change in
//! validation loss caused by *cleaning* (changing the label **and**
//! up-weighting the sample from γ to 1):
//!
//! ```text
//! I_pert(z̃, δ_y, γ) = −∇F(w, Z_val)ᵀ H⁻¹(w) [∇_y∇_w F(w, z̃) δ_y
//!                                            + (1 − γ) ∇_w F(w, z̃)]
//! ```
//!
//! A *negative* value means cleaning `z̃` to class `c` would reduce the
//! validation loss, so the most negative (sample, class) pairs are both
//! the cleaning priorities and the suggested labels. The Hessian-inverse
//! product is formed once per round with conjugate gradients over
//! Hessian-vector products (§4.1.1) and reused for every sample, so a
//! full pass costs one CG solve plus `C` per-class gradients per sample.

use chef_linalg::cg::{conjugate_gradient, conjugate_gradient_from, CgConfig};
use chef_linalg::{vector, Workspace};
#[cfg(test)]
use chef_model::Dataset;
use chef_model::{DatasetStore, Model, WeightedObjective};
use std::cmp::Ordering;

/// Configuration for influence computations.
#[derive(Debug, Clone, Copy)]
pub struct InflConfig {
    /// Conjugate-gradient settings for the `H⁻¹v` solve.
    pub cg: CgConfig,
    /// Subsample the training-set Hessian to at most this many samples
    /// for the CG solve (0 disables subsampling). This is the standard
    /// stochastic-estimation trick of Koh & Liang; without it the CG
    /// phase would dwarf the gradient phase that Exp2 isolates.
    pub hessian_batch: usize,
    /// Seed for the Hessian subsample.
    pub seed: u64,
}

impl Default for InflConfig {
    fn default() -> Self {
        Self {
            cg: CgConfig {
                max_iters: 100,
                tol: 1e-7,
                damping: 0.0,
            },
            hessian_batch: 2048,
            seed: 0x1f1,
        }
    }
}

impl InflConfig {
    /// The configuration for cleaning round `round`: identical CG
    /// settings, but the Hessian-subsample seed deterministically mixed
    /// with the round index (splitmix64's odd multiplier) so each round
    /// sketches a *different* subset of training rows. Round 0 leaves
    /// the base seed unchanged, so single-shot callers are unaffected.
    pub fn for_round(&self, round: usize) -> Self {
        Self {
            seed: self.seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..*self
        }
    }
}

/// The influence of cleaning one sample to its best candidate label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InflScore {
    /// Training-set index of the sample.
    pub index: usize,
    /// The deterministic label whose perturbation minimizes Eq. 6 — the
    /// label Infl suggests to the annotators.
    pub suggested: usize,
    /// The minimized influence value (most negative = most harmful).
    pub score: f64,
}

/// Result of the once-per-round `H⁻¹ ∇F_val` solve, with the CG cost
/// counters the telemetry layer reports (`hvp_evals` in telemetry.v1).
#[derive(Debug, Clone)]
pub struct InflVectorOutcome {
    /// The influence vector `v = H⁻¹(w) ∇F(w, Z_val)`.
    pub v: Vec<f64>,
    /// Conjugate-gradient iterations the solve took.
    pub cg_iters: usize,
    /// Whether CG hit its residual tolerance within the iteration budget.
    pub cg_converged: bool,
    /// Hessian-vector products applied (the solve's dominant cost).
    pub hvp_evals: usize,
    /// Whether the Hessian was subsampled to `cfg.hessian_batch` rows.
    pub hessian_subsampled: bool,
}

/// Compute `v = H⁻¹(w) ∇F(w, Z_val)` — shared by Infl, Infl-D and Infl-Y.
///
/// The sign convention follows the paper's `vᵀ = −∇F_valᵀ H⁻¹` *without*
/// the minus: callers negate where Eq. 6 does.
pub fn influence_vector<M: Model + ?Sized>(
    model: &M,
    objective: &WeightedObjective,
    data: &dyn DatasetStore,
    val: &dyn DatasetStore,
    w: &[f64],
    cfg: &InflConfig,
) -> Vec<f64> {
    influence_vector_outcome(model, objective, data, val, w, cfg).v
}

/// [`influence_vector`] plus the solve's cost counters, for telemetry.
pub fn influence_vector_outcome<M: Model + ?Sized>(
    model: &M,
    objective: &WeightedObjective,
    data: &dyn DatasetStore,
    val: &dyn DatasetStore,
    w: &[f64],
    cfg: &InflConfig,
) -> InflVectorOutcome {
    influence_vector_outcome_from(model, objective, data, val, w, cfg, None)
}

/// [`influence_vector_outcome`] with an optional warm start for the CG
/// solve. Between cleaning rounds `w` (and hence `H(w)` and `∇F_val`)
/// moves only as far as one small-batch model update, so the previous
/// round's solution `v` is an excellent initial iterate: CG still runs
/// to the *same* fixed residual tolerance and only the iteration count
/// changes. Pass `None` (or a guess of the wrong dimension, which is
/// ignored) for the cold zero start; the warm path costs one extra HVP
/// to form the initial residual, counted in `hvp_evals`.
#[allow(clippy::too_many_arguments)]
pub fn influence_vector_outcome_from<M: Model + ?Sized>(
    model: &M,
    objective: &WeightedObjective,
    data: &dyn DatasetStore,
    val: &dyn DatasetStore,
    w: &[f64],
    cfg: &InflConfig,
    warm_start: Option<&[f64]>,
) -> InflVectorOutcome {
    let mut val_grad = vec![0.0; model.num_params()];
    objective.val_grad(model, val, w, &mut val_grad);
    let warm = warm_start.filter(|x0| x0.len() == val_grad.len());
    let subsampled = cfg.hessian_batch > 0 && data.len() > cfg.hessian_batch;
    let (out, hvp_evals) = if subsampled {
        let batch = hessian_subsample(data.len(), cfg.hessian_batch, cfg.seed);
        let op = objective.hessian_operator_on(model, data, w, batch);
        let out = match warm {
            Some(x0) => conjugate_gradient_from(&op, &val_grad, x0, &cfg.cg),
            None => conjugate_gradient(&op, &val_grad, &cfg.cg),
        };
        (out, op.applies())
    } else {
        let op = objective.hessian_operator(model, data, w);
        let out = match warm {
            Some(x0) => conjugate_gradient_from(&op, &val_grad, x0, &cfg.cg),
            None => conjugate_gradient(&op, &val_grad, &cfg.cg),
        };
        (out, op.applies())
    };
    InflVectorOutcome {
        v: out.x,
        cg_iters: out.iters,
        cg_converged: out.converged,
        hvp_evals,
        hessian_subsampled: subsampled,
    }
}

/// Deterministic uniform subsample of `k` out of `n` indices.
fn hessian_subsample(n: usize, k: usize, seed: u64) -> Vec<usize> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(k);
    idx
}

/// Evaluate Eq. 6 for one sample and one candidate label, given the
/// precomputed influence vector `v = H⁻¹ ∇F_val`.
///
/// `I_pert = −vᵀ [∇_y∇_wF · δ_y + (1−γ) ∇_wF]`, where column `c` of
/// `∇_y∇_wF` is the per-class gradient `−∇_w log p⁽ᶜ⁾` (Eq. 9), so the
/// matrix-vector product is evaluated class-by-class without ever
/// materializing the `m × C` matrix.
#[allow(clippy::too_many_arguments)]
pub fn influence_of_label<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    w: &[f64],
    v: &[f64],
    index: usize,
    class: usize,
    gamma: f64,
    scratch: &mut InflScratch,
) -> f64 {
    let x = data.feature(index);
    let y = data.label(index);
    let delta = y.delta_to(class);
    let mut acc = 0.0;
    for (c, &d) in delta.iter().enumerate() {
        if d == 0.0 {
            continue;
        }
        model.class_grad(w, x, c, &mut scratch.grad);
        acc += d * vector::dot(v, &scratch.grad);
    }
    if gamma < 1.0 {
        model.grad(w, x, y, &mut scratch.grad);
        acc += (1.0 - gamma) * vector::dot(v, &scratch.grad);
    }
    -acc
}

/// Reusable gradient buffer for influence evaluations.
#[derive(Debug, Clone)]
pub struct InflScratch {
    grad: Vec<f64>,
}

impl InflScratch {
    /// Allocate scratch for a model.
    pub fn new<M: Model + ?Sized>(model: &M) -> Self {
        Self {
            grad: vec![0.0; model.num_params()],
        }
    }
}

/// Score every index in `candidates` with Infl, returning results sorted
/// ascending by score (most harmful first).
///
/// This is the "Full" evaluation path of the paper's Exp2; Increm-Infl
/// narrows `candidates` before calling it.
pub fn rank_infl<M: Model + ?Sized>(
    model: &M,
    objective: &WeightedObjective,
    data: &dyn DatasetStore,
    val: &dyn DatasetStore,
    w: &[f64],
    candidates: &[usize],
    cfg: &InflConfig,
) -> Vec<InflScore> {
    let v = influence_vector(model, objective, data, val, w, cfg);
    rank_infl_with_vector(model, data, w, &v, candidates, objective.gamma)
}

/// Minimum number of candidates before [`rank_infl_with_vector`] fans
/// scoring out over the thread pool. Each candidate costs `C + 1` dense
/// gradient dot products, so a lower grain than chef-model's
/// accumulation gate pays off. Length-only, so the chosen code path is
/// machine-independent.
#[cfg(feature = "parallel")]
const PAR_GRAIN: usize = 128;

/// Candidates per [`Model::score_block`] call. Sized so one block's GEMM
/// panels (`block × d` features, `block × C` probabilities and dots)
/// stay cache-resident while still amortizing the panel setup.
const SCORE_BLOCK: usize = 256;

/// Deterministic total order on scores: ascending score (most harmful
/// first), ties broken by training-set index. Using the index — rather
/// than position in the candidate slice — makes the ranking independent
/// of candidate order, so Increm-Infl's pruned pool and the full pool
/// sort tied samples identically.
fn cmp_scores(a: &InflScore, b: &InflScore) -> Ordering {
    a.score.total_cmp(&b.score).then(a.index.cmp(&b.index))
}

/// Score one block of candidates through [`Model::score_block`] and push
/// the per-sample best-class scores onto `out`.
///
/// Per sample the block kernel hands back `vᵀ∇_w(−log p⁽ᶜ⁾)` for every
/// class plus `vᵀ∇_wF`; Eq. 6 for candidate class `c` is then
/// `−((cd[c] − ỹᵀcd) + (1−γ)·ld)` — the `δ_y = onehot(c) − ỹ` contraction
/// costs O(C) total because the `ỹᵀcd` term is shared by all classes.
/// The best class is chosen by strict `<`, first class on ties, matching
/// [`score_candidate`].
#[allow(clippy::too_many_arguments)]
fn score_block_into<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    w: &[f64],
    v: &[f64],
    block: &[usize],
    gamma: f64,
    ws: &mut Workspace,
    out: &mut Vec<InflScore>,
) {
    let c = model.num_classes();
    let mut class_dots = ws.take_uninit(block.len() * c);
    let mut label_dots = ws.take_uninit(block.len());
    model.score_block(w, data, block, v, &mut class_dots, &mut label_dots, ws);
    for (r, &i) in block.iter().enumerate() {
        let cd = &class_dots[r * c..(r + 1) * c];
        let mut ydot = 0.0;
        for (k, &p) in data.label(i).probs().iter().enumerate() {
            ydot += p * cd[k];
        }
        let upweight = if gamma < 1.0 {
            (1.0 - gamma) * label_dots[r]
        } else {
            0.0
        };
        let mut best_class = 0;
        let mut best = f64::INFINITY;
        for (k, &cdk) in cd.iter().enumerate() {
            let s = -((cdk - ydot) + upweight);
            if s < best {
                best = s;
                best_class = k;
            }
        }
        out.push(InflScore {
            index: i,
            suggested: best_class,
            score: best,
        });
    }
    ws.put(label_dots);
    ws.put(class_dots);
}

/// Score every candidate through the blocked kernel path, unsorted, in
/// candidate order. Parallel builds fan [`SCORE_BLOCK`]-sized blocks out
/// over the thread pool above [`PAR_GRAIN`] candidates — but only on a
/// pool with more than one worker: at one worker the fan-out's
/// per-block workspaces, output vectors and final merge are pure
/// overhead (the cause of the parallel-slower-than-serial rank cells in
/// earlier BENCH_selector.json runs). Each sample's dots are
/// row-independent affine products, so scores are bit-identical to the
/// serial blocked path regardless of block grouping.
fn score_all_blocked<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    w: &[f64],
    v: &[f64],
    candidates: &[usize],
    gamma: f64,
) -> Vec<InflScore> {
    #[cfg(feature = "parallel")]
    if candidates.len() >= PAR_GRAIN && rayon::current_num_threads() > 1 {
        use rayon::prelude::*;
        let nblocks = candidates.len().div_ceil(SCORE_BLOCK);
        let per_block: Vec<Vec<InflScore>> = (0..nblocks)
            .into_par_iter()
            .map_init(Workspace::new, |ws, bi| {
                let lo = bi * SCORE_BLOCK;
                let hi = (lo + SCORE_BLOCK).min(candidates.len());
                let block = &candidates[lo..hi];
                let mut out = Vec::with_capacity(block.len());
                score_block_into(model, data, w, v, block, gamma, ws, &mut out);
                out
            })
            .collect();
        let mut scores = Vec::with_capacity(candidates.len());
        for mut b in per_block {
            scores.append(&mut b);
        }
        return scores;
    }
    let mut ws = Workspace::new();
    let mut scores = Vec::with_capacity(candidates.len());
    for block in candidates.chunks(SCORE_BLOCK) {
        score_block_into(model, data, w, v, block, gamma, &mut ws, &mut scores);
    }
    scores
}

/// Score one candidate: best (most negative) Eq. 6 influence over the
/// `C` class perturbations. Shared by the serial and parallel rankers.
fn score_candidate<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    w: &[f64],
    v: &[f64],
    index: usize,
    gamma: f64,
    scratch: &mut InflScratch,
) -> InflScore {
    let mut best_class = 0;
    let mut best = f64::INFINITY;
    for c in 0..model.num_classes() {
        let s = influence_of_label(model, data, w, v, index, c, gamma, scratch);
        if s < best {
            best = s;
            best_class = c;
        }
    }
    InflScore {
        index,
        suggested: best_class,
        score: best,
    }
}

/// [`rank_infl`] with a precomputed influence vector (lets callers share
/// one CG solve across selector variants).
///
/// Scoring runs through the model's batched [`Model::score_block`]
/// kernel in `SCORE_BLOCK`-sized blocks; with the `parallel` feature
/// (default), candidate sets of at least `PAR_GRAIN` fan the blocks out
/// over the thread pool. Per-sample dots are row-independent, so scores
/// are bit-identical to the serial blocked path regardless of block
/// grouping or candidate order, and the `(score, index)` sort makes the
/// full ranking deterministic even under exact score ties.
pub fn rank_infl_with_vector<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    w: &[f64],
    v: &[f64],
    candidates: &[usize],
    gamma: f64,
) -> Vec<InflScore> {
    let mut scores = score_all_blocked(model, data, w, v, candidates, gamma);
    scores.sort_unstable_by(cmp_scores);
    scores
}

/// Single-threaded [`rank_infl_with_vector`]. Always compiled; the
/// public entry point produces bit-identical results above the parallel
/// grain size, and the speedup bench calls this directly as the
/// baseline.
pub fn rank_infl_with_vector_serial<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    w: &[f64],
    v: &[f64],
    candidates: &[usize],
    gamma: f64,
) -> Vec<InflScore> {
    let mut ws = Workspace::new();
    let mut scores = Vec::with_capacity(candidates.len());
    for block in candidates.chunks(SCORE_BLOCK) {
        score_block_into(model, data, w, v, block, gamma, &mut ws, &mut scores);
    }
    scores.sort_unstable_by(cmp_scores);
    scores
}

/// Top-`b` variant of [`rank_infl_with_vector`] for callers that only
/// consume a cleaning batch: scores every candidate through the same
/// blocked kernels, then selects the `b` most harmful with an O(n)
/// partial selection (`select_nth_unstable_by`) instead of sorting the
/// full pool, and sorts only those `b`. The `(score, index)` total order
/// makes the result deterministic and exactly equal to
/// `rank_infl_with_vector(..)[..b]`.
pub fn rank_infl_top_b<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    w: &[f64],
    v: &[f64],
    candidates: &[usize],
    gamma: f64,
    b: usize,
) -> Vec<InflScore> {
    let mut scores = score_all_blocked(model, data, w, v, candidates, gamma);
    if b == 0 {
        return Vec::new();
    }
    if b < scores.len() {
        scores.select_nth_unstable_by(b - 1, cmp_scores);
        scores.truncate(b);
    }
    scores.sort_unstable_by(cmp_scores);
    scores
}

/// Sharded [`rank_infl_top_b`]: scores candidates one storage shard at
/// a time, releasing each shard's residency before touching the next,
/// and merges the per-shard top-`b` lists under the same
/// `(score, index)` total order.
///
/// **Determinism argument** (DESIGN.md §15.4): every candidate's score
/// depends only on its own feature row, label and the shared `(w, v)`
/// vectors, never on which shard scored it — the blocked kernels read
/// rows through the same `DatasetStore` surface either way. The global
/// top-`b` under a total order is therefore exactly the top-`b` of the
/// union of per-shard top-`b` lists: any sample ranked inside the
/// global top-`b` is necessarily inside its own shard's top-`b`. The
/// k-way merge compares with `cmp_scores`, whose index tie-break
/// makes the result independent of shard boundaries and shard visit
/// order — bit-identical to `rank_infl_top_b` over the whole pool.
///
/// On a single-shard store (`shard_boundaries() == [0, n]`) this *is*
/// `rank_infl_top_b`, so in-memory callers pay nothing.
pub fn rank_infl_top_b_sharded<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    w: &[f64],
    v: &[f64],
    candidates: &[usize],
    gamma: f64,
    b: usize,
) -> Vec<InflScore> {
    let bounds = data.shard_boundaries();
    if bounds.len() <= 2 {
        return rank_infl_top_b(model, data, w, v, candidates, gamma, b);
    }
    if b == 0 {
        return Vec::new();
    }
    // Partition the candidate pool by shard. Candidates arrive in any
    // order; a per-shard bucket scan keeps this O(n + k).
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); bounds.len() - 1];
    for &i in candidates {
        // bounds is sorted ascending; partition_point finds the shard.
        let s = bounds.partition_point(|&lo| lo <= i) - 1;
        buckets[s].push(i);
    }
    let mut per_shard: Vec<Vec<InflScore>> = Vec::new();
    for (s, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let (lo, hi) = (bounds[s], bounds[s + 1]);
        data.prefetch_rows(bucket);
        // Hand the *next* populated shard to the store's background
        // verify-and-warm worker (a no-op for in-memory data or serial
        // builds) so its I/O overlaps this shard's scoring.
        if let Some(t) = (s + 1..buckets.len()).find(|&t| !buckets[t].is_empty()) {
            data.prefetch_upcoming(bounds[t], bounds[t + 1]);
        }
        per_shard.push(rank_infl_top_b(model, data, w, v, bucket, gamma, b));
        data.advise_scanned(lo, hi);
    }
    merge_top_b(per_shard, b)
}

/// Deterministic k-way merge of `cmp_scores`-sorted lists into the
/// global top-`b`. The comparator is a total order (index tie-break),
/// so the output is independent of the order of `lists`.
fn merge_top_b(lists: Vec<Vec<InflScore>>, b: usize) -> Vec<InflScore> {
    let mut heads = vec![0usize; lists.len()];
    let mut out = Vec::with_capacity(b.min(lists.iter().map(Vec::len).sum()));
    while out.len() < b {
        let mut best: Option<usize> = None;
        for (l, list) in lists.iter().enumerate() {
            if heads[l] >= list.len() {
                continue;
            }
            best = match best {
                None => Some(l),
                Some(k) if cmp_scores(&list[heads[l]], &lists[k][heads[k]]) == Ordering::Less => {
                    Some(l)
                }
                keep => keep,
            };
        }
        let Some(l) = best else { break };
        out.push(lists[l][heads[l]]);
        heads[l] += 1;
    }
    out
}

/// Per-sample reference ranking: the pre-batching implementation, one
/// `C + 1`-gradient `score_candidate` loop per candidate. Kept as the
/// equivalence baseline the batched kernels are tested and benchmarked
/// against (`infl_kernel_equivalence`, the `infl_kernels` bench); not
/// used by the pipeline.
pub fn rank_infl_with_vector_per_sample<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    w: &[f64],
    v: &[f64],
    candidates: &[usize],
    gamma: f64,
) -> Vec<InflScore> {
    let mut scratch = InflScratch::new(model);
    let mut scores: Vec<InflScore> = candidates
        .iter()
        .map(|&i| score_candidate(model, data, w, v, i, gamma, &mut scratch))
        .collect();
    scores.sort_unstable_by(cmp_scores);
    scores
}

/// Direct (no-approximation) estimate of Eq. 6's target quantity: retrain
/// with sample `index` cleaned to `class` (weight 1) and report
/// `N · (F(w_U, Z_val) − F(w, Z_val))`. Used as a ground-truth oracle in
/// tests — it is exactly what the influence function linearizes.
#[cfg(test)]
pub(crate) fn brute_force_influence(
    model: &chef_model::LogisticRegression,
    objective: &WeightedObjective,
    data: &Dataset,
    val: &Dataset,
    index: usize,
    class: usize,
) -> f64 {
    use chef_model::SoftLabel;
    // Minimize both objectives to high precision with full-batch GD.
    let minimize = |d: &Dataset| -> Vec<f64> {
        let mut w = vec![0.0; chef_model::Model::num_params(model)];
        let mut g = vec![0.0; w.len()];
        let idx: Vec<usize> = (0..d.len()).collect();
        for _ in 0..8000 {
            objective.batch_grad(model, d, &idx, &w, &mut g);
            vector::axpy(-0.5, &g, &mut w);
            if vector::norm2(&g) < 1e-10 {
                break;
            }
        }
        w
    };
    let w_orig = minimize(data);
    let mut cleaned = data.clone();
    cleaned.clean_label(index, SoftLabel::onehot(class, data.num_classes()));
    let w_clean = minimize(&cleaned);
    data.len() as f64
        * (objective.val_loss(model, val, &w_clean) - objective.val_loss(model, val, &w_orig))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_linalg::Matrix;
    use chef_model::{LogisticRegression, SoftLabel};
    use chef_train::{train, SgdConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Small weakly-labeled problem where one sample's label is flipped.
    fn fixture(seed: u64) -> (LogisticRegression, WeightedObjective, Dataset, Dataset) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 60;
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        let mut clean = Vec::new();
        let mut truth = Vec::new();
        for i in 0..n {
            let c = usize::from(i % 2 == 1);
            let sign = if c == 1 { 1.0 } else { -1.0 };
            raw.push(sign * 1.2 + rng.gen_range(-0.8..0.8));
            raw.push(sign * 1.2 + rng.gen_range(-0.8..0.8));
            // Mildly informative probabilistic labels.
            let p_true = rng.gen_range(0.55..0.9);
            let l = if c == 1 {
                SoftLabel::new(vec![1.0 - p_true, p_true])
            } else {
                SoftLabel::new(vec![p_true, 1.0 - p_true])
            };
            labels.push(l);
            clean.push(false);
            truth.push(Some(c));
        }
        // Sample 0 gets a confidently *wrong* label: the most harmful one.
        labels[0] = SoftLabel::new(vec![0.02, 0.98]); // truth is class 0
        let data = Dataset::new(Matrix::from_vec(n, 2, raw), labels, clean, truth, 2);

        let mut vraw = Vec::new();
        let mut vlabels = Vec::new();
        let mut vtruth = Vec::new();
        for i in 0..30 {
            let c = usize::from(i % 2 == 1);
            let sign = if c == 1 { 1.0 } else { -1.0 };
            vraw.push(sign * 1.2 + rng.gen_range(-0.8..0.8));
            vraw.push(sign * 1.2 + rng.gen_range(-0.8..0.8));
            vlabels.push(SoftLabel::onehot(c, 2));
            vtruth.push(Some(c));
        }
        let val = Dataset::new(
            Matrix::from_vec(30, 2, vraw),
            vlabels,
            vec![true; 30],
            vtruth,
            2,
        );
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.8, 0.1);
        (model, obj, data, val)
    }

    fn fit(model: &LogisticRegression, obj: &WeightedObjective, data: &Dataset) -> Vec<f64> {
        let cfg = SgdConfig {
            lr: 0.2,
            epochs: 60,
            batch_size: 60,
            seed: 5,
            cache_provenance: false,
        };
        let w0 = vec![0.0; chef_model::Model::num_params(model)];
        train(model, obj, data, &w0, &cfg).w
    }

    #[test]
    fn influence_vector_solves_hessian_system() {
        let (model, obj, data, val) = fixture(1);
        let w = fit(&model, &obj, &data);
        let v = influence_vector(&model, &obj, &data, &val, &w, &InflConfig::default());
        // H v must equal ∇F_val.
        let mut hv = vec![0.0; v.len()];
        obj.hvp(&model, &data, &w, &v, &mut hv);
        let mut val_grad = vec![0.0; v.len()];
        obj.val_grad(&model, &val, &w, &mut val_grad);
        for (a, b) in hv.iter().zip(&val_grad) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn flipped_sample_is_ranked_most_harmful() {
        let (model, obj, data, val) = fixture(2);
        let w = fit(&model, &obj, &data);
        let all: Vec<usize> = data.uncleaned_indices();
        let ranked = rank_infl(&model, &obj, &data, &val, &w, &all, &InflConfig::default());
        // The poisoned sample 0 should appear very near the top.
        let pos = ranked.iter().position(|s| s.index == 0).unwrap();
        assert!(pos < 5, "poisoned sample ranked {pos}");
        // And the suggested label must be its ground truth (class 0).
        assert_eq!(ranked[pos].suggested, 0);
    }

    #[test]
    fn scores_are_sorted_ascending() {
        let (model, obj, data, val) = fixture(3);
        let w = fit(&model, &obj, &data);
        let all = data.uncleaned_indices();
        let ranked = rank_infl(&model, &obj, &data, &val, &w, &all, &InflConfig::default());
        for pair in ranked.windows(2) {
            assert!(pair[0].score <= pair[1].score);
        }
        assert_eq!(ranked.len(), all.len());
    }

    #[test]
    fn influence_approximates_brute_force_retraining() {
        // The headline correctness property: Eq. 6 linearizes the actual
        // change in validation loss under clean-and-upweight.
        let (model, obj, data, val) = fixture(4);
        // Use the exact minimizer so the influence function's stationarity
        // assumption holds.
        let w = {
            let idx: Vec<usize> = (0..data.len()).collect();
            let mut w = vec![0.0; chef_model::Model::num_params(&model)];
            let mut g = vec![0.0; w.len()];
            for _ in 0..8000 {
                obj.batch_grad(&model, &data, &idx, &w, &mut g);
                vector::axpy(-0.5, &g, &mut w);
            }
            w
        };
        let v = influence_vector(&model, &obj, &data, &val, &w, &InflConfig::default());
        let mut scratch = InflScratch::new(&model);
        for &(index, class) in &[(0usize, 0usize), (2, 1), (7, 0)] {
            let predicted =
                influence_of_label(&model, &data, &w, &v, index, class, obj.gamma, &mut scratch);
            let actual = brute_force_influence(&model, &obj, &data, &val, index, class);
            // First-order estimates: agree in sign and magnitude scale.
            assert!(
                (predicted - actual).abs() < 0.35 * actual.abs().max(0.25),
                "sample {index}→{class}: predicted {predicted}, actual {actual}"
            );
        }
    }

    #[test]
    fn blocked_ranking_matches_per_sample_reference() {
        let (model, obj, data, val) = fixture(6);
        let w = fit(&model, &obj, &data);
        let v = influence_vector(&model, &obj, &data, &val, &w, &InflConfig::default());
        let all = data.uncleaned_indices();
        let blocked = rank_infl_with_vector(&model, &data, &w, &v, &all, obj.gamma);
        let serial = rank_infl_with_vector_serial(&model, &data, &w, &v, &all, obj.gamma);
        let reference = rank_infl_with_vector_per_sample(&model, &data, &w, &v, &all, obj.gamma);
        assert_eq!(blocked.len(), reference.len());
        for (b, s) in blocked.iter().zip(&serial) {
            // Blocked parallel and blocked serial are bit-identical.
            assert_eq!(b.index, s.index);
            assert_eq!(b.suggested, s.suggested);
            assert_eq!(b.score.to_bits(), s.score.to_bits());
        }
        for (b, r) in blocked.iter().zip(&reference) {
            assert_eq!(b.index, r.index);
            assert_eq!(b.suggested, r.suggested);
            assert!(
                (b.score - r.score).abs() <= 1e-10 * (1.0 + r.score.abs()),
                "index {}: blocked {} vs per-sample {}",
                b.index,
                b.score,
                r.score
            );
        }
    }

    #[test]
    fn top_b_equals_full_ranking_prefix() {
        let (model, obj, data, val) = fixture(7);
        let w = fit(&model, &obj, &data);
        let v = influence_vector(&model, &obj, &data, &val, &w, &InflConfig::default());
        let all = data.uncleaned_indices();
        let full = rank_infl_with_vector(&model, &data, &w, &v, &all, obj.gamma);
        for b in [0, 1, 5, all.len(), all.len() + 10] {
            let top = rank_infl_top_b(&model, &data, &w, &v, &all, obj.gamma, b);
            let want = &full[..b.min(full.len())];
            assert_eq!(top.len(), want.len(), "b = {b}");
            for (t, f) in top.iter().zip(want) {
                assert_eq!(t.index, f.index, "b = {b}");
                assert_eq!(t.suggested, f.suggested);
                assert_eq!(t.score.to_bits(), f.score.to_bits());
            }
        }
    }

    #[test]
    fn cmp_scores_totally_orders_non_finite_scores() {
        let s = |score: f64, index: usize| InflScore {
            index,
            suggested: 0,
            score,
        };
        let mut scores = vec![
            s(f64::NAN, 9),
            s(f64::INFINITY, 8),
            s(0.0, 7),
            s(f64::NEG_INFINITY, 6),
            s(-1.0, 5),
            s(f64::NAN, 1),
            s(-f64::NAN, 3),
        ];
        scores.sort_unstable_by(cmp_scores);
        let order: Vec<usize> = scores.iter().map(|x| x.index).collect();
        // `total_cmp` ordering: −NaN < −∞ < −1 < 0 < +∞ < +NaN, with
        // equal-bit NaNs tie-broken by training-set index (1 before 9).
        assert_eq!(order, vec![3, 6, 5, 7, 8, 1, 9]);
        // The comparator is a total order even on NaN: antisymmetric
        // and never Equal for distinct indices.
        for a in &scores {
            for b in &scores {
                if a.index == b.index {
                    assert_eq!(cmp_scores(a, b), Ordering::Equal);
                } else {
                    assert_eq!(cmp_scores(a, b), cmp_scores(b, a).reverse());
                    assert_ne!(cmp_scores(a, b), Ordering::Equal);
                }
            }
        }
    }

    #[test]
    fn non_finite_scores_rank_deterministically_and_match_serial() {
        // An influence vector with ±∞ rows drives some score dots to
        // ±∞ and (via ∞ − ∞) NaN; the (total_cmp, index) order must
        // keep the ranking deterministic, serial/parallel-identical,
        // and top-b-consistent even then.
        let (model, obj, data, _val) = fixture(8);
        let m = chef_model::Model::num_params(&model);
        let w = vec![0.0; m];
        let mut v = vec![1.0; m];
        v[0] = f64::INFINITY;
        v[m - 1] = f64::NEG_INFINITY;
        // Three copies of the pool cross the parallel grain (128).
        let mut candidates = Vec::new();
        for _ in 0..3 {
            candidates.extend(data.uncleaned_indices());
        }
        let full = rank_infl_with_vector(&model, &data, &w, &v, &candidates, obj.gamma);
        assert!(
            full.iter().any(|s| !s.score.is_finite()),
            "fixture failed to produce non-finite scores"
        );
        let serial = rank_infl_with_vector_serial(&model, &data, &w, &v, &candidates, obj.gamma);
        assert_eq!(full.len(), serial.len());
        for (a, b) in full.iter().zip(&serial) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.suggested, b.suggested);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        // The ranking is a cmp_scores-sorted sequence (NaNs at the end,
        // not interleaved), and top-b is exactly its prefix.
        for pair in full.windows(2) {
            assert_ne!(cmp_scores(&pair[0], &pair[1]), Ordering::Greater);
        }
        for b in [1, 7, 130, candidates.len()] {
            let top = rank_infl_top_b(&model, &data, &w, &v, &candidates, obj.gamma, b);
            assert_eq!(top.len(), b.min(candidates.len()), "b = {b}");
            for (t, f) in top.iter().zip(&full) {
                assert_eq!(t.index, f.index, "b = {b}");
                assert_eq!(t.suggested, f.suggested);
                assert_eq!(t.score.to_bits(), f.score.to_bits());
            }
        }
    }

    #[test]
    fn for_round_mixes_seed_deterministically() {
        let base = InflConfig::default();
        // Round 0 is the identity: single-shot callers see the old seed.
        assert_eq!(base.for_round(0).seed, base.seed);
        // Later rounds change the seed, deterministically and distinctly.
        let seeds: Vec<u64> = (0..8).map(|r| base.for_round(r).seed).collect();
        for (r, &s) in seeds.iter().enumerate() {
            assert_eq!(s, base.for_round(r).seed, "round {r} not deterministic");
            for (r2, &s2) in seeds.iter().enumerate().skip(r + 1) {
                assert_ne!(s, s2, "rounds {r} and {r2} share a Hessian sketch seed");
            }
        }
        // Everything but the seed is untouched.
        let r3 = base.for_round(3);
        assert_eq!(r3.cg.max_iters, base.cg.max_iters);
        assert_eq!(r3.hessian_batch, base.hessian_batch);
        // And the subsample it induces differs from round 0's.
        let a = hessian_subsample(500, 32, base.for_round(0).seed);
        let b = hessian_subsample(500, 32, base.for_round(1).seed);
        assert_ne!(a, b, "round 1 resampled the same Hessian sketch");
    }

    #[test]
    fn gamma_one_removes_upweight_term() {
        // With γ = 1 Infl reduces to the pure label-change influence of
        // Eq. 7 (Infl-Y) — cleaning to the label's own argmax of a
        // deterministic label has zero influence.
        let (model, obj, mut data, val) = fixture(5);
        let obj1 = WeightedObjective::new(1.0, obj.l2);
        data.set_label(3, SoftLabel::onehot(1, 2));
        let w = fit(&model, &obj1, &data);
        let v = influence_vector(&model, &obj1, &data, &val, &w, &InflConfig::default());
        let mut scratch = InflScratch::new(&model);
        let s = influence_of_label(&model, &data, &w, &v, 3, 1, 1.0, &mut scratch);
        assert!(s.abs() < 1e-12, "influence {s}");
        let _ = obj;
    }
}
