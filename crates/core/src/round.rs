//! The resumable round state machine behind [`Pipeline`] (DESIGN.md §16).
//!
//! The cleaning loop of Figure 1 has exactly one blocking edge: the
//! human-annotation phase. [`RoundLoop`] cuts the loop at that edge and
//! turns it into an explicit state machine — [`RoundLoop::next_batch`]
//! runs the selector and *yields* an [`AnnotationBatch`] instead of
//! calling the annotators, and [`RoundLoop::provide`] accepts the
//! outcomes (from any annotation source: the in-process simulated panel,
//! a `chef-serve` annotator host, or an abstain-everything timeout) and
//! runs the model-constructor, evaluation, telemetry and checkpoint
//! phases.
//!
//! The synchronous [`Pipeline::run`] / [`Pipeline::resume`] API is
//! reimplemented *on top of* this machine — one code path — so a caller
//! that answers every batch with
//! [`AnnotationPhase::decide_batch`](crate::annotation::AnnotationPhase::decide_batch)
//! outcomes reproduces the blocking loop bit-for-bit. That equivalence is
//! what lets `chef-serve` interleave many jobs, deliver replies out of
//! order, and still assert its final reports against `Pipeline::run`.

use crate::annotation::{AnnotationOutcome, AnnotationStats};
use crate::constructor::{ConstructorKind, ModelConstructor};
use crate::metrics::evaluate_f1;
use crate::pipeline::{record_round_counters, Pipeline, RoundReport, StorePipelineReport};
use crate::selector::{SampleSelector, Selection, SelectorContext};
use chef_model::{DatasetStore, LabelOverlay, Model};
use chef_obs::{AnnotationTelemetry, ConstructorTelemetry, RoundTelemetry, SelectorTelemetry};
use chef_train::{select_early_stop, TrainTrace};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// One sample awaiting annotation, with everything an external annotator
/// needs: batches are self-contained snapshots, so annotator hosts never
/// touch the training store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchItem {
    /// Row index in the training store.
    pub index: usize,
    /// The selector's suggested label, if its strategy produces one.
    pub suggested: Option<usize>,
    /// Recorded ground truth, if any — feeds the *simulated* human
    /// annotators exactly as [`DatasetStore::ground_truth`] feeds the
    /// synchronous phase. A real deployment would drop this field.
    pub truth: Option<usize>,
}

/// The batch of samples one round hands to its annotation source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationBatch {
    /// 0-based round that selected this batch.
    pub round: usize,
    /// Class count of the training store (vote space of the panel).
    pub num_classes: usize,
    /// Selected samples, in selection (ranking) order.
    pub items: Vec<BatchItem>,
}

impl AnnotationBatch {
    /// The selections this batch was built from, in order.
    pub fn selections(&self) -> Vec<Selection> {
        self.items
            .iter()
            .map(|it| Selection {
                index: it.index,
                suggested: it.suggested,
            })
            .collect()
    }
}

/// What [`RoundLoop::next_batch`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundStep {
    /// A batch was selected; the loop is parked until
    /// [`RoundLoop::provide`] delivers its outcomes.
    Awaiting(AnnotationBatch),
    /// The loop is finished: budget spent, pool drained, quality target
    /// hit, or an injected crash was honored. Call [`RoundLoop::finish`].
    Done,
}

/// Everything the cleaning loop carries across rounds — by construction,
/// exactly the state a [`crate::Checkpoint`] must persist for
/// [`Pipeline::resume`] to continue bit-identically.
pub(crate) struct LoopState {
    pub(crate) w_raw: Vec<f64>,
    pub(crate) w_eval: Vec<f64>,
    pub(crate) trace: TrainTrace,
    pub(crate) attempted: HashSet<usize>,
    pub(crate) rounds: Vec<RoundReport>,
    pub(crate) spent: usize,
    pub(crate) cleaned_total: usize,
    pub(crate) early_terminated: bool,
    pub(crate) round: usize,
    pub(crate) initial_val_f1: f64,
    pub(crate) initial_test_f1: f64,
    pub(crate) init_time: Duration,
}

/// The select phase's output, parked while the batch is out for
/// annotation.
struct PendingRound {
    selections: Vec<Selection>,
    /// Pre-annotation labels of the selected samples (DeltaGrad-L Eq. 4).
    prior: LabelOverlay,
    select_time: Duration,
    selector_tel: SelectorTelemetry,
}

/// A [`RoundLoop`] detached from its borrowed resources: plain owned
/// data (`Send`), movable between threads, reattachable with
/// [`Pipeline::reattach_round_loop`].
///
/// This is what makes a cleaning job a *cooperatively schedulable*
/// state machine: `chef-serve`'s pooled scheduler suspends a job at its
/// annotation boundary, hands the worker thread to another tenant, and
/// later reattaches the suspended state on whichever worker picks the
/// job up next. Suspension is lossless — the loop's cross-round state,
/// any outstanding batch's parked select-phase output, and the
/// interrupt flag all travel along — and the constructor is rebuilt at
/// reattach exactly as [`Pipeline::resume`] rebuilds it, which is
/// stateless (`ModelConstructor::update` is `&self`; all cross-round
/// training state lives in the traveling loop state), so a
/// suspended-and-reattached run is bit-identical to an uninterrupted
/// one.
pub struct SuspendedLoop {
    state: LoopState,
    pending: Option<PendingRound>,
    interrupted: bool,
}

impl SuspendedLoop {
    /// 0-based index of the next round to run.
    pub fn round(&self) -> usize {
        self.state.round
    }

    /// Whether a batch was out for annotation at suspension time.
    pub fn awaiting(&self) -> bool {
        self.pending.is_some()
    }
}

/// The cleaning loop with the annotation phase factored out; see the
/// module docs. Obtained from [`Pipeline::round_loop`] or
/// [`Pipeline::resume_round_loop_latest`].
pub struct RoundLoop<'a> {
    pipeline: &'a Pipeline,
    ctor: ModelConstructor,
    model: &'a dyn Model,
    data: &'a mut dyn DatasetStore,
    val: &'a dyn DatasetStore,
    test: &'a dyn DatasetStore,
    selector: &'a mut dyn SampleSelector,
    state: LoopState,
    pending: Option<PendingRound>,
    interrupted: bool,
}

impl<'a> RoundLoop<'a> {
    pub(crate) fn new(
        pipeline: &'a Pipeline,
        model: &'a dyn Model,
        data: &'a mut dyn DatasetStore,
        val: &'a dyn DatasetStore,
        test: &'a dyn DatasetStore,
        selector: &'a mut dyn SampleSelector,
        state: LoopState,
    ) -> Self {
        let ctor = pipeline.constructor();
        Self {
            pipeline,
            ctor,
            model,
            data,
            val,
            test,
            selector,
            state,
            pending: None,
            interrupted: false,
        }
    }

    pub(crate) fn from_suspended(
        pipeline: &'a Pipeline,
        model: &'a dyn Model,
        data: &'a mut dyn DatasetStore,
        val: &'a dyn DatasetStore,
        test: &'a dyn DatasetStore,
        selector: &'a mut dyn SampleSelector,
        suspended: SuspendedLoop,
    ) -> Self {
        let ctor = pipeline.constructor();
        Self {
            pipeline,
            ctor,
            model,
            data,
            val,
            test,
            selector,
            state: suspended.state,
            pending: suspended.pending,
            interrupted: suspended.interrupted,
        }
    }

    /// Detach the loop from its borrows into an owned, movable
    /// [`SuspendedLoop`]. Legal at any point — between rounds or with a
    /// batch outstanding; an outstanding batch's parked select output
    /// travels with the suspension and the reattached loop accepts its
    /// [`Self::provide`] as if nothing happened.
    pub fn suspend(self) -> SuspendedLoop {
        SuspendedLoop {
            state: self.state,
            pending: self.pending,
            interrupted: self.interrupted,
        }
    }

    /// Run the selector phase of the next round and yield its batch, or
    /// report that the loop is finished.
    ///
    /// # Panics
    /// Panics if a previous batch is still outstanding (no
    /// [`Self::provide`] since the last `Awaiting`).
    pub fn next_batch(&mut self) -> RoundStep {
        assert!(
            self.pending.is_none(),
            "RoundLoop::next_batch: previous batch still awaiting outcomes"
        );
        let cfg = self.pipeline.config();
        let tel = &cfg.telemetry;
        if self.interrupted || self.state.early_terminated || self.state.spent >= cfg.budget {
            return RoundStep::Done;
        }
        let b = cfg.round_size.min(cfg.budget - self.state.spent);
        let pool: Vec<usize> = self
            .data
            .uncleaned_indices()
            .into_iter()
            .filter(|i| !self.state.attempted.contains(i))
            .collect();
        if pool.is_empty() {
            return RoundStep::Done;
        }

        // ---- Sample selector phase. ----
        let select_start = Instant::now();
        let selections = {
            let _span = tel.span("round.select");
            let ctx = SelectorContext {
                model: self.model,
                objective: &cfg.objective,
                data: &*self.data,
                val: self.val,
                // Influence is computed at the full-budget parameters
                // w_raw: they evolve smoothly across rounds (early
                // stopping may jump between epochs), which keeps the
                // Increm-Infl drift ‖w⁽ᵏ⁾ − w⁽⁰⁾‖ small, exactly as the
                // paper's provenance assumes. Early stopping still
                // decides the *reported* model.
                w: &self.state.w_raw,
                pool: &pool,
                b,
                round: self.state.round,
            };
            self.selector.select(&ctx)
        };
        let select_time = select_start.elapsed();
        if selections.is_empty() {
            return RoundStep::Done;
        }
        self.state.spent += selections.len();

        let phase_stats = self.selector.phase_stats();
        let selector_tel = match phase_stats {
            Some(ps) => SelectorTelemetry {
                selector: self.selector.name().to_string(),
                pool: ps.pool,
                pruned: ps.pruned,
                scored: ps.scored,
                grad_evals: ps.grad_evals,
                hvp_evals: ps.hvp_evals,
                bound_hit_rate: ps.bound_hit_rate,
                kernel_path: ps.kernel_path.to_string(),
                kernel_backend: ps.kernel_backend.to_string(),
                select_ms: select_time.as_secs_f64() * 1e3,
            },
            // Baselines report no cost counters; pool size is still known.
            None => SelectorTelemetry {
                selector: self.selector.name().to_string(),
                pool: pool.len(),
                select_ms: select_time.as_secs_f64() * 1e3,
                ..SelectorTelemetry::default()
            },
        };
        if let Some(ps) = phase_stats {
            if ps.provenance_grads > 0 {
                // Paid once at provenance initialization; not part of
                // RoundTelemetry, so a resumed run cannot replay it
                // (a documented counter divergence, DESIGN.md §12).
                tel.add("increm.provenance_grads", ps.provenance_grads as u64);
            }
            if ps.cg_iters_saved > 0 {
                // Live-only, like provenance_grads: the warm-start
                // cache is not persisted, so a resumed run pays a
                // cold solve and cannot replay the savings.
                tel.add("cg.warm_start_iters_saved", ps.cg_iters_saved as u64);
            }
        }

        // DeltaGrad-L's Eq. 4 corrections need the *pre-annotation*
        // labels of exactly the selected samples. An overlay of those few
        // labels over the post-annotation store replaces a full dataset
        // clone — O(b) instead of O(n·d) per round, and the only way an
        // out-of-core store could provide an "old dataset" at all.
        let mut prior = LabelOverlay::new();
        for sel in &selections {
            prior.insert(
                sel.index,
                self.data.label(sel.index).clone(),
                self.data.is_clean(sel.index),
            );
        }
        let batch = AnnotationBatch {
            round: self.state.round,
            num_classes: self.data.num_classes(),
            items: selections
                .iter()
                .map(|sel| BatchItem {
                    index: sel.index,
                    suggested: sel.suggested,
                    truth: self.data.ground_truth(sel.index),
                })
                .collect(),
        };
        self.pending = Some(PendingRound {
            selections,
            prior,
            select_time,
            selector_tel,
        });
        RoundStep::Awaiting(batch)
    }

    /// Deliver the outcomes of the outstanding batch and run the rest of
    /// the round: label application, model constructor, evaluation,
    /// telemetry, report, early-termination check and the durability
    /// boundary (checkpoint write + injected-crash check).
    ///
    /// `outcomes[i]` answers `batch.items[i]`; an annotation source that
    /// lost replies (timeouts) passes [`AnnotationOutcome::Ambiguous`]
    /// for the missing slots — exactly the synchronous abstain path.
    ///
    /// # Panics
    /// Panics if no batch is outstanding or `outcomes` has the wrong
    /// length.
    pub fn provide(
        &mut self,
        outcomes: &[AnnotationOutcome],
        ann_stats: AnnotationStats,
        annotate_time: Duration,
    ) -> &RoundReport {
        let pending = self
            .pending
            .take()
            .expect("RoundLoop::provide: no batch outstanding");
        assert_eq!(
            outcomes.len(),
            pending.selections.len(),
            "RoundLoop::provide: outcome count does not match the batch"
        );
        let cfg = self.pipeline.config();
        let tel = &cfg.telemetry;
        let state = &mut self.state;
        let c = self.data.num_classes();

        let mut changed = Vec::new();
        let mut ambiguous = 0usize;
        for (sel, out) in pending.selections.iter().zip(outcomes) {
            state.attempted.insert(sel.index);
            match out {
                AnnotationOutcome::Cleaned(class) => {
                    self.data
                        .clean_label(sel.index, chef_model::SoftLabel::onehot(*class, c));
                    changed.push(sel.index);
                }
                AnnotationOutcome::Ambiguous => ambiguous += 1,
            }
        }
        state.cleaned_total += changed.len();
        let annotation_tel = AnnotationTelemetry {
            requested: ann_stats.requested,
            votes: ann_stats.votes,
            conflicts: ann_stats.conflicts,
            abstains: ann_stats.abstains,
            cleaned: ann_stats.cleaned,
            annotate_ms: annotate_time.as_secs_f64() * 1e3,
        };

        // ---- Model constructor phase. ----
        let update = {
            let _span = tel.span("round.update");
            let old_view = pending.prior.over(&*self.data);
            self.ctor.update(
                self.model,
                &cfg.objective,
                &old_view,
                &*self.data,
                &changed,
                &state.trace,
            )
        };
        let update_time = update.elapsed;
        let train_kernel = self.model.scoring_kernel().name().to_string();
        // The backend is a GEMM-panel property: meaningless (and
        // omitted) on the per-sample fallback path.
        let train_backend = match self.model.scoring_kernel() {
            chef_model::KernelPath::Gemm => self.model.kernel_backend().name().to_string(),
            chef_model::KernelPath::PerSample => String::new(),
        };
        let constructor_tel = match (cfg.constructor, &update.stats) {
            (ConstructorKind::DeltaGradL(dg), Some(stats)) => ConstructorTelemetry {
                kind: "deltagrad-l".to_string(),
                exact_steps: stats.explicit_iters,
                replay_steps: stats.approx_iters,
                correction_grads: stats.correction_grads,
                lbfgs_history: dg.m0,
                epochs: cfg.sgd.epochs,
                kernel_path: train_kernel,
                kernel_backend: train_backend,
                update_ms: update_time.as_secs_f64() * 1e3,
            },
            _ => ConstructorTelemetry {
                kind: "retrain".to_string(),
                exact_steps: update.trace.plan.total_iterations(),
                epochs: cfg.sgd.epochs,
                kernel_path: train_kernel,
                kernel_backend: train_backend,
                update_ms: update_time.as_secs_f64() * 1e3,
                ..ConstructorTelemetry::default()
            },
        };
        state.w_raw = update.w;
        state.trace = update.trace;

        // ---- Evaluation. ----
        let (val_f1, test_f1) = {
            let _span = tel.span("round.eval");
            let (we, _) = select_early_stop(
                self.model,
                &cfg.objective,
                self.val,
                &state.trace.epoch_checkpoints,
                &state.w_raw,
            );
            state.w_eval = we;
            (
                evaluate_f1(self.model, &state.w_eval, self.val).f1,
                evaluate_f1(self.model, &state.w_eval, self.test).f1,
            )
        };
        tel.set_gauge("pipeline.val_f1", val_f1);
        tel.set_gauge("pipeline.test_f1", test_f1);

        let round_tel = RoundTelemetry {
            round: state.round,
            selector: pending.selector_tel,
            annotation: annotation_tel,
            constructor: constructor_tel,
        };
        record_round_counters(tel, &round_tel);
        tel.record_round(round_tel.clone());

        let selector_stats = self.selector.stats();
        state.rounds.push(RoundReport {
            round: state.round,
            selected: pending.selections,
            cleaned: changed.len(),
            ambiguous,
            val_f1,
            test_f1,
            select_time: pending.select_time,
            update_time,
            selector_stats,
            telemetry: round_tel,
        });

        if cfg.target_val_f1.is_some_and(|target| val_f1 >= target) {
            state.early_terminated = true;
        }
        let finished = state.round;
        state.round += 1;

        // ---- Durability boundary. ----
        if let Some(ckcfg) = &cfg.checkpoint {
            if ckcfg.every_rounds > 0 && state.round.is_multiple_of(ckcfg.every_rounds) {
                self.pipeline.write_checkpoint(
                    ckcfg,
                    state,
                    &*self.data,
                    &*self.selector,
                    finished,
                );
            }
        }
        if self.pipeline.crash_requested(finished) {
            self.interrupted = true;
        }
        state.rounds.last().expect("round just pushed")
    }

    /// Finalize the loop into a report. Calling this with a batch still
    /// outstanding (or before [`RoundStep::Done`]) yields a valid partial
    /// report — the state as of the last completed round — which is what
    /// a cancelled serve job returns.
    pub fn finish(self) -> StorePipelineReport {
        let tel = &self.pipeline.config().telemetry;
        // Store-integrity counters (additive-optional: in-memory
        // datasets report no io_stats, so existing telemetry exports
        // are byte-identical). Monotonic store-lifetime totals, set
        // once at end-of-run.
        if let Some(io) = self.data.io_stats() {
            tel.add("store.verify_ms", io.verify_ms);
            tel.add("store.blocks_verified", io.blocks_verified);
            tel.add("store.lazy_verify_hits", io.lazy_verify_hits);
            tel.add("store.prefetch_overlap_ms", io.prefetch_overlap_ms);
        }

        StorePipelineReport {
            initial_val_f1: self.state.initial_val_f1,
            initial_test_f1: self.state.initial_test_f1,
            init_time: self.state.init_time,
            rounds: self.state.rounds,
            final_w: self.state.w_eval,
            final_w_raw: self.state.w_raw,
            early_terminated: self.state.early_terminated,
            cleaned_total: self.state.cleaned_total,
            interrupted: self.interrupted,
        }
    }

    /// 0-based index of the next round to run (== completed rounds so
    /// far, including restored ones after a resume).
    pub fn round(&self) -> usize {
        self.state.round
    }

    /// Budget slots consumed so far.
    pub fn spent(&self) -> usize {
        self.state.spent
    }

    /// Samples cleaned (deterministic labels installed) so far.
    pub fn cleaned_total(&self) -> usize {
        self.state.cleaned_total
    }

    /// Whether an injected crash cut the loop short.
    pub fn is_interrupted(&self) -> bool {
        self.interrupted
    }

    /// Whether a batch is out for annotation right now.
    pub fn awaiting(&self) -> bool {
        self.pending.is_some()
    }
}
