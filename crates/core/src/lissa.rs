//! LiSSA — Linear-time Stochastic Second-order Algorithm for `H⁻¹v`.
//!
//! Koh & Liang's influence-function implementation (which §4.1.1 of the
//! CHEF paper builds on) ships two inverse-Hessian-vector-product
//! estimators: conjugate gradients (the default here, see
//! [`crate::influence::influence_vector`]) and **LiSSA** (Agarwal,
//! Bullins & Hazan, 2017), which unrolls the Neumann series
//!
//! ```text
//! H⁻¹ b = Σ_{j≥0} (I − H)ʲ b        (valid when ‖H‖ < 1)
//! ```
//!
//! with one *stochastic* Hessian-vector product per term:
//!
//! ```text
//! v₀ = b,    v_{j+1} = b + (I − H_{S_j}/σ) v_j,    Ĥ⁻¹b = v_J / σ
//! ```
//!
//! where `H_{S_j}` is the Hessian of a random minibatch `S_j` and `σ` a
//! scale making `‖H/σ‖ < 1`. Several independent recursions are averaged
//! to reduce variance. LiSSA trades the deterministic convergence of CG
//! for strictly-streaming access to the data — the variant a deployment
//! with out-of-core training sets would use.

use chef_linalg::vector;
use chef_model::{DatasetStore, Model, WeightedObjective};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// LiSSA hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LissaConfig {
    /// Recursion depth `J` (number of Neumann terms).
    pub depth: usize,
    /// Independent repetitions averaged together.
    pub repeats: usize,
    /// Scale `σ` with `‖H‖ ≤ σ` (for L2-regularized softmax over
    /// unit-ish features, `λ_max ≤ λ + max‖x̃‖²/4`; pick generously).
    pub scale: f64,
    /// Minibatch size per stochastic HVP.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LissaConfig {
    fn default() -> Self {
        Self {
            depth: 400,
            repeats: 4,
            scale: 12.0,
            batch: 64,
            seed: 0x715a,
        }
    }
}

/// Estimate `H⁻¹(w) b` for the weighted-objective Hessian with LiSSA.
///
/// # Panics
/// Panics if the dataset is empty or `scale ≤ 0`.
pub fn lissa_solve<M: Model + ?Sized>(
    model: &M,
    objective: &WeightedObjective,
    data: &dyn DatasetStore,
    w: &[f64],
    b: &[f64],
    cfg: &LissaConfig,
) -> Vec<f64> {
    assert!(!data.is_empty(), "lissa_solve: empty dataset");
    assert!(cfg.scale > 0.0, "lissa_solve: non-positive scale");
    let m = model.num_params();
    assert_eq!(b.len(), m, "lissa_solve: rhs dimension");

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut estimate = vec![0.0; m];
    let mut v = vec![0.0; m];
    let mut hv = vec![0.0; m];

    for _ in 0..cfg.repeats.max(1) {
        v.copy_from_slice(b);
        for _ in 0..cfg.depth {
            indices.shuffle(&mut rng);
            let batch = &indices[..cfg.batch.min(indices.len())];
            objective.batch_hvp(model, data, batch, w, &v, &mut hv);
            // v ← b + v − Hv/σ
            for ((vi, bi), hvi) in v.iter_mut().zip(b).zip(&hv) {
                *vi = bi + *vi - hvi / cfg.scale;
            }
        }
        vector::axpy(1.0 / cfg.scale, &v, &mut estimate);
    }
    vector::scale(1.0 / cfg.repeats.max(1) as f64, &mut estimate);
    estimate
}

/// [`crate::influence::influence_vector`] with the LiSSA estimator:
/// `v = H⁻¹ ∇F(w, Z_val)`.
pub fn lissa_influence_vector<M: Model + ?Sized>(
    model: &M,
    objective: &WeightedObjective,
    data: &dyn DatasetStore,
    val: &dyn DatasetStore,
    w: &[f64],
    cfg: &LissaConfig,
) -> Vec<f64> {
    let mut val_grad = vec![0.0; model.num_params()];
    objective.val_grad(model, val, w, &mut val_grad);
    lissa_solve(model, objective, data, w, &val_grad, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::influence::{influence_vector, rank_infl_with_vector, InflConfig};
    use chef_linalg::Matrix;
    use chef_model::{Dataset, LogisticRegression, SoftLabel};
    use rand::Rng;

    fn fixture(n: usize, seed: u64) -> (LogisticRegression, WeightedObjective, Dataset, Dataset) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..n {
            let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
            let sign = if c == 1 { 1.0 } else { -1.0 };
            raw.push(sign + rng.gen_range(-1.0..1.0));
            raw.push(sign + rng.gen_range(-1.0..1.0));
            let p = rng.gen_range(0.1..0.9);
            labels.push(SoftLabel::new(vec![p, 1.0 - p]));
            truth.push(Some(c));
        }
        let data = Dataset::new(
            Matrix::from_vec(n, 2, raw),
            labels,
            vec![false; n],
            truth,
            2,
        );
        let mut vraw = Vec::new();
        let mut vlab = Vec::new();
        for i in 0..30 {
            let c = i % 2;
            let sign = if c == 1 { 1.0 } else { -1.0 };
            vraw.push(sign + rng.gen_range(-1.0..1.0));
            vraw.push(sign + rng.gen_range(-1.0..1.0));
            vlab.push(SoftLabel::onehot(c, 2));
        }
        let val = Dataset::new(
            Matrix::from_vec(30, 2, vraw),
            vlab,
            vec![true; 30],
            (0..30).map(|i| Some(i % 2)).collect(),
            2,
        );
        (
            LogisticRegression::new(2, 2),
            WeightedObjective::new(0.8, 0.2),
            data,
            val,
        )
    }

    #[test]
    fn lissa_matches_cg_on_well_conditioned_problem() {
        let (model, obj, data, val) = fixture(150, 1);
        let w = vec![0.1; 6];
        let cg = influence_vector(&model, &obj, &data, &val, &w, &InflConfig::default());
        let lissa = lissa_influence_vector(
            &model,
            &obj,
            &data,
            &val,
            &w,
            &LissaConfig {
                depth: 800,
                repeats: 8,
                scale: 6.0,
                batch: 64,
                seed: 3,
            },
        );
        let rel = vector::distance(&cg, &lissa) / vector::norm2(&cg).max(1e-12);
        assert!(rel < 0.15, "relative error {rel}");
    }

    #[test]
    fn lissa_rankings_agree_with_cg_at_the_top() {
        let (model, obj, data, val) = fixture(120, 2);
        let w = vec![0.05; 6];
        let v_cg = influence_vector(&model, &obj, &data, &val, &w, &InflConfig::default());
        let v_li = lissa_influence_vector(
            &model,
            &obj,
            &data,
            &val,
            &w,
            &LissaConfig {
                depth: 800,
                repeats: 8,
                scale: 6.0,
                batch: 64,
                seed: 9,
            },
        );
        let pool = data.uncleaned_indices();
        let top = |v: &[f64]| {
            let mut r = rank_infl_with_vector(&model, &data, &w, v, &pool, obj.gamma);
            r.truncate(10);
            r.into_iter()
                .map(|s| s.index)
                .collect::<std::collections::HashSet<_>>()
        };
        let overlap = top(&v_cg).intersection(&top(&v_li)).count();
        assert!(overlap >= 7, "top-10 overlap only {overlap}");
    }

    #[test]
    fn deterministic_in_seed() {
        let (model, obj, data, val) = fixture(60, 3);
        let w = vec![0.1; 6];
        let cfg = LissaConfig::default();
        let a = lissa_influence_vector(&model, &obj, &data, &val, &w, &cfg);
        let b = lissa_influence_vector(&model, &obj, &data, &val, &w, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let (model, obj, data, _) = fixture(40, 4);
        let w = vec![0.1; 6];
        let out = lissa_solve(&model, &obj, &data, &w, &[0.0; 6], &LissaConfig::default());
        assert!(out.iter().all(|v| v.abs() < 1e-12));
    }
}
