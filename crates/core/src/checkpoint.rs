//! Durable round-boundary checkpoints: the `checkpoint.v1` format.
//!
//! CHEF's loop runs for many rounds against a human budget; a crash must
//! not discard completed cleaning work or silently corrupt the replay
//! state DeltaGrad-L depends on. This module serializes the *complete*
//! loop state at a round boundary — model parameters, the cleaned-label
//! patches, the Increm-Infl frozen `w⁽⁰⁾` provenance, the DeltaGrad-L
//! provenance trace with its replayable batch plan, the annotator RNG
//! stream seed, and every finished [`RoundReport`] — such that
//! [`crate::Pipeline::resume`] continues the loop **bit-identically** to
//! a run that was never interrupted (`tests/checkpoint_resume.rs` pins
//! this; DESIGN.md §12 documents the guarantee).
//!
//! # On-disk layout
//!
//! ```text
//! checkpoint.v1 <json_len> <bin_len> <fnv1a64-hex>\n        ← header
//! <json_len bytes of JSON>                                  ← structure
//! <bin_len bytes of little-endian f64s>                     ← matrices
//! ```
//!
//! The JSON section (hand-rolled [`JsonWriter`], parsed back with
//! [`chef_obs::parse`]) holds every scalar, the label patches, and the
//! per-round reports; the binary section holds the large matrices
//! (parameters, the `T×m` provenance buffers, provenance gradients) as
//! raw little-endian `f64`s — exact bits, no text round-trip. The FNV-1a
//! 64 checksum covers both sections; torn writes and bit flips surface
//! as [`CheckpointError::Corrupt`], and the generation scan
//! ([`Checkpoint::latest_in_dir`]) falls back to the previous file.
//! Writes go to a `.tmp` sibling, are fsynced, then renamed into place,
//! so a crash mid-write never destroys the previous generation.

use crate::increm::{IncremSnapshot, IncremStats};
use crate::pipeline::RoundReport;
use crate::selector::{Selection, SelectorCheckpoint};
use chef_model::SoftLabel;
use chef_obs::parse::{expect_schema, parse_json, JsonValue, ParseError};
use chef_obs::{JsonWriter, RoundTelemetry};
use chef_train::{BatchPlan, TraceStore, TrainTrace};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Version tag carried by every checkpoint file.
pub const CHECKPOINT_VERSION: &str = "checkpoint.v1";

/// File-name prefix of generation files in a checkpoint directory.
const GENERATION_PREFIX: &str = "chef-ckpt-round-";
/// File-name suffix of generation files.
const GENERATION_SUFFIX: &str = ".v1";

/// Checkpoint cadence and retention knobs (part of
/// [`crate::PipelineConfig`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory generation files are written into (created on demand).
    pub dir: PathBuf,
    /// Write a checkpoint every `every_rounds` completed rounds (1 =
    /// every round).
    pub every_rounds: usize,
    /// Number of generations retained; older files are deleted after a
    /// successful write. At least 2 is recommended so a corrupt newest
    /// generation can fall back.
    pub keep: usize,
}

impl CheckpointConfig {
    /// Checkpoint every round into `dir`, keeping the last 2 generations.
    pub fn every_round(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every_rounds: 1,
            keep: 2,
        }
    }
}

/// Why a checkpoint could not be written or read.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Bad header, checksum mismatch, truncation, or undecodable body.
    Corrupt(String),
    /// The file declares a version this build does not read.
    UnsupportedVersion(String),
    /// The checkpoint is internally valid but does not match the run it
    /// was handed to (e.g. different parameter count or annotator seed).
    Mismatch(String),
    /// No generation file exists in the directory.
    NoCheckpoint(PathBuf),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::UnsupportedVersion(v) => write!(
                f,
                "unsupported checkpoint version {v:?} (this build reads {CHECKPOINT_VERSION:?})"
            ),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            CheckpointError::NoCheckpoint(d) => {
                write!(f, "no checkpoint generation found in {}", d.display())
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<ParseError> for CheckpointError {
    fn from(e: ParseError) -> Self {
        CheckpointError::Corrupt(e.to_string())
    }
}

/// One mutated training sample: the label (and clean flag) it carries
/// after the checkpointed rounds. Applied onto the caller's pristine
/// dataset at resume.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelPatch {
    /// Training-set index.
    pub index: usize,
    /// Whether the sample is now clean (deterministic label, weight 1).
    pub clean: bool,
    /// The label's class probabilities.
    pub probs: Vec<f64>,
}

/// Full round-boundary pipeline state. Field-for-field this is
/// everything [`crate::Pipeline::run`]'s loop carries across rounds; see
/// the module docs for the serialized layout.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Completed rounds (the next round to run).
    pub round: usize,
    /// Budget slots consumed so far.
    pub spent: usize,
    /// Samples cleaned so far.
    pub cleaned_total: usize,
    /// Whether the run already hit its early-termination target.
    pub early_terminated: bool,
    /// Validation F1 of the uncleaned model.
    pub initial_val_f1: f64,
    /// Test F1 of the uncleaned model.
    pub initial_test_f1: f64,
    /// Wall-clock of the initialization training, in nanoseconds (so the
    /// resumed [`crate::PipelineReport`] aggregates pre-crash time).
    pub init_ns: u64,
    /// The annotation seed in effect — the annotators are deterministic
    /// per `(seed, sample)`, so this *is* the RNG stream position; resume
    /// refuses a config with a different seed.
    pub annotation_seed: u64,
    /// The SGD seed in effect (drives the replayable batch plan).
    pub sgd_seed: u64,
    /// Samples already shown to annotators (sorted).
    pub attempted: Vec<usize>,
    /// Label mutations to replay onto the pristine dataset.
    pub labels: Vec<LabelPatch>,
    /// Every finished round's report, including durations and telemetry.
    pub rounds: Vec<RoundReport>,
    /// Full-budget parameters entering the next round.
    pub w_raw: Vec<f64>,
    /// Early-stopped parameters of the last evaluation.
    pub w_eval: Vec<f64>,
    /// DeltaGrad-L provenance: per-iteration params/grads, the epoch
    /// checkpoints, and the replayable batch plan.
    pub trace: TrainTrace,
    /// Selector state (Increm-Infl frozen provenance for the Infl family).
    pub selector: SelectorCheckpoint,
}

// ---------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------

/// FNV-1a 64 over `bytes` — cheap, dependency-free, and plenty to catch
/// torn writes and bit flips (this is corruption *detection*, not
/// authentication).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Binary payload helpers
// ---------------------------------------------------------------------

fn push_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Sequential reader over the little-endian f64 payload.
struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, count: usize) -> Result<Vec<f64>, CheckpointError> {
        let need = count * 8;
        if self.pos + need > self.bytes.len() {
            return Err(CheckpointError::Corrupt(format!(
                "binary payload truncated: need {count} f64s at offset {}",
                self.pos
            )));
        }
        let out = self.bytes[self.pos..self.pos + need]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        self.pos += need;
        Ok(out)
    }

    fn finish(&self) -> Result<(), CheckpointError> {
        if self.pos != self.bytes.len() {
            return Err(CheckpointError::Corrupt(format!(
                "binary payload has {} trailing bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// JSON field helpers (reading)
// ---------------------------------------------------------------------

fn req<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, CheckpointError> {
    v.get(key)
        .ok_or_else(|| CheckpointError::Corrupt(format!("missing field \"{key}\"")))
}

fn req_usize(v: &JsonValue, key: &str) -> Result<usize, CheckpointError> {
    req(v, key)?
        .as_usize()
        .ok_or_else(|| CheckpointError::Corrupt(format!("field \"{key}\" is not an integer")))
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, CheckpointError> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| CheckpointError::Corrupt(format!("field \"{key}\" is not an integer")))
}

fn req_f64(v: &JsonValue, key: &str) -> Result<f64, CheckpointError> {
    match req(v, key)? {
        JsonValue::Null => Ok(f64::NAN), // the writer's non-finite encoding
        n => n
            .as_f64()
            .ok_or_else(|| CheckpointError::Corrupt(format!("field \"{key}\" is not a number"))),
    }
}

fn req_bool(v: &JsonValue, key: &str) -> Result<bool, CheckpointError> {
    req(v, key)?
        .as_bool()
        .ok_or_else(|| CheckpointError::Corrupt(format!("field \"{key}\" is not a bool")))
}

fn req_array<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], CheckpointError> {
    req(v, key)?
        .as_array()
        .ok_or_else(|| CheckpointError::Corrupt(format!("field \"{key}\" is not an array")))
}

fn usize_array(v: &JsonValue, key: &str) -> Result<Vec<usize>, CheckpointError> {
    req_array(v, key)?
        .iter()
        .map(|x| {
            x.as_usize().ok_or_else(|| {
                CheckpointError::Corrupt(format!("field \"{key}\" has a non-integer element"))
            })
        })
        .collect()
}

fn f64_array(v: &JsonValue, key: &str) -> Result<Vec<f64>, CheckpointError> {
    req_array(v, key)?
        .iter()
        .map(|x| match x {
            JsonValue::Null => Ok(f64::NAN),
            n => n.as_f64().ok_or_else(|| {
                CheckpointError::Corrupt(format!("field \"{key}\" has a non-numeric element"))
            }),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Round-report (de)serialization
// ---------------------------------------------------------------------

fn write_round_report(w: &mut JsonWriter, r: &RoundReport) {
    w.begin_object();
    w.field_u64("round", r.round as u64);
    w.key("selected");
    w.begin_array();
    for s in &r.selected {
        w.begin_object();
        w.field_u64("index", s.index as u64);
        w.key("suggested");
        match s.suggested {
            Some(c) => w.u64(c as u64),
            None => w.raw("null"),
        }
        w.end_object();
    }
    w.end_array();
    w.field_u64("cleaned", r.cleaned as u64);
    w.field_u64("ambiguous", r.ambiguous as u64);
    w.field_f64("val_f1", r.val_f1);
    w.field_f64("test_f1", r.test_f1);
    w.field_u64("select_ns", r.select_time.as_nanos() as u64);
    w.field_u64("update_ns", r.update_time.as_nanos() as u64);
    w.key("selector_stats");
    match r.selector_stats {
        Some(st) => {
            w.begin_object();
            w.field_u64("pool", st.pool as u64);
            w.field_u64("candidates", st.candidates as u64);
            w.end_object();
        }
        None => w.raw("null"),
    }
    w.key("telemetry");
    r.telemetry.write_json(w);
    w.end_object();
}

fn read_round_report(v: &JsonValue) -> Result<RoundReport, CheckpointError> {
    let selected = req_array(v, "selected")?
        .iter()
        .map(|s| {
            let index = req_usize(s, "index")?;
            let suggested =
                match req(s, "suggested")? {
                    JsonValue::Null => None,
                    n => Some(n.as_usize().ok_or_else(|| {
                        CheckpointError::Corrupt("non-integer \"suggested\"".into())
                    })?),
                };
            Ok(Selection { index, suggested })
        })
        .collect::<Result<Vec<_>, CheckpointError>>()?;
    let selector_stats = match req(v, "selector_stats")? {
        JsonValue::Null => None,
        st => Some(IncremStats {
            pool: req_usize(st, "pool")?,
            candidates: req_usize(st, "candidates")?,
        }),
    };
    Ok(RoundReport {
        round: req_usize(v, "round")?,
        selected,
        cleaned: req_usize(v, "cleaned")?,
        ambiguous: req_usize(v, "ambiguous")?,
        val_f1: req_f64(v, "val_f1")?,
        test_f1: req_f64(v, "test_f1")?,
        select_time: Duration::from_nanos(req_u64(v, "select_ns")?),
        update_time: Duration::from_nanos(req_u64(v, "update_ns")?),
        selector_stats,
        telemetry: RoundTelemetry::from_json(req(v, "telemetry")?)?,
    })
}

// ---------------------------------------------------------------------
// Checkpoint (de)serialization
// ---------------------------------------------------------------------

impl Checkpoint {
    /// Serialize to the full file image (header + JSON + binary payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let m = self.w_raw.len();

        // --- Binary payload: every matrix, in a fixed order. ---
        let mut bin = Vec::new();
        push_f64s(&mut bin, &self.w_raw);
        push_f64s(&mut bin, &self.w_eval);
        // The TraceStore arenas are already the on-disk layout — rows
        // concatenated in order — so each streams out in one call,
        // byte-identical to the per-row loop the format was defined by.
        push_f64s(&mut bin, self.trace.params.as_slice());
        push_f64s(&mut bin, self.trace.grads.as_slice());
        for c in &self.trace.epoch_checkpoints {
            push_f64s(&mut bin, c);
        }
        let increm = match &self.selector {
            SelectorCheckpoint::Infl { increm } => increm.as_ref(),
            SelectorCheckpoint::Stateless => None,
        };
        if let Some(snap) = increm {
            push_f64s(&mut bin, &snap.w0);
            push_f64s(&mut bin, &snap.grads0);
            push_f64s(&mut bin, &snap.class_grads0);
            push_f64s(&mut bin, &snap.hessian_norms0);
            push_f64s(&mut bin, &snap.class_hessian_norms0);
        }

        // --- JSON section: scalars, patches, reports, layout metadata. ---
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", CHECKPOINT_VERSION);
        w.field_u64("round", self.round as u64);
        w.field_u64("spent", self.spent as u64);
        w.field_u64("cleaned_total", self.cleaned_total as u64);
        w.field_bool("early_terminated", self.early_terminated);
        w.field_f64("initial_val_f1", self.initial_val_f1);
        w.field_f64("initial_test_f1", self.initial_test_f1);
        w.field_u64("init_ns", self.init_ns);
        w.field_u64("annotation_seed", self.annotation_seed);
        w.field_u64("sgd_seed", self.sgd_seed);
        w.field_u64("num_params", m as u64);
        w.key("attempted");
        w.begin_array();
        for &i in &self.attempted {
            w.u64(i as u64);
        }
        w.end_array();
        w.key("labels");
        w.begin_array();
        for p in &self.labels {
            w.begin_object();
            w.field_u64("index", p.index as u64);
            w.field_bool("clean", p.clean);
            w.key("probs");
            w.begin_array();
            for &x in &p.probs {
                w.f64(x);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("rounds");
        w.begin_array();
        for r in &self.rounds {
            write_round_report(&mut w, r);
        }
        w.end_array();
        w.key("trace");
        w.begin_object();
        w.field_u64("n", self.trace.plan.n() as u64);
        w.field_u64("batch_size", self.trace.plan.batch_size() as u64);
        w.field_u64("epochs", self.trace.plan.epochs() as u64);
        w.field_u64("seed", self.trace.plan.seed());
        w.field_f64("lr", self.trace.lr);
        w.field_u64("iters", self.trace.params.len() as u64);
        w.field_u64("checkpoints", self.trace.epoch_checkpoints.len() as u64);
        w.end_object();
        w.key("selector");
        w.begin_object();
        match (&self.selector, increm) {
            (SelectorCheckpoint::Stateless, _) => w.field_str("kind", "stateless"),
            (SelectorCheckpoint::Infl { .. }, None) => {
                w.field_str("kind", "infl");
                w.key("increm");
                w.raw("null");
            }
            (SelectorCheckpoint::Infl { .. }, Some(snap)) => {
                w.field_str("kind", "infl");
                w.key("increm");
                w.begin_object();
                w.field_u64("samples", (snap.grads0.len() / snap.num_params) as u64);
                w.field_u64("num_params", snap.num_params as u64);
                w.field_u64("num_classes", snap.num_classes as u64);
                w.field_f64("slack", snap.slack);
                w.end_object();
            }
        }
        w.end_object();
        w.field_u64("bin_f64s", (bin.len() / 8) as u64);
        w.end_object();
        let json = w.finish();

        // --- Header over both sections. ---
        let mut body = Vec::with_capacity(json.len() + bin.len());
        body.extend_from_slice(json.as_bytes());
        body.extend_from_slice(&bin);
        let checksum = fnv1a64(&body);
        let mut out = format!(
            "{CHECKPOINT_VERSION} {} {} {checksum:016x}\n",
            json.len(),
            bin.len()
        )
        .into_bytes();
        out.extend_from_slice(&body);
        out
    }

    /// Decode a full file image produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        // --- Header. ---
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| CheckpointError::Corrupt("missing header line".into()))?;
        let header = std::str::from_utf8(&bytes[..nl])
            .map_err(|_| CheckpointError::Corrupt("non-UTF-8 header".into()))?;
        let mut parts = header.split_ascii_whitespace();
        let version = parts
            .next()
            .ok_or_else(|| CheckpointError::Corrupt("empty header".into()))?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version.to_string()));
        }
        let json_len: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Corrupt("bad json length in header".into()))?;
        let bin_len: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Corrupt("bad binary length in header".into()))?;
        let declared: u64 = parts
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| CheckpointError::Corrupt("bad checksum in header".into()))?;
        let body = &bytes[nl + 1..];
        if body.len() != json_len + bin_len {
            return Err(CheckpointError::Corrupt(format!(
                "body is {} bytes, header declares {}",
                body.len(),
                json_len + bin_len
            )));
        }
        if fnv1a64(body) != declared {
            return Err(CheckpointError::Corrupt("checksum mismatch".into()));
        }
        let json = std::str::from_utf8(&body[..json_len])
            .map_err(|_| CheckpointError::Corrupt("non-UTF-8 JSON section".into()))?;
        let bin = &body[json_len..];

        // --- JSON section. ---
        let doc = parse_json(json)?;
        expect_schema(&doc, CHECKPOINT_VERSION).map_err(|_| {
            match doc.get("schema").and_then(JsonValue::as_str) {
                Some(v) => CheckpointError::UnsupportedVersion(v.to_string()),
                None => CheckpointError::Corrupt("JSON section carries no schema".into()),
            }
        })?;
        let m = req_usize(&doc, "num_params")?;
        let labels = req_array(&doc, "labels")?
            .iter()
            .map(|p| {
                Ok(LabelPatch {
                    index: req_usize(p, "index")?,
                    clean: req_bool(p, "clean")?,
                    probs: f64_array(p, "probs")?,
                })
            })
            .collect::<Result<Vec<_>, CheckpointError>>()?;
        let rounds = req_array(&doc, "rounds")?
            .iter()
            .map(read_round_report)
            .collect::<Result<Vec<_>, CheckpointError>>()?;
        let tr = req(&doc, "trace")?;
        let plan = BatchPlan::new(
            req_usize(tr, "n")?,
            req_usize(tr, "batch_size")?,
            req_usize(tr, "epochs")?,
            req_u64(tr, "seed")?,
        );
        let iters = req_usize(tr, "iters")?;
        let n_ckpts = req_usize(tr, "checkpoints")?;
        let lr = req_f64(tr, "lr")?;

        let sel = req(&doc, "selector")?;
        let sel_kind = sel
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| CheckpointError::Corrupt("selector without kind".into()))?;
        let increm_meta = match sel_kind {
            "stateless" => None,
            "infl" => match req(sel, "increm")? {
                JsonValue::Null => None,
                inc => Some((
                    req_usize(inc, "samples")?,
                    req_usize(inc, "num_params")?,
                    req_usize(inc, "num_classes")?,
                    req_f64(inc, "slack")?,
                )),
            },
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown selector kind {other:?}"
                )))
            }
        };
        let declared_f64s = req_usize(&doc, "bin_f64s")?;
        if bin.len() != declared_f64s * 8 {
            return Err(CheckpointError::Corrupt(format!(
                "binary payload is {} bytes, JSON declares {} f64s",
                bin.len(),
                declared_f64s
            )));
        }

        // --- Binary payload, in the writer's fixed order. ---
        let mut r = BinReader::new(bin);
        let w_raw = r.take(m)?;
        let w_eval = r.take(m)?;
        // `iters` rows of `m` f64s each, stored concatenated — exactly a
        // flat TraceStore arena, so each matrix is one bulk read.
        let params = TraceStore::from_flat(m, r.take(iters * m)?);
        let grads = TraceStore::from_flat(m, r.take(iters * m)?);
        let mut epoch_checkpoints = Vec::with_capacity(n_ckpts);
        for _ in 0..n_ckpts {
            epoch_checkpoints.push(r.take(m)?);
        }
        let selector = match (sel_kind, increm_meta) {
            ("stateless", _) => SelectorCheckpoint::Stateless,
            ("infl", None) => SelectorCheckpoint::Infl { increm: None },
            ("infl", Some((samples, num_params, num_classes, slack))) => {
                let snap = IncremSnapshot {
                    w0: r.take(num_params)?,
                    grads0: r.take(samples * num_params)?,
                    class_grads0: r.take(samples * num_classes * num_params)?,
                    hessian_norms0: r.take(samples)?,
                    class_hessian_norms0: r.take(samples * num_classes)?,
                    num_params,
                    num_classes,
                    slack,
                };
                snap.validate().map_err(CheckpointError::Corrupt)?;
                SelectorCheckpoint::Infl { increm: Some(snap) }
            }
            _ => unreachable!("selector kind validated above"),
        };
        r.finish()?;

        Ok(Self {
            round: req_usize(&doc, "round")?,
            spent: req_usize(&doc, "spent")?,
            cleaned_total: req_usize(&doc, "cleaned_total")?,
            early_terminated: req_bool(&doc, "early_terminated")?,
            initial_val_f1: req_f64(&doc, "initial_val_f1")?,
            initial_test_f1: req_f64(&doc, "initial_test_f1")?,
            init_ns: req_u64(&doc, "init_ns")?,
            annotation_seed: req_u64(&doc, "annotation_seed")?,
            sgd_seed: req_u64(&doc, "sgd_seed")?,
            attempted: usize_array(&doc, "attempted")?,
            labels,
            rounds,
            w_raw,
            w_eval,
            trace: TrainTrace {
                plan,
                params,
                grads,
                epoch_checkpoints,
                lr,
            },
            selector,
        })
    }

    /// Generation file name for a given completed-round count.
    pub fn generation_file_name(round: usize) -> String {
        format!("{GENERATION_PREFIX}{round:05}{GENERATION_SUFFIX}")
    }

    /// Atomically write this checkpoint to `path`: serialize, write a
    /// `.tmp` sibling, fsync, rename into place. Returns the file size
    /// in bytes.
    pub fn write_to(&self, path: &Path) -> Result<u64, CheckpointError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(bytes.len() as u64)
    }

    /// Write the next generation file into `cfg.dir` (created on demand)
    /// and prune generations beyond `cfg.keep`. Returns the written path
    /// and file size.
    pub fn write_generation(
        &self,
        cfg: &CheckpointConfig,
    ) -> Result<(PathBuf, u64), CheckpointError> {
        std::fs::create_dir_all(&cfg.dir)?;
        let path = cfg.dir.join(Self::generation_file_name(self.round));
        let bytes = self.write_to(&path)?;
        if cfg.keep > 0 {
            let mut gens = generation_files(&cfg.dir)?;
            // Newest first; delete everything past the retention window.
            gens.sort_by_key(|g| std::cmp::Reverse(g.0));
            for (_, old) in gens.into_iter().skip(cfg.keep) {
                let _ = std::fs::remove_file(old);
            }
        }
        Ok((path, bytes))
    }

    /// Read a checkpoint from `path`.
    pub fn read_from(path: &Path) -> Result<Self, CheckpointError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Load the newest readable generation in `dir`, falling back over
    /// corrupt or unreadable generations (torn writes, bit flips).
    /// Returns the checkpoint, its path, and how many newer generations
    /// were skipped as corrupt (`resume.corrupt_fallbacks` in telemetry).
    pub fn latest_in_dir(dir: &Path) -> Result<(Self, PathBuf, usize), CheckpointError> {
        let mut gens = generation_files(dir)?;
        if gens.is_empty() {
            return Err(CheckpointError::NoCheckpoint(dir.to_path_buf()));
        }
        gens.sort_by_key(|g| std::cmp::Reverse(g.0));
        let mut skipped = 0usize;
        let mut last_err = None;
        for (_, path) in gens {
            match Self::read_from(&path) {
                Ok(ckpt) => return Ok((ckpt, path, skipped)),
                Err(e) => {
                    skipped += 1;
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or(CheckpointError::NoCheckpoint(dir.to_path_buf())))
    }

    /// Replay the label patches onto a pristine copy of the dataset the
    /// original run started from.
    pub fn apply_labels(
        &self,
        data: &mut dyn chef_model::DatasetStore,
    ) -> Result<(), CheckpointError> {
        let c = data.num_classes();
        for p in &self.labels {
            if p.index >= data.len() {
                return Err(CheckpointError::Mismatch(format!(
                    "label patch index {} out of range for dataset of {}",
                    p.index,
                    data.len()
                )));
            }
            if p.probs.len() != c {
                return Err(CheckpointError::Mismatch(format!(
                    "label patch for sample {} has {} classes, dataset has {c}",
                    p.index,
                    p.probs.len()
                )));
            }
            let label = SoftLabel::new(p.probs.clone());
            if p.clean {
                data.clean_label(p.index, label);
            } else {
                data.set_label(p.index, label);
            }
        }
        Ok(())
    }
}

/// `(round, path)` of every generation file in `dir`.
fn generation_files(dir: &Path) -> Result<Vec<(usize, PathBuf)>, CheckpointError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(GENERATION_PREFIX)
            .and_then(|s| s.strip_suffix(GENERATION_SUFFIX))
        else {
            continue;
        };
        if let Ok(round) = stem.parse::<usize>() {
            out.push((round, entry.path()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_obs::schema::SelectorTelemetry;

    fn sample_checkpoint() -> Checkpoint {
        let m = 3;
        Checkpoint {
            round: 2,
            spent: 10,
            cleaned_total: 8,
            early_terminated: false,
            initial_val_f1: 0.62,
            initial_test_f1: 0.6,
            init_ns: 1_234_567,
            annotation_seed: 11,
            sgd_seed: 3,
            attempted: vec![1, 4, 9],
            labels: vec![
                LabelPatch {
                    index: 4,
                    clean: true,
                    probs: vec![0.0, 1.0],
                },
                LabelPatch {
                    index: 9,
                    clean: false,
                    probs: vec![0.25, 0.75],
                },
            ],
            rounds: vec![RoundReport {
                round: 0,
                selected: vec![
                    Selection {
                        index: 4,
                        suggested: Some(1),
                    },
                    Selection {
                        index: 9,
                        suggested: None,
                    },
                ],
                cleaned: 1,
                ambiguous: 1,
                val_f1: 0.7,
                test_f1: 0.68,
                select_time: Duration::from_nanos(1_500_000),
                update_time: Duration::from_nanos(2_500_000),
                selector_stats: Some(IncremStats {
                    pool: 50,
                    candidates: 7,
                }),
                telemetry: RoundTelemetry {
                    round: 0,
                    selector: SelectorTelemetry {
                        selector: "Infl+Increm".into(),
                        pool: 50,
                        pruned: 43,
                        scored: 7,
                        grad_evals: 21,
                        hvp_evals: 12,
                        bound_hit_rate: 0.86,
                        kernel_path: "gemm".into(),
                        kernel_backend: "reference".into(),
                        select_ms: 1.5,
                    },
                    ..RoundTelemetry::default()
                },
            }],
            w_raw: vec![0.1, -0.2, 0.3],
            w_eval: vec![0.05, -0.15, 0.25],
            trace: TrainTrace {
                plan: BatchPlan::new(12, 4, 2, 3),
                params: TraceStore::from_flat(m, (0..6).flat_map(|t| vec![t as f64; m]).collect()),
                grads: TraceStore::from_flat(
                    m,
                    (0..6).flat_map(|t| vec![-(t as f64); m]).collect(),
                ),
                epoch_checkpoints: vec![vec![1.0; m], vec![2.0; m]],
                lr: 0.1,
            },
            selector: SelectorCheckpoint::Infl {
                increm: Some(IncremSnapshot {
                    w0: vec![0.0, 0.0, 0.0],
                    grads0: vec![0.5; 2 * m],
                    class_grads0: vec![0.25; 2 * 2 * m],
                    hessian_norms0: vec![1.0, 2.0],
                    class_hessian_norms0: vec![0.1, 0.2, 0.3, 0.4],
                    num_params: m,
                    num_classes: 2,
                    slack: 1.0,
                }),
            },
        }
    }

    fn assert_checkpoints_equal(a: &Checkpoint, b: &Checkpoint) {
        assert_eq!(a.round, b.round);
        assert_eq!(a.spent, b.spent);
        assert_eq!(a.cleaned_total, b.cleaned_total);
        assert_eq!(a.early_terminated, b.early_terminated);
        assert_eq!(a.initial_val_f1.to_bits(), b.initial_val_f1.to_bits());
        assert_eq!(a.initial_test_f1.to_bits(), b.initial_test_f1.to_bits());
        assert_eq!(a.init_ns, b.init_ns);
        assert_eq!(a.annotation_seed, b.annotation_seed);
        assert_eq!(a.sgd_seed, b.sgd_seed);
        assert_eq!(a.attempted, b.attempted);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.rounds.len(), b.rounds.len());
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(x, y);
        }
        assert_eq!(a.w_raw, b.w_raw);
        assert_eq!(a.w_eval, b.w_eval);
        assert_eq!(a.trace.plan, b.trace.plan);
        assert_eq!(a.trace.params, b.trace.params);
        assert_eq!(a.trace.grads, b.trace.grads);
        assert_eq!(a.trace.epoch_checkpoints, b.trace.epoch_checkpoints);
        assert_eq!(a.trace.lr.to_bits(), b.trace.lr.to_bits());
        assert_eq!(a.selector, b.selector);
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_checkpoints_equal(&ckpt, &back);
        // Serialize → parse → re-serialize is byte-identical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            match Checkpoint::from_bytes(&bytes[..cut]) {
                Err(CheckpointError::Corrupt(_)) => {}
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let bytes = sample_checkpoint().to_bytes();
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        // Flip one bit in the JSON section and one deep in the payload.
        for pos in [header_len + 10, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x04;
            assert!(
                matches!(
                    Checkpoint::from_bytes(&bad),
                    Err(CheckpointError::Corrupt(_))
                ),
                "bit flip at {pos} not detected"
            );
        }
    }

    #[test]
    fn unknown_version_is_a_clear_error_not_a_panic() {
        let mut bytes = sample_checkpoint().to_bytes();
        // The version token is the first field of the header.
        bytes[12] = b'9'; // checkpoint.v1 → checkpoint.v9
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::UnsupportedVersion(v)) => {
                assert_eq!(v, "checkpoint.v9");
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn atomic_write_and_read_from_disk() {
        let dir = std::env::temp_dir().join(format!("chef-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("one.v1");
        let ckpt = sample_checkpoint();
        let bytes = ckpt.write_to(&path).unwrap();
        assert_eq!(bytes, ckpt.to_bytes().len() as u64);
        assert!(!path.with_extension("tmp").exists(), "tmp file left behind");
        let back = Checkpoint::read_from(&path).unwrap();
        assert_checkpoints_equal(&ckpt, &back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_prunes_old_generations_and_fallback_skips_corrupt() {
        let dir = std::env::temp_dir().join(format!("chef-ckpt-gen-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CheckpointConfig {
            dir: dir.clone(),
            every_rounds: 1,
            keep: 2,
        };
        let mut ckpt = sample_checkpoint();
        for round in 1..=4 {
            ckpt.round = round;
            ckpt.write_generation(&cfg).unwrap();
        }
        let mut files = generation_files(&dir).unwrap();
        files.sort();
        assert_eq!(
            files.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![3, 4],
            "retention must keep exactly the newest 2"
        );

        // Corrupt the newest generation: latest_in_dir falls back.
        let newest = dir.join(Checkpoint::generation_file_name(4));
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&newest, bytes).unwrap();
        let (loaded, path, skipped) = Checkpoint::latest_in_dir(&dir).unwrap();
        assert_eq!(loaded.round, 3);
        assert_eq!(path, dir.join(Checkpoint::generation_file_name(3)));
        assert_eq!(skipped, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_reports_no_checkpoint() {
        let dir = std::env::temp_dir().join(format!("chef-ckpt-empty-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Checkpoint::latest_in_dir(&dir),
            Err(CheckpointError::NoCheckpoint(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn label_patches_replay_onto_pristine_data() {
        use chef_linalg::Matrix;
        let mut data = chef_model::Dataset::new(
            Matrix::from_vec(12, 1, (0..12).map(|i| i as f64).collect()),
            (0..12).map(|_| SoftLabel::uniform(2)).collect(),
            vec![false; 12],
            (0..12).map(|i| Some(i % 2)).collect(),
            2,
        );
        let ckpt = sample_checkpoint();
        ckpt.apply_labels(&mut data).unwrap();
        assert!(data.is_clean(4));
        assert_eq!(data.label(4), &SoftLabel::onehot(1, 2));
        assert!(!data.is_clean(9));
        assert_eq!(data.label(9).probs(), &[0.25, 0.75]);

        // Out-of-range patch is a Mismatch, not a panic.
        let mut small = data.subset(&[0, 1]);
        assert!(matches!(
            ckpt.apply_labels(&mut small),
            Err(CheckpointError::Mismatch(_))
        ));
    }
}
