//! The model-constructor phase (paper §4.2): **Retrain vs DeltaGrad-L**.
//!
//! After a round of cleaning changes the labels (and weights) of the set
//! `R⁽ᵏ⁾`, the model must reflect the new training set. The baseline
//! retrains from scratch; DeltaGrad-L instead treats the cleaning as
//! "delete the probabilistic copies of `R⁽ᵏ⁾` (weight γ), insert the
//! cleaned copies (weight 1)" and replays SGD incrementally with the
//! DeltaGrad engine, using the cached parameters and gradients from the
//! previous round as provenance and `A_t = B_t ∩ R⁽ᵏ⁾` with updated
//! labels (the paper's modifications 1–4 to Eq. 4).

use chef_model::{DatasetStore, Model, WeightedObjective};
use chef_train::{
    deltagrad_update, train_traced, DeltaGradConfig, DeltaGradStats, SgdConfig, TrainTrace,
};
use std::time::{Duration, Instant};

/// Which constructor to use after each cleaning round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstructorKind {
    /// Retrain from scratch on the updated dataset.
    Retrain,
    /// Incremental update with DeltaGrad-L.
    DeltaGradL(DeltaGradConfig),
}

/// Result of one model-constructor invocation.
#[derive(Debug, Clone)]
pub struct ConstructorOutcome {
    /// Final parameters after the full epoch budget.
    pub w: Vec<f64>,
    /// Provenance for the next round.
    pub trace: TrainTrace,
    /// Wall-clock time of the construction.
    pub elapsed: Duration,
    /// Replay counters (present iff the DeltaGrad-L path ran).
    pub stats: Option<DeltaGradStats>,
}

/// The model constructor: owns the SGD configuration shared by both paths
/// so timings are comparable (same plan, same epochs, same caching).
#[derive(Debug, Clone)]
pub struct ModelConstructor {
    /// Construction strategy.
    pub kind: ConstructorKind,
    /// SGD hyperparameters (provenance caching is forced on).
    pub sgd: SgdConfig,
    /// Start each retraining from the previous round's parameters rather
    /// than from scratch. Irrelevant for strongly convex models (both
    /// starts reach the same optimum) but essential for the non-convex
    /// Appendix G.2 models, where a cold restart after a 10-label change
    /// can land in a different minimum and swamp the cleaning signal.
    pub warm_start: bool,
    /// Telemetry handle the training runs report into (spans, per-batch
    /// histogram). Disabled by default; the pipeline threads its own
    /// handle through via [`Self::with_telemetry`].
    pub telemetry: chef_obs::Telemetry,
}

impl ModelConstructor {
    /// Create a constructor; provenance caching is enabled regardless of
    /// the flag in `sgd` because both Increm-Infl and DeltaGrad-L need it.
    pub fn new(kind: ConstructorKind, mut sgd: SgdConfig) -> Self {
        sgd.cache_provenance = true;
        Self {
            kind,
            sgd,
            warm_start: false,
            telemetry: chef_obs::Telemetry::disabled(),
        }
    }

    /// Enable warm-started retraining (see [`Self::warm_start`]).
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Route the constructor's training runs into a telemetry handle.
    pub fn with_telemetry(mut self, telemetry: chef_obs::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Initialization step: train from scratch (always — DeltaGrad-L only
    /// applies to *updates*).
    pub fn initial_train<M: Model + ?Sized>(
        &self,
        model: &M,
        objective: &WeightedObjective,
        data: &dyn DatasetStore,
    ) -> ConstructorOutcome {
        let start = Instant::now();
        let w0 = model.initial_params(self.sgd.seed);
        let out = train_traced(model, objective, data, &w0, &self.sgd, &self.telemetry);
        ConstructorOutcome {
            w: out.w,
            trace: out.trace.expect("provenance caching is forced on"),
            elapsed: start.elapsed(),
            stats: None,
        }
    }

    /// Post-cleaning update: either retrain on `new_data` or replay with
    /// DeltaGrad-L against the previous round's provenance.
    pub fn update<M: Model + ?Sized>(
        &self,
        model: &M,
        objective: &WeightedObjective,
        old_data: &dyn DatasetStore,
        new_data: &dyn DatasetStore,
        changed: &[usize],
        prev_trace: &TrainTrace,
    ) -> ConstructorOutcome {
        let start = Instant::now();
        match self.kind {
            ConstructorKind::Retrain => {
                let w0 = if self.warm_start {
                    prev_trace
                        .epoch_checkpoints
                        .last()
                        .cloned()
                        .unwrap_or_else(|| model.initial_params(self.sgd.seed))
                } else {
                    model.initial_params(self.sgd.seed)
                };
                let out = train_traced(model, objective, new_data, &w0, &self.sgd, &self.telemetry);
                ConstructorOutcome {
                    w: out.w,
                    trace: out.trace.expect("provenance caching is forced on"),
                    elapsed: start.elapsed(),
                    stats: None,
                }
            }
            ConstructorKind::DeltaGradL(dg) => {
                let out = deltagrad_update(
                    model, objective, old_data, new_data, changed, prev_trace, &dg,
                );
                ConstructorOutcome {
                    w: out.w,
                    trace: out.trace,
                    elapsed: start.elapsed(),
                    stats: Some(out.stats),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_linalg::{vector, Matrix};
    use chef_model::{Dataset, LogisticRegression, SoftLabel};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn fixture(n: usize) -> (LogisticRegression, WeightedObjective, Dataset) {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..n {
            let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
            let sign = if c == 1 { 1.0 } else { -1.0 };
            raw.push(sign + rng.gen_range(-1.0..1.0));
            raw.push(sign + rng.gen_range(-1.0..1.0));
            let p = rng.gen_range(0.3..0.7);
            labels.push(SoftLabel::new(vec![p, 1.0 - p]));
            truth.push(Some(c));
        }
        (
            LogisticRegression::new(2, 2),
            WeightedObjective::new(0.8, 0.05),
            Dataset::new(
                Matrix::from_vec(n, 2, raw),
                labels,
                vec![false; n],
                truth,
                2,
            ),
        )
    }

    fn sgd() -> SgdConfig {
        SgdConfig {
            lr: 0.1,
            epochs: 6,
            batch_size: 25,
            seed: 2,
            cache_provenance: false, // constructor forces it on
        }
    }

    #[test]
    fn initial_train_produces_provenance() {
        let (model, obj, data) = fixture(100);
        let ctor = ModelConstructor::new(ConstructorKind::Retrain, sgd());
        let out = ctor.initial_train(&model, &obj, &data);
        assert_eq!(out.trace.params.len(), out.trace.plan.total_iterations());
        assert!(out.elapsed.as_nanos() > 0);
    }

    #[test]
    fn deltagrad_l_tracks_retrain() {
        let (model, obj, data) = fixture(150);
        let retrain_ctor = ModelConstructor::new(ConstructorKind::Retrain, sgd());
        let dg_ctor = ModelConstructor::new(
            ConstructorKind::DeltaGradL(DeltaGradConfig::default()),
            sgd(),
        );
        let init = retrain_ctor.initial_train(&model, &obj, &data);

        let mut cleaned = data.clone();
        // Clean to the reference label where one exists; a sample without
        // ground truth abstains (is skipped) instead of panicking, the
        // same policy as the production annotation phase.
        let mut changed = Vec::new();
        for i in 0..6 {
            let Some(t) = data.ground_truth(i) else {
                continue;
            };
            cleaned.clean_label(i, SoftLabel::onehot(t, 2));
            changed.push(i);
        }

        let a = retrain_ctor.update(&model, &obj, &data, &cleaned, &changed, &init.trace);
        let b = dg_ctor.update(&model, &obj, &data, &cleaned, &changed, &init.trace);
        let rel = vector::distance(&a.w, &b.w) / vector::norm2(&a.w).max(1.0);
        assert!(rel < 0.05, "relative parameter distance {rel}");
    }

    #[test]
    fn retrain_ignores_old_data() {
        let (model, obj, data) = fixture(60);
        let ctor = ModelConstructor::new(ConstructorKind::Retrain, sgd());
        let init = ctor.initial_train(&model, &obj, &data);
        let mut cleaned = data.clone();
        cleaned.clean_label(0, SoftLabel::onehot(0, 2));
        let from_old = ctor.update(&model, &obj, &data, &cleaned, &[0], &init.trace);
        // Retraining only depends on new_data; passing garbage old data
        // must not change the result.
        let garbage = cleaned.clone();
        let from_garbage = ctor.update(&model, &obj, &garbage, &cleaned, &[0], &init.trace);
        assert_eq!(from_old.w, from_garbage.w);
    }
}
