//! The sample-selector abstraction of the pipeline's first phase.
//!
//! The pipeline is generic over *how* the next `b` samples are picked so
//! the experiment harness can swap **Infl** for the baselines (Infl-D,
//! Infl-Y, active learning, O2U, TARS, DUTI — see `chef-baselines`).
//! Selectors may also return a *suggested clean label*, which only Infl
//! and DUTI can produce; the annotation phase treats it as one more
//! independent labeler (§4.3).

use crate::increm::{IncremInfl, IncremSnapshot, IncremStats};
use crate::influence::{influence_vector_outcome_from, rank_infl_top_b_sharded, InflConfig};
use chef_model::{DatasetStore, Model, WeightedObjective};

/// Everything a selector may look at when ranking the uncleaned pool.
pub struct SelectorContext<'a> {
    /// The classifier (trait object so selectors stay object-safe).
    pub model: &'a dyn Model,
    /// The weighted objective (γ, λ).
    pub objective: &'a WeightedObjective,
    /// Current training data (any [`DatasetStore`]: the in-memory
    /// [`chef_model::Dataset`] or an out-of-core mmap store).
    pub data: &'a dyn DatasetStore,
    /// Trusted validation set.
    pub val: &'a dyn DatasetStore,
    /// Current model parameters.
    pub w: &'a [f64],
    /// Indices still eligible for cleaning.
    pub pool: &'a [usize],
    /// Number of samples to select this round.
    pub b: usize,
    /// Cleaning round number (0 = first round of loop 2).
    pub round: usize,
}

/// One selected sample, with the selector's suggested clean label if it
/// has one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Training-set index.
    pub index: usize,
    /// Suggested deterministic label (Infl/DUTI only).
    pub suggested: Option<usize>,
}

/// Cost counters for one selection round, consumed by the pipeline's
/// telemetry layer (the `selector` object of telemetry.v1).
///
/// `pruned + scored == pool` always holds: Theorem 1's bound either
/// removes a candidate without scoring it (`pruned`) or lets it through
/// to a full Eq. 6 evaluation (`scored`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SelectorStats {
    /// Size of the uncleaned pool this round.
    pub pool: usize,
    /// Candidates eliminated by the Theorem 1 bound without scoring.
    pub pruned: usize,
    /// Candidates that received a full Eq. 6 evaluation.
    pub scored: usize,
    /// Dense gradient evaluations spent scoring (`scored × (C + 1)` when
    /// γ < 1: `C` per-class gradients plus the up-weight term's gradient).
    pub grad_evals: usize,
    /// Hessian-vector products in the round's one CG solve.
    pub hvp_evals: usize,
    /// Fraction of the pool the bound eliminated (`pruned / pool`) — the
    /// quantity Exp2 (paper Table 2) measures as Increm-Infl's win.
    pub bound_hit_rate: f64,
    /// Gradient evaluations of the Increm-Infl initialization step
    /// (`n × (C + 1)` on the round the provenance cache is built, else 0).
    pub provenance_grads: usize,
    /// Which scoring kernel ran ([`chef_model::KernelPath::name`]:
    /// `"gemm"` for the batched closed form, `"per_sample"` for the
    /// generic fallback; empty when the selector doesn't report one).
    pub kernel_path: &'static str,
    /// Which precision/ILP backend the GEMM panels ran on
    /// ([`chef_linalg::KernelBackend::name`]: `"reference"`,
    /// `"unrolled_f64"` or `"mixed_f32"`; empty when the kernel path is
    /// not `"gemm"` — the per-sample fallback has no panel kernel).
    pub kernel_backend: &'static str,
    /// CG iterations the warm start saved this round, estimated against
    /// the selector's most recent *cold* solve (0 on cold rounds and
    /// whenever warm starting is off). Live telemetry only — never
    /// persisted, like `provenance_grads`.
    pub cg_iters_saved: usize,
}

/// Serializable selector state captured at a round boundary, so a
/// resumed pipeline re-enters the loop with the identical selector
/// (most importantly Increm-Infl's frozen `w⁽⁰⁾` provenance, which would
/// otherwise be re-initialized at the *restored* model and change every
/// subsequent Theorem 1 interval).
#[derive(Debug, Clone, PartialEq)]
pub enum SelectorCheckpoint {
    /// The selector carries no cross-round state worth persisting
    /// (baselines; also Full Infl before it diverges from this default).
    Stateless,
    /// The Infl family: the Increm-Infl initialization-step snapshot,
    /// `None` when pruning is off or not yet initialized.
    Infl {
        /// Frozen provenance, present once the initialization step ran.
        increm: Option<IncremSnapshot>,
    },
}

/// A sample-selection strategy.
pub trait SampleSelector {
    /// Short name used in experiment tables.
    fn name(&self) -> &str;

    /// Pick up to `ctx.b` samples from `ctx.pool`, most valuable first.
    fn select(&mut self, ctx: &SelectorContext<'_>) -> Vec<Selection>;

    /// Pruning counters of the most recent round, if the selector tracks
    /// any (only Increm-Infl does).
    fn stats(&self) -> Option<IncremStats> {
        None
    }

    /// Cost counters of the most recent round for telemetry, if the
    /// selector tracks them (the Infl family does; baselines report
    /// `None` and the pipeline falls back to pool-size-only counters).
    fn phase_stats(&self) -> Option<SelectorStats> {
        None
    }

    /// Serializable cross-round state for the checkpoint subsystem.
    /// Stateless selectors (the default) report
    /// [`SelectorCheckpoint::Stateless`].
    fn checkpoint_state(&self) -> SelectorCheckpoint {
        SelectorCheckpoint::Stateless
    }

    /// Restore state captured by [`Self::checkpoint_state`].
    ///
    /// # Errors
    /// Returns a description when `state` does not belong to this
    /// selector kind (e.g. a checkpoint written by an Infl run handed to
    /// a baseline).
    fn restore_checkpoint(&mut self, state: SelectorCheckpoint) -> Result<(), String> {
        match state {
            SelectorCheckpoint::Stateless => Ok(()),
            other => Err(format!(
                "selector {:?} cannot restore checkpoint state {other:?}",
                self.name()
            )),
        }
    }
}

/// The paper's Infl selector, optionally accelerated with Increm-Infl.
#[derive(Debug, Default)]
pub struct InflSelector {
    /// Influence configuration (CG settings).
    pub cfg: InflConfig,
    /// Whether to prune with Increm-Infl (initialized lazily on the first
    /// round, which is the paper's "initialization step").
    pub use_increm: bool,
    /// Whether to warm-start each round's CG solve from the previous
    /// round's iHVP solution (off by default; the solve still runs to the
    /// same fixed tolerance either way, only the iteration count moves).
    pub warm_start_cg: bool,
    increm: Option<IncremInfl>,
    /// Previous round's iHVP solution, cached for the warm start. Not
    /// persisted in [`SelectorCheckpoint`]: a resumed pipeline simply
    /// pays one cold solve on its first round.
    prev_v: Option<Vec<f64>>,
    /// Iteration count of the most recent cold solve (the baseline the
    /// `cg_iters_saved` estimate is measured against).
    cold_iters: Option<usize>,
    /// Pruning counters of the most recent round (None when running Full).
    pub last_stats: Option<IncremStats>,
    /// Telemetry counters of the most recent round.
    pub last_phase: Option<SelectorStats>,
}

impl InflSelector {
    /// Full (unpruned) Infl.
    pub fn full() -> Self {
        Self {
            use_increm: false,
            ..Self::default()
        }
    }

    /// Infl with Increm-Infl pruning.
    pub fn incremental() -> Self {
        Self {
            use_increm: true,
            ..Self::default()
        }
    }

    /// Enable warm-started CG solves across rounds.
    #[must_use]
    pub fn with_warm_start(mut self) -> Self {
        self.warm_start_cg = true;
        self
    }
}

impl SampleSelector for InflSelector {
    fn name(&self) -> &str {
        if self.use_increm {
            "Infl+Increm"
        } else {
            "Infl"
        }
    }

    fn select(&mut self, ctx: &SelectorContext<'_>) -> Vec<Selection> {
        // Re-mix the Hessian-subsample seed every round so successive CG
        // solves sketch different training rows (round 0 keeps the base
        // seed, so single-round behaviour is unchanged).
        let round_cfg = self.cfg.for_round(ctx.round);
        let warm = if self.warm_start_cg {
            self.prev_v.as_deref()
        } else {
            None
        };
        let warm_started = warm.is_some();
        let outcome = influence_vector_outcome_from(
            ctx.model,
            ctx.objective,
            ctx.data,
            ctx.val,
            ctx.w,
            &round_cfg,
            warm,
        );
        let cg_iters_saved = if warm_started {
            self.cold_iters
                .map_or(0, |cold| cold.saturating_sub(outcome.cg_iters))
        } else {
            self.cold_iters = Some(outcome.cg_iters);
            0
        };
        let v = outcome.v;
        if self.warm_start_cg {
            self.prev_v = Some(v.clone());
        }
        let mut provenance_grads = 0;
        if self.use_increm && self.increm.is_none() {
            // Initialization step: freeze provenance at w⁽⁰⁾. Costs one
            // full-label gradient plus C per-class gradients per sample.
            self.increm = Some(IncremInfl::initialize(ctx.model, ctx.data, ctx.w));
            provenance_grads = ctx.data.len() * (ctx.model.num_classes() + 1);
        }
        let scores = if let (true, Some(increm)) = (self.use_increm, self.increm.as_ref()) {
            let (scores, stats) = increm.select(
                ctx.model,
                ctx.data,
                ctx.w,
                &v,
                ctx.pool,
                ctx.b,
                ctx.objective.gamma,
            );
            self.last_stats = Some(stats);
            scores
        } else {
            self.last_stats = None;
            rank_infl_top_b_sharded(
                ctx.model,
                ctx.data,
                ctx.w,
                &v,
                ctx.pool,
                ctx.objective.gamma,
                ctx.b,
            )
        };
        let pool = ctx.pool.len();
        let scored = match self.last_stats {
            Some(stats) => stats.candidates,
            None => pool,
        };
        let pruned = pool - scored;
        // Eq. 6 per candidate: C class gradients, plus the up-weight
        // term's full gradient when γ < 1.
        let grads_per_score = ctx.model.num_classes() + usize::from(ctx.objective.gamma < 1.0);
        self.last_phase = Some(SelectorStats {
            pool,
            pruned,
            scored,
            grad_evals: scored * grads_per_score,
            hvp_evals: outcome.hvp_evals,
            bound_hit_rate: pruned as f64 / pool.max(1) as f64,
            provenance_grads,
            kernel_path: ctx.model.scoring_kernel().name(),
            kernel_backend: match ctx.model.scoring_kernel() {
                chef_model::KernelPath::Gemm => ctx.model.kernel_backend().name(),
                chef_model::KernelPath::PerSample => "",
            },
            cg_iters_saved,
        });
        scores
            .into_iter()
            .map(|s| Selection {
                index: s.index,
                suggested: Some(s.suggested),
            })
            .collect()
    }

    fn stats(&self) -> Option<IncremStats> {
        self.last_stats
    }

    fn phase_stats(&self) -> Option<SelectorStats> {
        self.last_phase
    }

    fn checkpoint_state(&self) -> SelectorCheckpoint {
        SelectorCheckpoint::Infl {
            increm: self.increm.as_ref().map(IncremInfl::snapshot),
        }
    }

    fn restore_checkpoint(&mut self, state: SelectorCheckpoint) -> Result<(), String> {
        match state {
            SelectorCheckpoint::Infl { increm } => {
                self.increm = match increm {
                    Some(snap) => Some(IncremInfl::from_snapshot(snap)?),
                    None => None,
                };
                Ok(())
            }
            SelectorCheckpoint::Stateless => Err(format!(
                "selector {:?} cannot restore a stateless checkpoint",
                self.name()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_linalg::Matrix;
    use chef_model::{Dataset, LogisticRegression, SoftLabel};

    fn toy() -> (LogisticRegression, WeightedObjective, Dataset, Dataset) {
        let n = 40;
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let sign = if c == 1 { 1.0 } else { -1.0 };
            raw.push(sign * (1.0 + 0.01 * i as f64));
            raw.push(sign);
            labels.push(SoftLabel::new(vec![0.5, 0.5]));
            truth.push(Some(c));
        }
        let data = Dataset::new(
            Matrix::from_vec(n, 2, raw.clone()),
            labels,
            vec![false; n],
            truth.clone(),
            2,
        );
        let val = Dataset::new(
            Matrix::from_vec(n, 2, raw),
            (0..n).map(|i| SoftLabel::onehot(i % 2, 2)).collect(),
            vec![true; n],
            truth,
            2,
        );
        (
            LogisticRegression::new(2, 2),
            WeightedObjective::new(0.8, 0.05),
            data,
            val,
        )
    }

    #[test]
    fn full_and_incremental_agree_on_first_round() {
        let (model, obj, data, val) = toy();
        let w = vec![0.05; chef_model::Model::num_params(&model)];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 5,
            round: 0,
        };
        let mut full = InflSelector::full();
        let mut inc = InflSelector::incremental();
        let a = full.select(&ctx);
        let b = inc.select(&ctx);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(full.last_stats.is_none());
        assert!(inc.last_stats.is_some());
    }

    #[test]
    fn respects_budget_and_pool() {
        let (model, obj, data, val) = toy();
        let w = vec![0.0; chef_model::Model::num_params(&model)];
        let pool = vec![3, 9, 17];
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 10,
            round: 0,
        };
        let mut sel = InflSelector::full();
        let picks = sel.select(&ctx);
        assert_eq!(picks.len(), 3);
        for p in &picks {
            assert!(pool.contains(&p.index));
            assert!(p.suggested.is_some());
        }
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(InflSelector::full().name(), "Infl");
        assert_eq!(InflSelector::incremental().name(), "Infl+Increm");
    }

    #[test]
    fn checkpoint_round_trip_restores_increm_state() {
        let (model, obj, data, val) = toy();
        let w = vec![0.05; chef_model::Model::num_params(&model)];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 5,
            round: 0,
        };
        let mut sel = InflSelector::incremental();
        let first = sel.select(&ctx);
        let state = sel.checkpoint_state();
        assert!(matches!(
            state,
            SelectorCheckpoint::Infl { increm: Some(_) }
        ));

        // A fresh selector restored from the checkpoint must not re-run
        // the initialization step and must pick the same samples.
        let mut restored = InflSelector::incremental();
        restored.restore_checkpoint(state).unwrap();
        let ctx1 = SelectorContext { round: 1, ..ctx };
        let a = sel.select(&ctx1);
        let b = restored.select(&ctx1);
        assert_eq!(a, b);
        assert!(!first.is_empty());
        // No provenance rebuild on the restored selector.
        assert_eq!(restored.last_phase.unwrap().provenance_grads, 0);
    }

    #[test]
    fn warm_start_saves_iterations_and_preserves_selection() {
        let (model, obj, data, val) = toy();
        let w = vec![0.05; chef_model::Model::num_params(&model)];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 5,
            round: 0,
        };
        let mut cold = InflSelector::full();
        let mut warm = InflSelector::full().with_warm_start();
        // Round 0: no cached solution yet, so both run the cold solve and
        // must agree exactly.
        let a = cold.select(&ctx);
        let b = warm.select(&ctx);
        assert_eq!(a, b);
        assert_eq!(warm.last_phase.unwrap().cg_iters_saved, 0);
        // Round 1 at the *same* parameters: the warm start begins at the
        // exact solution, so it must save every cold iteration (the toy
        // set is below the subsampling threshold, so the operator is
        // identical across rounds).
        let ctx1 = SelectorContext { round: 1, ..ctx };
        let a1 = cold.select(&ctx1);
        let b1 = warm.select(&ctx1);
        assert_eq!(a1, b1);
        let saved = warm.last_phase.unwrap().cg_iters_saved;
        assert!(saved > 0, "warm start at the solution saved {saved} iters");
        assert_eq!(cold.last_phase.unwrap().cg_iters_saved, 0);
    }

    #[test]
    fn restore_rejects_mismatched_checkpoint_kind() {
        let mut sel = InflSelector::incremental();
        assert!(sel
            .restore_checkpoint(SelectorCheckpoint::Stateless)
            .is_err());
    }
}
