//! Evaluation metrics.
//!
//! Every table of the paper reports the F1 score of the positive class on
//! the held-out test set. These helpers compute F1/accuracy from a model,
//! its parameters, and a dataset with ground-truth labels.

use chef_model::{DatasetStore, Model};

/// Confusion counts for one class treated as positive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Precision `tp / (tp + fp)` (0 when undefined).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)` (0 when undefined).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 = harmonic mean of precision and recall (0 when undefined).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all counted samples.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Build the confusion matrix of `positive_class` from predictions vs
/// ground truth. Samples without ground truth are skipped.
pub fn confusion_matrix<M: Model + ?Sized>(
    model: &M,
    w: &[f64],
    data: &dyn DatasetStore,
    positive_class: usize,
) -> ConfusionMatrix {
    let mut cm = ConfusionMatrix::default();
    for i in 0..data.len() {
        let Some(truth) = data.ground_truth(i) else {
            continue;
        };
        let pred = model.predict_class(w, data.feature(i));
        match (pred == positive_class, truth == positive_class) {
            (true, true) => cm.tp += 1,
            (true, false) => cm.fp += 1,
            (false, true) => cm.fn_ += 1,
            (false, false) => cm.tn += 1,
        }
    }
    cm
}

/// F1 of the positive class (class 1, the paper's convention).
pub fn f1_score<M: Model + ?Sized>(model: &M, w: &[f64], data: &dyn DatasetStore) -> f64 {
    confusion_matrix(model, w, data, 1).f1()
}

/// Plain accuracy.
pub fn accuracy<M: Model + ?Sized>(model: &M, w: &[f64], data: &dyn DatasetStore) -> f64 {
    confusion_matrix(model, w, data, 1).accuracy()
}

/// Macro-averaged F1 over all classes (used by the multiclass extension;
/// the paper's binary tasks report the positive-class F1 instead).
pub fn macro_f1<M: Model + ?Sized>(model: &M, w: &[f64], data: &dyn DatasetStore) -> f64 {
    let c = data.num_classes();
    (0..c)
        .map(|class| confusion_matrix(model, w, data, class).f1())
        .sum::<f64>()
        / c as f64
}

/// A bundle of the metrics the experiment tables report.
#[derive(Debug, Clone, Copy)]
pub struct Evaluation {
    /// F1 of class 1.
    pub f1: f64,
    /// Accuracy.
    pub accuracy: f64,
    /// Precision of class 1.
    pub precision: f64,
    /// Recall of class 1.
    pub recall: f64,
}

/// Evaluate a model on a dataset with ground truth.
pub fn evaluate_f1<M: Model + ?Sized>(model: &M, w: &[f64], data: &dyn DatasetStore) -> Evaluation {
    let cm = confusion_matrix(model, w, data, 1);
    Evaluation {
        f1: cm.f1(),
        accuracy: cm.accuracy(),
        precision: cm.precision(),
        recall: cm.recall(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_linalg::Matrix;
    use chef_model::Dataset;
    use chef_model::{LogisticRegression, SoftLabel};

    /// Dataset where sample i has feature x and truth t.
    fn data_from(points: &[(f64, usize)]) -> Dataset {
        let n = points.len();
        Dataset::new(
            Matrix::from_vec(n, 1, points.iter().map(|p| p.0).collect()),
            points.iter().map(|p| SoftLabel::onehot(p.1, 2)).collect(),
            vec![true; n],
            points.iter().map(|p| Some(p.1)).collect(),
            2,
        )
    }

    /// LR params that predict class 1 iff x > 0 (for dim=1, C=2).
    fn threshold_params() -> Vec<f64> {
        // Rows: class 0 then class 1; columns: [w_x, bias].
        vec![-5.0, 0.0, 5.0, 0.0]
    }

    #[test]
    fn confusion_counts_known_case() {
        let model = LogisticRegression::new(1, 2);
        let data = data_from(&[(1.0, 1), (2.0, 1), (-1.0, 1), (1.0, 0), (-2.0, 0)]);
        let cm = confusion_matrix(&model, &threshold_params(), &data, 1);
        assert_eq!(
            cm,
            ConfusionMatrix {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((cm.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn perfect_classifier_scores_one() {
        let model = LogisticRegression::new(1, 2);
        let data = data_from(&[(1.0, 1), (-1.0, 0), (2.0, 1), (-2.0, 0)]);
        assert!((f1_score(&model, &threshold_params(), &data) - 1.0).abs() < 1e-12);
        assert!((accuracy(&model, &threshold_params(), &data) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_return_zero() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn samples_without_truth_are_skipped() {
        let model = LogisticRegression::new(1, 2);
        let mut data = data_from(&[(1.0, 1), (-1.0, 0)]);
        data.push(&[3.0], SoftLabel::uniform(2), false, None);
        let cm = confusion_matrix(&model, &threshold_params(), &data, 1);
        assert_eq!(cm.tp + cm.fp + cm.tn + cm.fn_, 2);
    }

    #[test]
    fn macro_f1_averages_both_classes() {
        let model = LogisticRegression::new(1, 2);
        let data = data_from(&[(1.0, 1), (2.0, 1), (-1.0, 1), (1.0, 0), (-2.0, 0)]);
        let w = threshold_params();
        let f1_pos = confusion_matrix(&model, &w, &data, 1).f1();
        let f1_neg = confusion_matrix(&model, &w, &data, 0).f1();
        assert!((macro_f1(&model, &w, &data) - 0.5 * (f1_pos + f1_neg)).abs() < 1e-12);
    }

    #[test]
    fn evaluation_bundle_is_consistent() {
        let model = LogisticRegression::new(1, 2);
        let data = data_from(&[(1.0, 1), (2.0, 0), (-1.0, 0)]);
        let e = evaluate_f1(&model, &threshold_params(), &data);
        let cm = confusion_matrix(&model, &threshold_params(), &data, 1);
        assert_eq!(e.f1, cm.f1());
        assert_eq!(e.accuracy, cm.accuracy());
        assert_eq!(e.precision, cm.precision());
        assert_eq!(e.recall, cm.recall());
    }
}
