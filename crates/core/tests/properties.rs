//! Property-based tests for the CHEF core: influence invariants, bound
//! containment, vote aggregation, metrics.

use chef_core::annotation::{AnnotationConfig, AnnotationPhase, LabelStrategy};
use chef_core::increm::IncremInfl;
use chef_core::influence::{influence_vector, rank_infl_with_vector, InflConfig};
use chef_core::metrics::ConfusionMatrix;
use chef_core::selector::Selection;
use chef_linalg::Matrix;
use chef_model::{Dataset, LogisticRegression, SoftLabel, WeightedObjective};
use proptest::prelude::*;

/// Build a small dataset from proptest-generated raw parts.
fn dataset(points: Vec<(f64, f64, bool)>, probs: Vec<f64>) -> Dataset {
    let n = points.len();
    let mut raw = Vec::with_capacity(2 * n);
    let mut labels = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for ((x0, x1, t), p) in points.iter().zip(&probs) {
        raw.push(*x0);
        raw.push(*x1);
        labels.push(SoftLabel::new(vec![*p, 1.0 - *p]));
        truth.push(Some(usize::from(*t)));
    }
    Dataset::new(
        Matrix::from_vec(n, 2, raw),
        labels,
        vec![false; n],
        truth,
        2,
    )
}

fn val_set(points: &[(f64, f64, bool)]) -> Dataset {
    let n = points.len();
    let mut raw = Vec::with_capacity(2 * n);
    let mut labels = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for (x0, x1, t) in points {
        raw.push(*x0);
        raw.push(*x1);
        labels.push(SoftLabel::onehot(usize::from(*t), 2));
        truth.push(Some(usize::from(*t)));
    }
    Dataset::new(Matrix::from_vec(n, 2, raw), labels, vec![true; n], truth, 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn influence_ranking_is_a_permutation_sorted_ascending(
        points in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0, any::<bool>()), 12..24),
        probs in prop::collection::vec(0.05f64..0.95, 24),
        w in prop::collection::vec(-1.0f64..1.0, 6),
    ) {
        let data = dataset(points.clone(), probs[..points.len()].to_vec());
        let val = val_set(&points);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.8, 0.2);
        let v = influence_vector(&model, &obj, &data, &val, &w, &InflConfig::default());
        let pool = data.uncleaned_indices();
        let ranked = rank_infl_with_vector(&model, &data, &w, &v, &pool, obj.gamma);
        prop_assert_eq!(ranked.len(), pool.len());
        let mut seen: Vec<usize> = ranked.iter().map(|s| s.index).collect();
        seen.sort_unstable();
        let mut expect = pool.clone();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
        for pair in ranked.windows(2) {
            prop_assert!(pair[0].score <= pair[1].score);
        }
        for s in &ranked {
            prop_assert!(s.suggested < 2);
            prop_assert!(s.score.is_finite());
        }
    }

    #[test]
    fn increm_candidates_contain_exact_top_b(
        points in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0, any::<bool>()), 16..30),
        probs in prop::collection::vec(0.05f64..0.95, 30),
        drift in prop::collection::vec(-0.05f64..0.05, 6),
        b in 1usize..6,
    ) {
        let data = dataset(points.clone(), probs[..points.len()].to_vec());
        let val = val_set(&points);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.8, 0.2);
        let w0 = vec![0.1; 6];
        let increm = IncremInfl::initialize(&model, &data, &w0);
        let w_k: Vec<f64> = w0.iter().zip(&drift).map(|(a, d)| a + d).collect();
        let v = influence_vector(&model, &obj, &data, &val, &w_k, &InflConfig::default());
        let pool = data.uncleaned_indices();
        let (cands, stats) = increm.candidates(&model, &data, &w_k, &v, &pool, b, obj.gamma);
        let mut exact = rank_infl_with_vector(&model, &data, &w_k, &v, &pool, obj.gamma);
        exact.truncate(b);
        for s in &exact {
            prop_assert!(
                cands.contains(&s.index),
                "sample {} missing from {} candidates (pool {})",
                s.index, stats.candidates, stats.pool
            );
        }
    }

    #[test]
    fn annotation_budget_accounting_is_exact(
        truths in prop::collection::vec(0usize..2, 5..20),
        error in 0.0f64..0.5,
        seed in 0u64..500,
    ) {
        let n = truths.len();
        let mut data = Dataset::new(
            Matrix::from_vec(n, 1, (0..n).map(|i| i as f64).collect()),
            truths.iter().map(|_| SoftLabel::uniform(2)).collect(),
            vec![false; n],
            truths.iter().map(|&t| Some(t)).collect(),
            2,
        );
        let phase = AnnotationPhase::new(AnnotationConfig {
            strategy: LabelStrategy::HumansOnly(3),
            error_rate: error,
            seed,
        });
        let selections: Vec<Selection> = (0..n)
            .map(|index| Selection { index, suggested: None })
            .collect();
        let outcomes = phase.annotate(&mut data, &selections);
        prop_assert_eq!(outcomes.len(), n);
        let cleaned = outcomes
            .iter()
            .filter(|o| matches!(o, chef_core::annotation::AnnotationOutcome::Cleaned(_)))
            .count();
        prop_assert_eq!(cleaned, data.num_clean());
        // 3 voters over 2 classes can never tie.
        prop_assert_eq!(cleaned, n);
    }

    #[test]
    fn f1_is_bounded_and_symmetric_in_counts(
        tp in 0usize..50, fp in 0usize..50, tn in 0usize..50, fn_ in 0usize..50,
    ) {
        let cm = ConfusionMatrix { tp, fp, tn, fn_ };
        let f1 = cm.f1();
        prop_assert!((0.0..=1.0).contains(&f1));
        prop_assert!((0.0..=1.0).contains(&cm.precision()));
        prop_assert!((0.0..=1.0).contains(&cm.recall()));
        if tp > 0 && fp == 0 && fn_ == 0 {
            prop_assert!((f1 - 1.0).abs() < 1e-12);
        }
        if tp == 0 {
            prop_assert_eq!(f1, 0.0);
        }
    }

    #[test]
    fn influence_of_deterministic_self_label_is_pure_upweight(
        points in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0, any::<bool>()), 10..16),
        w in prop::collection::vec(-1.0f64..1.0, 6),
        gamma in 0.1f64..1.0,
    ) {
        // A sample whose label is already one-hot at class c has δ_y = 0
        // for its own class, so Eq. 6 degenerates to the (1−γ) term; at
        // γ = 1 it must be exactly zero.
        let n = points.len();
        let mut data = dataset(points.clone(), vec![0.5; n]);
        data.set_label(0, SoftLabel::onehot(1, 2));
        let val = val_set(&points);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(gamma, 0.2);
        let v = influence_vector(&model, &obj, &data, &val, &w, &InflConfig::default());
        let mut scratch = chef_core::influence::InflScratch::new(&model);
        let at_gamma = chef_core::influence::influence_of_label(
            &model, &data, &w, &v, 0, 1, gamma, &mut scratch,
        );
        let at_one = chef_core::influence::influence_of_label(
            &model, &data, &w, &v, 0, 1, 1.0, &mut scratch,
        );
        prop_assert!(at_one.abs() < 1e-12);
        prop_assert!(at_gamma.is_finite());
    }
}
