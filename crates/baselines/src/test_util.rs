//! Shared fixtures for the baseline selectors' unit tests.

use chef_linalg::Matrix;
use chef_model::{Dataset, LogisticRegression, SoftLabel, WeightedObjective};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small weakly-labeled two-cluster problem plus a clean validation set.
pub fn fixture(n: usize, seed: u64) -> (LogisticRegression, WeightedObjective, Dataset, Dataset) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut raw = Vec::new();
    let mut labels = Vec::new();
    let mut truth = Vec::new();
    for _ in 0..n {
        let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
        let sign = if c == 1 { 1.0 } else { -1.0 };
        raw.push(sign + rng.gen_range(-1.0..1.0));
        raw.push(sign + rng.gen_range(-1.0..1.0));
        let p = rng.gen_range(0.1..0.9);
        labels.push(SoftLabel::new(vec![p, 1.0 - p]));
        truth.push(Some(c));
    }
    let data = Dataset::new(
        Matrix::from_vec(n, 2, raw),
        labels,
        vec![false; n],
        truth,
        2,
    );
    let vn = 30;
    let mut vraw = Vec::new();
    let mut vlab = Vec::new();
    let mut vtruth = Vec::new();
    for _ in 0..vn {
        let c = usize::from(rng.gen_range(0.0..1.0) < 0.5);
        let sign = if c == 1 { 1.0 } else { -1.0 };
        vraw.push(sign + rng.gen_range(-1.0..1.0));
        vraw.push(sign + rng.gen_range(-1.0..1.0));
        vlab.push(SoftLabel::onehot(c, 2));
        vtruth.push(Some(c));
    }
    let val = Dataset::new(
        Matrix::from_vec(vn, 2, vraw),
        vlab,
        vec![true; vn],
        vtruth,
        2,
    );
    (
        LogisticRegression::new(2, 2),
        WeightedObjective::new(0.8, 0.05),
        data,
        val,
    )
}
