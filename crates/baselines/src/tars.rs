//! **TARS** — cleaning crowdsourced *deterministic* labels with oracles
//! (Dolatshah et al., VLDB 2018; paper Appendix G.3).
//!
//! TARS scores each noisily-labeled sample by the *expected* model
//! improvement of sending it to an oracle: the probability that the
//! oracle would flip the label, times the influence of that flip on the
//! model. The original estimates the flip probability from the joint
//! distribution of all annotators' labels — exponential in the number of
//! annotators, which is why the paper only compares on the datasets with
//! small panels.
//!
//! Adaptation (documented in DESIGN.md): TARS requires labels in {0, 1},
//! so probabilistic labels are *rounded* before scoring (the paper does
//! the same for the comparison). The flip probability of sample `z̃` with
//! rounded label `ŷ` is estimated from the model's own posterior,
//! `P(flip to c) ∝ p⁽ᶜ⁾(w, x)` for `c ≠ ŷ` — the calibrated stand-in for
//! the annotator-combination table we don't have — and the flip influence
//! is the same label-perturbation influence Infl uses, evaluated at the
//! rounded label. Samples with the most negative expected influence are
//! selected.

use chef_core::influence::{influence_vector, InflConfig};
use chef_core::selector::{SampleSelector, Selection, SelectorContext};
use chef_linalg::vector;

/// The TARS selector.
#[derive(Debug, Default)]
pub struct Tars {
    /// CG configuration for the `H⁻¹v` solve.
    pub cfg: InflConfig,
}

impl SampleSelector for Tars {
    fn name(&self) -> &str {
        "TARS"
    }

    fn select(&mut self, ctx: &SelectorContext<'_>) -> Vec<Selection> {
        let v = influence_vector(
            ctx.model,
            ctx.objective,
            ctx.data,
            ctx.val,
            ctx.w,
            &self.cfg,
        );
        let c_count = ctx.model.num_classes();
        let mut g = vec![0.0; ctx.model.num_params()];
        let mut scored: Vec<(usize, f64, usize)> = ctx
            .pool
            .iter()
            .map(|&i| {
                let x = ctx.data.feature(i);
                let rounded = ctx.data.label(i).rounded();
                let current = rounded.argmax();
                let posterior = ctx.model.predict(ctx.w, x);
                // Expected influence over oracle flips, weighted by the
                // estimated flip probabilities.
                let mut expected = 0.0;
                let mut best_flip = current;
                let mut best_score = f64::INFINITY;
                for (c, &p_c) in posterior.iter().enumerate().take(c_count) {
                    if c == current {
                        continue;
                    }
                    let delta = rounded.delta_to(c);
                    let mut infl = 0.0;
                    for (k, &d) in delta.iter().enumerate() {
                        if d == 0.0 {
                            continue;
                        }
                        ctx.model.class_grad(ctx.w, x, k, &mut g);
                        infl += d * vector::dot(&v, &g);
                    }
                    let flip_influence = -infl;
                    expected += p_c * flip_influence;
                    if flip_influence < best_score {
                        best_score = flip_influence;
                        best_flip = c;
                    }
                }
                (i, expected, best_flip)
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored
            .into_iter()
            .take(ctx.b)
            .map(|(index, _, _)| Selection {
                index,
                suggested: None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::fixture;
    use chef_model::Model;

    #[test]
    fn selects_b_samples() {
        let (model, obj, data, val) = fixture(50, 12);
        let w = vec![0.1; model.num_params()];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 8,
            round: 0,
        };
        let mut sel = Tars::default();
        let picks = sel.select(&ctx);
        assert_eq!(picks.len(), 8);
        assert_eq!(sel.name(), "TARS");
    }

    #[test]
    fn is_deterministic() {
        let (model, obj, data, val) = fixture(40, 13);
        let w = vec![0.2; model.num_params()];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 6,
            round: 0,
        };
        let mut sel = Tars::default();
        assert_eq!(sel.select(&ctx), sel.select(&ctx));
    }
}
