//! Active-learning selectors (paper §5.1, Settles 2009).
//!
//! * **Active (one)** — least-confidence sampling: pick the samples whose
//!   top predicted probability is smallest.
//! * **Active (two)** — entropy sampling: pick the samples with the
//!   highest predictive entropy.
//!
//! For binary classification the two orderings coincide (both are
//! monotone in `|p − ½|`), which is why the paper's tables show identical
//! numbers for the two columns.

use chef_core::selector::{SampleSelector, Selection, SelectorContext};

fn rank_by<F: FnMut(&SelectorContext<'_>, usize) -> f64>(
    ctx: &SelectorContext<'_>,
    mut score: F,
) -> Vec<Selection> {
    // Smaller score = selected first.
    let mut scored: Vec<(usize, f64)> = ctx.pool.iter().map(|&i| (i, score(ctx, i))).collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    scored
        .into_iter()
        .take(ctx.b)
        .map(|(index, _)| Selection {
            index,
            suggested: None,
        })
        .collect()
}

/// Least-confidence sampling ("Active (one)").
#[derive(Debug, Default)]
pub struct ActiveLeastConfidence;

impl SampleSelector for ActiveLeastConfidence {
    fn name(&self) -> &str {
        "Active (one)"
    }

    fn select(&mut self, ctx: &SelectorContext<'_>) -> Vec<Selection> {
        rank_by(ctx, |ctx, i| {
            let p = ctx.model.predict(ctx.w, ctx.data.feature(i));
            // Most confident prediction, ascending → least confident first.
            p.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        })
    }
}

/// Entropy sampling ("Active (two)").
#[derive(Debug, Default)]
pub struct ActiveEntropy;

impl SampleSelector for ActiveEntropy {
    fn name(&self) -> &str {
        "Active (two)"
    }

    fn select(&mut self, ctx: &SelectorContext<'_>) -> Vec<Selection> {
        rank_by(ctx, |ctx, i| {
            let p = ctx.model.predict(ctx.w, ctx.data.feature(i));
            // Negative entropy ascending → highest entropy first.
            p.iter()
                .filter(|&&v| v > 0.0)
                .map(|&v| v * v.ln())
                .sum::<f64>()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::fixture;
    use chef_model::Model;

    fn ctx_with<'a>(
        model: &'a chef_model::LogisticRegression,
        obj: &'a chef_model::WeightedObjective,
        data: &'a chef_model::Dataset,
        val: &'a chef_model::Dataset,
        w: &'a [f64],
        pool: &'a [usize],
        b: usize,
    ) -> SelectorContext<'a> {
        SelectorContext {
            model,
            objective: obj,
            data,
            val,
            w,
            pool,
            b,
            round: 0,
        }
    }

    #[test]
    fn both_pick_most_uncertain_samples() {
        let (model, obj, data, val) = fixture(50, 7);
        // Train-free parameters with a strong slope so confidence varies.
        let w = vec![0.8, 0.8, 0.0, -0.8, -0.8, 0.0];
        let pool = data.uncleaned_indices();
        let ctx = ctx_with(&model, &obj, &data, &val, &w, &pool, 5);
        let mut lc = ActiveLeastConfidence;
        let mut en = ActiveEntropy;
        let a = lc.select(&ctx);
        let b = en.select(&ctx);
        // Binary task: orderings coincide.
        let ia: Vec<usize> = a.iter().map(|s| s.index).collect();
        let ib: Vec<usize> = b.iter().map(|s| s.index).collect();
        assert_eq!(ia, ib);
        // The selected samples are less confident than the unselected ones.
        let conf = |i: usize| {
            let p = model.predict(&w, data.feature(i));
            p.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        };
        let max_sel = ia
            .iter()
            .map(|&i| conf(i))
            .fold(f64::NEG_INFINITY, f64::max);
        let min_unsel = pool
            .iter()
            .filter(|i| !ia.contains(i))
            .map(|&i| conf(i))
            .fold(f64::INFINITY, f64::min);
        assert!(max_sel <= min_unsel + 1e-12);
    }

    #[test]
    fn names() {
        assert_eq!(ActiveLeastConfidence.name(), "Active (one)");
        assert_eq!(ActiveEntropy.name(), "Active (two)");
    }
}
