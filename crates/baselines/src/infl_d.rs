//! **Infl-D** — the deletion influence function of Koh & Liang
//! (paper Eq. 2).
//!
//! `I_del(z) = −∇F(w, Z_val)ᵀ H⁻¹(w) ∇_w F(w, z)` estimates the change in
//! validation loss if training sample `z` were removed. The most negative
//! scores mark the most *harmful* samples and are selected for cleaning.
//! Unlike Infl it cannot suggest a cleaned label and does not model the
//! γ→1 re-weighting, which is exactly the gap Exp1 measures.

use chef_core::influence::{influence_vector, InflConfig};
use chef_core::selector::{SampleSelector, Selection, SelectorContext};
use chef_linalg::vector;

/// The Infl-D selector.
#[derive(Debug, Default)]
pub struct InflD {
    /// CG configuration for the `H⁻¹v` solve.
    pub cfg: InflConfig,
}

impl SampleSelector for InflD {
    fn name(&self) -> &str {
        "Infl-D"
    }

    fn select(&mut self, ctx: &SelectorContext<'_>) -> Vec<Selection> {
        let v = influence_vector(
            ctx.model,
            ctx.objective,
            ctx.data,
            ctx.val,
            ctx.w,
            &self.cfg,
        );
        let mut g = vec![0.0; ctx.model.num_params()];
        let mut scored: Vec<(usize, f64)> = ctx
            .pool
            .iter()
            .map(|&i| {
                ctx.model
                    .grad(ctx.w, ctx.data.feature(i), ctx.data.label(i), &mut g);
                (i, -vector::dot(&v, &g))
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored
            .into_iter()
            .take(ctx.b)
            .map(|(index, _)| Selection {
                index,
                suggested: None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::fixture;
    use chef_model::Model;

    #[test]
    fn selects_b_samples_without_suggestions() {
        let (model, obj, data, val) = fixture(60, 1);
        let w = vec![0.1; model.num_params()];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 7,
            round: 0,
        };
        let mut sel = InflD::default();
        let picks = sel.select(&ctx);
        assert_eq!(picks.len(), 7);
        assert!(picks.iter().all(|p| p.suggested.is_none()));
        assert_eq!(sel.name(), "Infl-D");
    }

    #[test]
    fn deterministic_given_same_state() {
        let (model, obj, data, val) = fixture(50, 2);
        let w = vec![0.05; model.num_params()];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 5,
            round: 0,
        };
        let mut sel = InflD::default();
        assert_eq!(sel.select(&ctx), sel.select(&ctx));
    }
}
