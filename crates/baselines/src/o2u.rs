//! **O2U** — noisy-label detection from loss curves under a cyclical
//! learning rate (Huang et al., ICCV 2019; paper §5.1).
//!
//! O2U-Net repeatedly transfers the network between over-fitting and
//! under-fitting by cycling the learning rate, recording each sample's
//! loss along the way: noisily-labeled samples keep a *high average loss*
//! across the cycle because the model can only memorize them at the
//! over-fitting end. Samples are ranked by mean loss, descending.
//!
//! Our adaptation for the CHEF setting: the cyclic phase trains the
//! convex model with a triangular learning-rate schedule on the weighted
//! objective (probabilistic labels included, as the paper's "no
//! modifications other than using Equation (1)" prescribes) and records
//! per-sample losses once per epoch. The ranking is computed on the
//! first call and consumed greedily across rounds, mirroring how a
//! one-shot detector plugs into the iterative pipeline.

use chef_core::selector::{SampleSelector, Selection, SelectorContext};
use chef_linalg::vector;
use chef_train::BatchPlan;

/// O2U hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct O2UConfig {
    /// Peak learning rate of the triangular cycle.
    pub lr_max: f64,
    /// Floor learning rate.
    pub lr_min: f64,
    /// Length of one cycle in epochs.
    pub cycle_epochs: usize,
    /// Number of cycles.
    pub cycles: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// RNG seed for the batch plan.
    pub seed: u64,
}

impl Default for O2UConfig {
    fn default() -> Self {
        Self {
            lr_max: 0.2,
            lr_min: 0.01,
            cycle_epochs: 10,
            cycles: 2,
            batch_size: 128,
            seed: 17,
        }
    }
}

/// The O2U selector.
#[derive(Debug)]
pub struct O2U {
    /// Hyperparameters of the cyclic phase.
    pub cfg: O2UConfig,
    /// Cached ranking (sample indices, noisiest first), built lazily.
    ranking: Vec<usize>,
}

impl Default for O2U {
    fn default() -> Self {
        Self::new(O2UConfig::default())
    }
}

impl O2U {
    /// Create an O2U selector.
    pub fn new(cfg: O2UConfig) -> Self {
        Self {
            cfg,
            ranking: Vec::new(),
        }
    }

    /// Run the cyclic-training phase and rank all pool samples by mean
    /// loss (descending).
    fn build_ranking(&self, ctx: &SelectorContext<'_>) -> Vec<usize> {
        let model = ctx.model;
        let data = ctx.data;
        let obj = ctx.objective;
        let m = model.num_params();
        let mut w = ctx.w.to_vec();
        let epochs = self.cfg.cycle_epochs * self.cfg.cycles;
        let plan = BatchPlan::new(data.len(), self.cfg.batch_size, epochs, self.cfg.seed);
        let per_epoch = plan.batches_per_epoch();
        let mut g = vec![0.0; m];
        let mut loss_sum = vec![0.0; data.len()];
        let mut records = 0usize;

        for (t, batch) in plan.iter() {
            let epoch = t / per_epoch;
            let phase =
                (epoch % self.cfg.cycle_epochs) as f64 / self.cfg.cycle_epochs.max(1) as f64;
            // Triangular schedule: start at lr_max, decay linearly to
            // lr_min over the cycle (the O2U "overfit → underfit" sweep
            // runs high-to-low per cycle).
            let lr = self.cfg.lr_max - (self.cfg.lr_max - self.cfg.lr_min) * phase;
            obj.batch_grad(model, data, &batch, &w, &mut g);
            vector::axpy(-lr, &g, &mut w);
            // Record per-sample losses at every epoch boundary.
            if (t + 1) % per_epoch == 0 {
                for (i, acc) in loss_sum.iter_mut().enumerate() {
                    *acc += model.loss(&w, data.feature(i), data.label(i));
                }
                records += 1;
            }
        }
        let _ = records;
        let mut order: Vec<usize> = ctx.pool.to_vec();
        order.sort_by(|&a, &b| loss_sum[b].total_cmp(&loss_sum[a]));
        order
    }
}

impl SampleSelector for O2U {
    fn name(&self) -> &str {
        "O2U"
    }

    fn select(&mut self, ctx: &SelectorContext<'_>) -> Vec<Selection> {
        if self.ranking.is_empty() && ctx.round == 0 {
            self.ranking = self.build_ranking(ctx);
        }
        if self.ranking.is_empty() {
            return Vec::new();
        }
        // Consume the next b indices still in the pool.
        let mut picks = Vec::with_capacity(ctx.b);
        let mut kept = Vec::with_capacity(self.ranking.len());
        for &i in &self.ranking {
            if picks.len() < ctx.b && ctx.pool.contains(&i) {
                picks.push(Selection {
                    index: i,
                    suggested: None,
                });
            } else {
                kept.push(i);
            }
        }
        self.ranking = kept;
        picks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::fixture;
    use chef_model::{Model, SoftLabel};

    #[test]
    fn flipped_labels_rank_high() {
        let (model, obj, mut data, val) = fixture(120, 9);
        // Give most samples their (soft) true label, but poison a few
        // with confidently wrong labels.
        for i in 0..data.len() {
            let t = data.ground_truth(i).unwrap();
            let l = if i < 6 {
                // poisoned: confident wrong label
                SoftLabel::onehot(1 - t, 2)
            } else {
                let mut p = vec![0.25, 0.25];
                p[t] = 0.75;
                SoftLabel::new(p)
            };
            data.set_label(i, l);
            data.mark_uncleaned(i);
        }
        let w = vec![0.0; model.num_params()];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 12,
            round: 0,
        };
        let mut sel = O2U::new(O2UConfig::default());
        let picks = sel.select(&ctx);
        let picked: Vec<usize> = picks.iter().map(|s| s.index).collect();
        let hits = (0..6).filter(|i| picked.contains(i)).count();
        assert!(
            hits >= 4,
            "only {hits}/6 poisoned samples in top 12: {picked:?}"
        );
    }

    #[test]
    fn consumes_ranking_across_rounds() {
        let (model, obj, data, val) = fixture(40, 10);
        let w = vec![0.0; model.num_params()];
        let pool = data.uncleaned_indices();
        let mut sel = O2U::new(O2UConfig {
            cycle_epochs: 2,
            cycles: 1,
            ..O2UConfig::default()
        });
        fn mk<'a>(
            model: &'a chef_model::LogisticRegression,
            obj: &'a chef_model::WeightedObjective,
            data: &'a chef_model::Dataset,
            val: &'a chef_model::Dataset,
            w: &'a [f64],
            pool: &'a [usize],
            round: usize,
        ) -> SelectorContext<'a> {
            SelectorContext {
                model,
                objective: obj,
                data,
                val,
                w,
                pool,
                b: 5,
                round,
            }
        }
        let first = sel.select(&mk(&model, &obj, &data, &val, &w, &pool, 0));
        let remaining: Vec<usize> = pool
            .iter()
            .copied()
            .filter(|i| !first.iter().any(|s| s.index == *i))
            .collect();
        let second = sel.select(&mk(&model, &obj, &data, &val, &w, &remaining, 1));
        assert_eq!(first.len(), 5);
        assert_eq!(second.len(), 5);
        for s in &second {
            assert!(!first.contains(s), "re-selected {s:?}");
        }
    }
}
