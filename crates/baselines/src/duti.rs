//! **DUTI** — debugging training sets using trusted items
//! (Zhang, Zhu & Wright, AAAI 2018; paper §4.1.1 and Appendices F.3/G.4).
//!
//! DUTI poses label cleaning as the bi-level problem of Eq. S25: find
//! relaxed labels `Y′` minimizing the trusted-validation loss of the
//! model *trained on* `Y′`, plus a fidelity term `(γ_duti/n) Σ (1 −
//! y′_{i, ŷ_i})` that discourages moving labels away from the observed
//! ones (per Appendix F.3, `ŷ_i = argmax y_i` when the observed label is
//! probabilistic). Exactly solving the bi-level program is what makes
//! DUTI too slow for the iterative loop; like the original
//! implementation we *relax* it into alternating first-order steps:
//!
//! 1. inner: fit `ŵ(Y′)` with a few full-batch GD steps,
//! 2. outer: a hypergradient step on `Y′`, using the implicit-function
//!    hypergradient `∂L_val/∂y′_i = −(1/n) (H⁻¹∇L_val)ᵀ ∇_y∇_wF(ŵ, z_i)`
//!    (the same mixed derivative Infl uses) plus the fidelity
//!    subgradient, followed by projection onto the simplex.
//!
//! Samples are ranked by how far DUTI moved their label, `‖y′_i − y_i‖₁`
//! (descending), and `argmax y′_i` is the suggested cleaned label.

use chef_core::influence::{influence_vector, InflConfig};
use chef_core::selector::{SampleSelector, Selection, SelectorContext};
use chef_linalg::vector;

/// DUTI hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct DutiConfig {
    /// Outer (label) step size.
    pub label_lr: f64,
    /// Outer iterations.
    pub outer_iters: usize,
    /// Inner GD steps per outer iteration.
    pub inner_steps: usize,
    /// Inner GD learning rate.
    pub inner_lr: f64,
    /// Fidelity weight (the `γ` of Eq. S25 — unrelated to the pipeline γ).
    pub fidelity: f64,
    /// CG configuration for the hypergradient solve.
    pub cg: InflConfig,
}

impl Default for DutiConfig {
    fn default() -> Self {
        Self {
            label_lr: 2.0,
            outer_iters: 5,
            inner_steps: 40,
            inner_lr: 0.3,
            fidelity: 0.1,
            cg: InflConfig::default(),
        }
    }
}

/// Euclidean projection of a vector onto the probability simplex
/// (Held–Wolfe–Crowder via sorting).
pub fn project_to_simplex(y: &[f64]) -> Vec<f64> {
    let n = y.len();
    assert!(n > 0, "project_to_simplex: empty vector");
    let mut sorted = y.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut cum = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (k, &v) in sorted.iter().enumerate() {
        cum += v;
        let t = (cum - 1.0) / (k + 1) as f64;
        if v - t > 0.0 {
            rho = k;
            theta = t;
        }
    }
    let _ = rho;
    y.iter().map(|&v| (v - theta).max(0.0)).collect()
}

/// The DUTI selector.
#[derive(Debug, Default)]
pub struct Duti {
    /// Solver hyperparameters.
    pub cfg: DutiConfig,
}

impl SampleSelector for Duti {
    fn name(&self) -> &str {
        "DUTI"
    }

    fn select(&mut self, ctx: &SelectorContext<'_>) -> Vec<Selection> {
        let model = ctx.model;
        let obj = ctx.objective;
        let m = model.num_params();
        let c_count = model.num_classes();
        let n = ctx.data.len() as f64;

        // Work on a private in-memory copy whose labels we relax
        // (DUTI's relaxation mutates every pool label, so an overlay
        // would not help; materializing is the honest cost).
        let mut relaxed = ctx.data.to_dataset();
        let mut w = ctx.w.to_vec();
        let mut g = vec![0.0; m];
        let all: Vec<usize> = (0..ctx.data.len()).collect();

        for _ in 0..self.cfg.outer_iters {
            // Inner: refit on the relaxed labels.
            for _ in 0..self.cfg.inner_steps {
                obj.batch_grad(model, &relaxed, &all, &w, &mut g);
                vector::axpy(-self.cfg.inner_lr, &g, &mut w);
            }
            // Outer: hypergradient on each pool label.
            let v = influence_vector(model, obj, &relaxed, ctx.val, &w, &self.cfg.cg);
            for &i in ctx.pool {
                let x = ctx.data.feature(i);
                let observed_argmax = ctx.data.label(i).argmax();
                let mut grad_y = vec![0.0; c_count];
                for (c, gy) in grad_y.iter_mut().enumerate() {
                    model.class_grad(&w, x, c, &mut g);
                    // d L_val / d y′_{i,c} = −(1/n) vᵀ (−∇_w log p⁽ᶜ⁾)
                    *gy = -vector::dot(&v, &g) / n;
                }
                // Fidelity: −(γ/n) y′_{i, ŷ_i} pushes that entry up.
                grad_y[observed_argmax] -= self.cfg.fidelity / n;
                let mut y_new: Vec<f64> = relaxed
                    .label(i)
                    .probs()
                    .iter()
                    .zip(&grad_y)
                    .map(|(&p, &gy)| p - self.cfg.label_lr * n * gy)
                    .collect();
                y_new = project_to_simplex(&y_new);
                relaxed.set_label(i, chef_model::SoftLabel::new(y_new));
            }
        }

        // Rank by L1 movement, descending.
        let mut scored: Vec<(usize, f64, usize)> = ctx
            .pool
            .iter()
            .map(|&i| {
                let before = ctx.data.label(i).probs();
                let after = relaxed.label(i).probs();
                let movement: f64 = before.iter().zip(after).map(|(a, b)| (a - b).abs()).sum();
                (i, movement, relaxed.label(i).argmax())
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored
            .into_iter()
            .take(ctx.b)
            .map(|(index, _, suggested)| Selection {
                index,
                suggested: Some(suggested),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::fixture;
    use chef_model::{Model, SoftLabel};

    #[test]
    fn simplex_projection_properties() {
        for input in [
            vec![0.5, 0.5],
            vec![2.0, -1.0],
            vec![0.2, 0.3, 0.9],
            vec![-5.0, -5.0, -5.0],
        ] {
            let p = project_to_simplex(&input);
            assert!(
                (p.iter().sum::<f64>() - 1.0).abs() < 1e-9,
                "{input:?} → {p:?}"
            );
            assert!(p.iter().all(|&v| v >= 0.0));
        }
        // Already on the simplex → unchanged.
        let p = project_to_simplex(&[0.3, 0.7]);
        assert!((p[0] - 0.3).abs() < 1e-12 && (p[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn suggests_labels_and_flags_poisoned_samples() {
        let (model, obj, mut data, val) = fixture(60, 21);
        // Make most labels mildly informative; poison two samples hard.
        for i in 0..data.len() {
            let t = data.ground_truth(i).unwrap();
            let l = if i < 2 {
                SoftLabel::onehot(1 - t, 2)
            } else {
                let mut p = vec![0.35, 0.35];
                p[t] = 0.65;
                SoftLabel::new(p)
            };
            data.set_label(i, l);
            data.mark_uncleaned(i);
        }
        let w = vec![0.0; model.num_params()];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 10,
            round: 0,
        };
        let mut sel = Duti::default();
        let picks = sel.select(&ctx);
        assert_eq!(picks.len(), 10);
        assert!(picks.iter().all(|p| p.suggested.is_some()));
        let picked: Vec<usize> = picks.iter().map(|s| s.index).collect();
        let hits = (0..2).filter(|i| picked.contains(i)).count();
        assert!(hits >= 1, "poisoned samples not flagged: {picked:?}");
    }
}
