//! # chef-baselines
//!
//! Every comparison method from §5.1 of the CHEF paper, implemented as
//! [`chef_core::SampleSelector`]s so the pipeline can swap them in:
//!
//! * [`InflD`] — the classic validation-set influence function of
//!   Koh & Liang (paper Eq. 2), which models *removal* of a sample;
//! * [`InflY`] — Zhang et al.'s label-perturbation influence (Eq. 7):
//!   Infl without the `δ_y` magnitude and without the re-weighting term;
//! * [`ActiveLeastConfidence`] / [`ActiveEntropy`] — the two
//!   uncertainty-sampling active-learning selectors ("Active (one)" and
//!   "Active (two)");
//! * [`O2U`] — noisy-label detection from loss statistics under a
//!   cyclical learning rate (Huang et al., ICCV 2019);
//! * [`Tars`] — oracle-based cleaning of *deterministic* noisy labels
//!   (Dolatshah et al., VLDB 2018); applied after rounding probabilistic
//!   labels, as the paper's Appendix G.3 comparison prescribes;
//! * [`Duti`] — training-set debugging via bi-level optimization
//!   (Zhang, Zhu & Wright, AAAI 2018), relaxed to an alternating solver
//!   and extended to probabilistic labels per Appendix F.3;
//! * [`RandomSelector`] — uniform-random control.

#[cfg(test)]
pub(crate) mod test_util;

pub mod active;
pub mod duti;
pub mod infl_d;
pub mod infl_y;
pub mod o2u;
pub mod random;
pub mod tars;

pub use active::{ActiveEntropy, ActiveLeastConfidence};
pub use duti::{Duti, DutiConfig};
pub use infl_d::InflD;
pub use infl_y::InflY;
pub use o2u::{O2UConfig, O2U};
pub use random::RandomSelector;
pub use tars::Tars;
