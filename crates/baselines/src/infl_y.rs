//! **Infl-Y** — the label-perturbation influence of Zhang et al.
//! (paper Eq. 7).
//!
//! `I_pert(z̃) = −∇F(w, Z_val)ᵀ H⁻¹(w) ∇_y∇_w F(w, z̃)` ranks samples by
//! how strongly the validation loss reacts to *any* label movement —
//! without weighting by the actual label change `δ_y` and without the
//! `(1 − γ)` up-weighting term that Infl adds. We score each sample by
//! the most negative directional response over candidate classes,
//! `min_c −vᵀ (∇_y∇_wF)_{·c}`, which is Eq. 7 dotted with each coordinate
//! direction of the label simplex. Appendix G.4 of the paper shows this
//! underperforms Infl exactly because `δ_y` is ignored.

use chef_core::influence::{influence_vector, InflConfig};
use chef_core::selector::{SampleSelector, Selection, SelectorContext};
use chef_linalg::vector;

/// The Infl-Y selector.
#[derive(Debug, Default)]
pub struct InflY {
    /// CG configuration for the `H⁻¹v` solve.
    pub cfg: InflConfig,
}

impl SampleSelector for InflY {
    fn name(&self) -> &str {
        "Infl-Y"
    }

    fn select(&mut self, ctx: &SelectorContext<'_>) -> Vec<Selection> {
        let v = influence_vector(
            ctx.model,
            ctx.objective,
            ctx.data,
            ctx.val,
            ctx.w,
            &self.cfg,
        );
        let mut g = vec![0.0; ctx.model.num_params()];
        let c_count = ctx.model.num_classes();
        let mut scored: Vec<(usize, f64)> = ctx
            .pool
            .iter()
            .map(|&i| {
                let mut best = f64::INFINITY;
                for c in 0..c_count {
                    ctx.model.class_grad(ctx.w, ctx.data.feature(i), c, &mut g);
                    best = best.min(-vector::dot(&v, &g));
                }
                (i, best)
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored
            .into_iter()
            .take(ctx.b)
            .map(|(index, _)| Selection {
                index,
                suggested: None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::fixture;
    use chef_model::Model;

    #[test]
    fn ranks_and_truncates() {
        let (model, obj, data, val) = fixture(45, 3);
        let w = vec![0.1; model.num_params()];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 9,
            round: 0,
        };
        let mut sel = InflY::default();
        let picks = sel.select(&ctx);
        assert_eq!(picks.len(), 9);
        assert!(picks.iter().all(|p| p.suggested.is_none()));
        assert_eq!(sel.name(), "Infl-Y");
    }

    #[test]
    fn is_deterministic_and_scores_every_candidate() {
        let (model, obj, data, val) = fixture(40, 4);
        let w = vec![0.07; model.num_params()];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: pool.len(),
            round: 0,
        };
        let mut sel = InflY::default();
        let a = sel.select(&ctx);
        let b = sel.select(&ctx);
        assert_eq!(a, b);
        // With b = pool size, every candidate is returned exactly once.
        let mut idx: Vec<usize> = a.iter().map(|s| s.index).collect();
        idx.sort_unstable();
        let mut expect = pool.clone();
        expect.sort_unstable();
        assert_eq!(idx, expect);
    }
}
