//! Uniform-random sample selection — the control baseline.

use chef_core::selector::{SampleSelector, Selection, SelectorContext};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Selects `b` pool samples uniformly at random (seeded).
#[derive(Debug)]
pub struct RandomSelector {
    rng: SmallRng,
}

impl RandomSelector {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Default for RandomSelector {
    fn default() -> Self {
        Self::new(0)
    }
}

impl SampleSelector for RandomSelector {
    fn name(&self) -> &str {
        "Random"
    }

    fn select(&mut self, ctx: &SelectorContext<'_>) -> Vec<Selection> {
        let mut pool = ctx.pool.to_vec();
        pool.shuffle(&mut self.rng);
        pool.truncate(ctx.b);
        pool.into_iter()
            .map(|index| Selection {
                index,
                suggested: None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::fixture;
    use chef_model::Model;

    #[test]
    fn selects_within_pool_without_replacement() {
        let (model, obj, data, val) = fixture(30, 30);
        let w = vec![0.0; model.num_params()];
        let pool = vec![1, 4, 9, 16, 25];
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 3,
            round: 0,
        };
        let mut sel = RandomSelector::new(7);
        let picks = sel.select(&ctx);
        assert_eq!(picks.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for p in &picks {
            assert!(pool.contains(&p.index));
            assert!(seen.insert(p.index));
        }
    }

    #[test]
    fn seeded_runs_reproduce() {
        let (model, obj, data, val) = fixture(30, 31);
        let w = vec![0.0; model.num_params()];
        let pool = data.uncleaned_indices();
        let ctx = SelectorContext {
            model: &model,
            objective: &obj,
            data: &data,
            val: &val,
            w: &w,
            pool: &pool,
            b: 5,
            round: 0,
        };
        let a = RandomSelector::new(9).select(&ctx);
        let b = RandomSelector::new(9).select(&ctx);
        assert_eq!(a, b);
    }
}
