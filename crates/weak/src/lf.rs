//! Labeling functions: programmatic, noisy, abstaining voters.
//!
//! Snorkel-style weak supervision composes many cheap heuristics, each of
//! which labels part of the data with moderate accuracy. Our synthetic
//! equivalent is a noisy hyperplane in embedding space: it is *derived
//! from* the class geometry with a controlled corruption level (mirroring
//! how the paper's tools derive LFs from associated text), abstains far
//! from its decision boundary, and never looks at per-sample ground truth
//! at vote time.

use chef_linalg::vector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A weak voter: maps features to a class or abstains.
pub trait LabelingFunction: Send + Sync {
    /// Vote for a class, or `None` to abstain.
    fn vote(&self, x: &[f64]) -> Option<usize>;
    /// Number of classes this LF votes over.
    fn num_classes(&self) -> usize;
}

/// A noisy linear heuristic with an abstention band.
///
/// Votes class 1 when `wᵀx + b > margin`, class 0 when `< −margin`, and
/// abstains in between. The direction `w` is a corrupted copy of a
/// reference direction (e.g. the difference of class centroids), with the
/// corruption level controlling the LF's accuracy.
#[derive(Debug, Clone)]
pub struct HyperplaneLf {
    weights: Vec<f64>,
    bias: f64,
    margin: f64,
    num_classes: usize,
}

impl HyperplaneLf {
    /// Build directly from a hyperplane.
    pub fn new(weights: Vec<f64>, bias: f64, margin: f64, num_classes: usize) -> Self {
        assert!(!weights.is_empty(), "HyperplaneLf: empty weights");
        assert!(margin >= 0.0, "HyperplaneLf: negative margin");
        assert_eq!(num_classes, 2, "HyperplaneLf votes over binary tasks");
        Self {
            weights,
            bias,
            margin,
            num_classes,
        }
    }

    /// Derive an LF from a reference direction by mixing in noise:
    /// `w = quality·ŵ_ref + (1 − quality)·ξ` with `ξ` a random unit
    /// vector. `quality = 1` reproduces the reference heuristic exactly;
    /// `quality = 0` is an uninformative random hyperplane.
    pub fn derive(reference: &[f64], bias: f64, quality: f64, margin: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&quality), "quality must be in [0,1]");
        let mut rng = SmallRng::seed_from_u64(seed);
        let dim = reference.len();
        let mut refdir = reference.to_vec();
        let rn = vector::norm2(&refdir);
        if rn > 0.0 {
            vector::scale(1.0 / rn, &mut refdir);
        }
        let mut noise: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let nn = vector::norm2(&noise);
        if nn > 0.0 {
            vector::scale(1.0 / nn, &mut noise);
        }
        let weights = vector::lincomb(quality, &refdir, 1.0 - quality, &noise);
        Self::new(weights, bias, margin, 2)
    }

    /// The signed decision value `wᵀx + b`.
    pub fn score(&self, x: &[f64]) -> f64 {
        vector::dot(&self.weights, x) + self.bias
    }
}

impl LabelingFunction for HyperplaneLf {
    fn vote(&self, x: &[f64]) -> Option<usize> {
        let s = self.score(x);
        if s > self.margin {
            Some(1)
        } else if s < -self.margin {
            Some(0)
        } else {
            None
        }
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn votes_follow_the_hyperplane() {
        let lf = HyperplaneLf::new(vec![1.0, 0.0], 0.0, 0.1, 2);
        assert_eq!(lf.vote(&[1.0, 5.0]), Some(1));
        assert_eq!(lf.vote(&[-1.0, 5.0]), Some(0));
        assert_eq!(lf.vote(&[0.05, 5.0]), None); // abstention band
    }

    #[test]
    fn perfect_quality_reproduces_reference() {
        let reference = vec![0.0, 2.0];
        let lf = HyperplaneLf::derive(&reference, 0.0, 1.0, 0.0, 3);
        // Same direction up to normalization: positive along +y.
        assert_eq!(lf.vote(&[0.0, 1.0]), Some(1));
        assert_eq!(lf.vote(&[0.0, -1.0]), Some(0));
    }

    #[test]
    fn zero_quality_ignores_reference() {
        let reference = vec![1.0, 0.0];
        let lf = HyperplaneLf::derive(&reference, 0.0, 0.0, 0.0, 3);
        // Direction is pure noise; it almost surely differs from the
        // reference direction.
        let cos = vector::dot(&lf.weights, &reference)
            / (vector::norm2(&lf.weights) * vector::norm2(&reference));
        assert!(cos.abs() < 0.999);
    }

    #[test]
    fn derivation_is_deterministic_per_seed() {
        let r = vec![1.0, -1.0, 0.5];
        let a = HyperplaneLf::derive(&r, 0.1, 0.7, 0.2, 9);
        let b = HyperplaneLf::derive(&r, 0.1, 0.7, 0.2, 9);
        assert_eq!(a.weights, b.weights);
        let c = HyperplaneLf::derive(&r, 0.1, 0.7, 0.2, 10);
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn higher_quality_means_better_alignment() {
        // The quality knob controls how well the derived hyperplane
        // aligns with the reference direction, averaged over seeds.
        let reference: Vec<f64> = (0..16).map(|i| ((i * 37) % 7) as f64 - 3.0).collect();
        let mean_cos = |q: f64| {
            let mut total = 0.0;
            for seed in 0..40u64 {
                let lf = HyperplaneLf::derive(&reference, 0.0, q, 0.0, seed);
                total += vector::dot(&lf.weights, &reference)
                    / (vector::norm2(&lf.weights) * vector::norm2(&reference));
            }
            total / 40.0
        };
        let low = mean_cos(0.1);
        let mid = mean_cos(0.5);
        let high = mean_cos(0.95);
        assert!(high > mid && mid > low, "low {low}, mid {mid}, high {high}");
        assert!(high > 0.95, "high-quality alignment {high}");
        assert!(low < 0.5, "low-quality alignment {low}");
    }
}
