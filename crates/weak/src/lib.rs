//! # chef-weak
//!
//! Weak-supervision substrate for the CHEF reproduction.
//!
//! The paper obtains probabilistic training labels from weak-supervision
//! tooling (Snorkel-style labeling functions, interactive weak supervision
//! for text, GOGGLES for images) and cleaned labels from crowds of human
//! annotators. Both are gated resources, so this crate builds the closest
//! synthetic equivalents:
//!
//! * [`lf`] — labeling functions: noisy hyperplane heuristics over the
//!   embedding space with per-LF accuracy and abstention, playing the role
//!   of the paper's automatically-derived LFs;
//! * [`label_model`] — a generative label model that estimates each LF's
//!   accuracy from agreement statistics (one EM-style refinement round,
//!   the core of Snorkel's approach) and combines votes into probabilistic
//!   labels by weighted log-odds;
//! * [`weaken`] — the entry point that rewrites a clean training set into
//!   the paper's two regimes: random probabilistic labels for the
//!   *fully-clean* datasets and label-model outputs for the
//!   *crowdsourced* ones;
//! * [`annotator`] — simulated human annotators with configurable error
//!   rates plus the majority-vote aggregation of §4.3 (including the
//!   "keep the probabilistic label on ties" rule of Appendix F.1).

pub mod annotator;
pub mod label_model;
pub mod lf;
pub mod weaken;

pub use annotator::{majority_vote, AnnotatorPanel, SimulatedAnnotator, VoteOutcome};
pub use label_model::LabelModel;
pub use lf::{HyperplaneLf, LabelingFunction};
pub use weaken::{label_model_labels, random_probabilistic_labels, weaken_split, WeakenConfig};
