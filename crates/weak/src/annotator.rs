//! Simulated human annotators and vote aggregation (paper §4.3, §5.1).
//!
//! The paper's fully-clean datasets have no crowd labels, so it simulates
//! annotators by flipping ground truth for a random 5% of samples (error
//! rates for medical images run 3–5%, up to 30%). Three independent
//! annotators label each selected sample and conflicts are resolved by
//! majority vote; Infl's suggested label can join the panel as one more
//! annotator. Ties keep the probabilistic label (the Fact/Twitter
//! "ambiguous aggregate" rule of Appendix F.1).

use chef_model::SoftLabel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One simulated human annotator with an i.i.d. per-sample error rate.
///
/// Annotation is deterministic in `(annotator seed, sample id)`: the same
/// annotator asked twice about the same sample answers the same, like a
/// real (consistent) human would.
#[derive(Debug, Clone)]
pub struct SimulatedAnnotator {
    error_rate: f64,
    seed: u64,
}

impl SimulatedAnnotator {
    /// Create an annotator.
    ///
    /// # Panics
    /// Panics unless `0 ≤ error_rate < 1`.
    pub fn new(error_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&error_rate),
            "error_rate must be in [0, 1)"
        );
        Self { error_rate, seed }
    }

    /// The annotator's error rate.
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }

    /// Label a sample given its hidden ground truth: returns truth with
    /// probability `1 − error_rate`, otherwise a uniformly random wrong
    /// class.
    pub fn annotate(&self, sample_id: usize, truth: usize, num_classes: usize) -> usize {
        assert!(truth < num_classes);
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ (sample_id as u64).wrapping_mul(0x9e37_79b9));
        if rng.gen_range(0.0..1.0) < self.error_rate {
            let shift = rng.gen_range(1..num_classes.max(2));
            (truth + shift) % num_classes
        } else {
            truth
        }
    }
}

/// Result of aggregating annotator votes on one sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoteOutcome {
    /// A strict majority agreed on this class.
    Majority(usize),
    /// No strict majority ("ambiguous"): keep the probabilistic label.
    Tie,
}

/// Majority vote over class votes; strict majority required.
pub fn majority_vote(votes: &[usize], num_classes: usize) -> VoteOutcome {
    assert!(!votes.is_empty(), "majority_vote: no votes");
    let mut counts = vec![0usize; num_classes];
    for &v in votes {
        assert!(v < num_classes, "majority_vote: vote out of range");
        counts[v] += 1;
    }
    let best = chef_linalg::vector::argmax(&counts.iter().map(|&c| c as f64).collect::<Vec<_>>());
    let top = counts[best];
    // Strict majority means the top count is unique.
    if counts.iter().filter(|&&c| c == top).count() == 1 {
        VoteOutcome::Majority(best)
    } else {
        VoteOutcome::Tie
    }
}

/// A panel of annotators that (optionally) includes an algorithmic
/// suggestion as one more independent vote, resolving by majority.
#[derive(Debug, Clone, Default)]
pub struct AnnotatorPanel {
    annotators: Vec<SimulatedAnnotator>,
}

impl AnnotatorPanel {
    /// Panel of `n` annotators with the same error rate, independent seeds.
    pub fn uniform(n: usize, error_rate: f64, seed: u64) -> Self {
        Self {
            annotators: (0..n)
                .map(|i| SimulatedAnnotator::new(error_rate, seed.wrapping_add(i as u64 * 7907)))
                .collect(),
        }
    }

    /// Create a panel from explicit annotators.
    pub fn from_annotators(annotators: Vec<SimulatedAnnotator>) -> Self {
        Self { annotators }
    }

    /// Number of human annotators on the panel.
    pub fn len(&self) -> usize {
        self.annotators.len()
    }

    /// Whether the panel has no human annotators.
    pub fn is_empty(&self) -> bool {
        self.annotators.is_empty()
    }

    /// The raw ballot for one sample: each human annotator's vote in
    /// panel order, with the optional algorithmic suggestion appended as
    /// one more independent vote. Exposed so the annotation phase can
    /// count conflicts for telemetry without re-running the panel.
    pub fn votes(
        &self,
        sample_id: usize,
        truth: usize,
        num_classes: usize,
        suggestion: Option<usize>,
    ) -> Vec<usize> {
        let mut votes: Vec<usize> = self
            .annotators
            .iter()
            .map(|a| a.annotate(sample_id, truth, num_classes))
            .collect();
        if let Some(s) = suggestion {
            votes.push(s);
        }
        votes
    }

    /// Clean one sample: collect the panel's votes plus an optional
    /// suggested label and aggregate.
    ///
    /// Returns the cleaned label, or `None` on a tie (the caller then
    /// keeps the probabilistic label, per Appendix F.1).
    pub fn clean(
        &self,
        sample_id: usize,
        truth: usize,
        num_classes: usize,
        suggestion: Option<usize>,
    ) -> Option<SoftLabel> {
        let votes = self.votes(sample_id, truth, num_classes, suggestion);
        if votes.is_empty() {
            return None;
        }
        match majority_vote(&votes, num_classes) {
            VoteOutcome::Majority(c) => Some(SoftLabel::onehot(c, num_classes)),
            VoteOutcome::Tie => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_annotator_is_an_oracle() {
        let a = SimulatedAnnotator::new(0.0, 1);
        for id in 0..20 {
            assert_eq!(a.annotate(id, id % 2, 2), id % 2);
        }
    }

    #[test]
    fn annotator_is_consistent_per_sample() {
        let a = SimulatedAnnotator::new(0.4, 5);
        for id in 0..50 {
            assert_eq!(a.annotate(id, 0, 2), a.annotate(id, 0, 2));
        }
    }

    #[test]
    fn error_rate_is_respected_empirically() {
        let a = SimulatedAnnotator::new(0.2, 9);
        let wrong = (0..5000).filter(|&id| a.annotate(id, 1, 2) != 1).count();
        let rate = wrong as f64 / 5000.0;
        assert!((rate - 0.2).abs() < 0.02, "empirical error rate {rate}");
    }

    #[test]
    fn majority_basic() {
        assert_eq!(majority_vote(&[1, 1, 0], 2), VoteOutcome::Majority(1));
        assert_eq!(majority_vote(&[0, 0, 0], 2), VoteOutcome::Majority(0));
        assert_eq!(majority_vote(&[0, 1], 2), VoteOutcome::Tie);
        assert_eq!(majority_vote(&[0, 1, 2], 3), VoteOutcome::Tie);
        assert_eq!(majority_vote(&[2], 3), VoteOutcome::Majority(2));
    }

    #[test]
    fn panel_majority_beats_single_annotator() {
        // With 3 annotators at 20% error, majority error = 3p²(1−p)+p³ ≈ 10.4%.
        let panel = AnnotatorPanel::uniform(3, 0.2, 3);
        let wrong = (0..4000)
            .filter(|&id| panel.clean(id, 1, 2, None) != Some(SoftLabel::onehot(1, 2)))
            .count();
        let rate = wrong as f64 / 4000.0;
        assert!(rate < 0.15, "panel error rate {rate}");
    }

    #[test]
    fn suggestion_breaks_and_makes_ties() {
        // Two annotators that disagree + a suggestion → suggestion decides.
        let a_right = SimulatedAnnotator::new(0.0, 1);
        let a_wrong = SimulatedAnnotator::new(0.999, 2);
        let panel = AnnotatorPanel::from_annotators(vec![a_right, a_wrong]);
        // Find a sample where the bad annotator is actually wrong.
        let id = (0..100)
            .find(|&id| panel.annotators[1].annotate(id, 0, 2) != 0)
            .unwrap();
        assert_eq!(panel.clean(id, 0, 2, None), None); // 1-1 tie
        assert_eq!(
            panel.clean(id, 0, 2, Some(0)),
            Some(SoftLabel::onehot(0, 2))
        );
    }

    #[test]
    fn suggestion_alone_acts_as_single_labeler() {
        let panel = AnnotatorPanel::from_annotators(vec![]);
        assert_eq!(panel.clean(3, 1, 2, Some(0)), Some(SoftLabel::onehot(0, 2)));
        assert_eq!(panel.clean(3, 1, 2, None), None);
    }
}
