//! Turning clean training sets into weakly-labeled ones.
//!
//! The paper's two regimes (§5.1, "Producing probabilistic labels"):
//!
//! * **Fully-clean datasets** (MIMIC, Retina, Chexpert): no text is
//!   available for labeling functions and GOGGLES does not scale, so the
//!   paper assigns *random probabilistic labels* to all training samples.
//! * **Crowdsourced datasets** (Fashion, Fact, Twitter): labeling
//!   functions derived from associated text produce the probabilistic
//!   labels. Here the "text" is a noisy view of the embedding, so LFs are
//!   noisy hyperplanes derived from the class geometry (see [`crate::lf`])
//!   combined by the label model.
//!
//! Either way, every training label is replaced and the sample is marked
//! uncleaned (`Z_p`), which is the starting state of the cleaning loop.

use crate::label_model::LabelModel;
use crate::lf::{HyperplaneLf, LabelingFunction};
use chef_data::{DatasetKind, DatasetSpec, Split};
use chef_linalg::vector;
use chef_model::{Dataset, SoftLabel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`weaken_split`].
#[derive(Debug, Clone, Copy)]
pub struct WeakenConfig {
    /// Number of labeling functions for the crowdsourced regime.
    pub num_lfs: usize,
    /// Abstention margin of each LF.
    pub margin: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WeakenConfig {
    fn default() -> Self {
        Self {
            num_lfs: 8,
            margin: 0.25,
            seed: 7,
        }
    }
}

/// Difference of class centroids — the reference direction from which
/// noisy LFs are derived (a stand-in for "signals in the associated
/// text"; it uses only the observable recorded labels, not hidden truth).
fn centroid_direction(data: &Dataset) -> (Vec<f64>, f64) {
    let d = data.dim();
    let mut mu0 = vec![0.0; d];
    let mut mu1 = vec![0.0; d];
    let (mut n0, mut n1) = (0.0, 0.0);
    for i in 0..data.len() {
        if data.label(i).argmax() == 1 {
            n1 += 1.0;
            vector::axpy(1.0, data.feature(i), &mut mu1);
        } else {
            n0 += 1.0;
            vector::axpy(1.0, data.feature(i), &mut mu0);
        }
    }
    if n0 > 0.0 {
        vector::scale(1.0 / n0, &mut mu0);
    }
    if n1 > 0.0 {
        vector::scale(1.0 / n1, &mut mu1);
    }
    let dir = vector::sub(&mu1, &mu0);
    // Bias that centres the decision boundary between the centroids,
    // expressed for the *normalized* direction used by HyperplaneLf.
    let n = vector::norm2(&dir).max(1e-12);
    let mid = vector::lincomb(0.5, &mu0, 0.5, &mu1);
    let bias = -vector::dot(&dir, &mid) / n;
    (dir, bias)
}

/// Replace all training labels of `split` with probabilistic labels
/// according to the dataset's [`DatasetKind`], marking every training
/// sample uncleaned. Validation/test sets are untouched.
pub fn weaken_split(split: &mut Split, spec: &DatasetSpec, cfg: &WeakenConfig) {
    match spec.kind {
        DatasetKind::FullyClean => random_probabilistic_labels(&mut split.train, cfg.seed),
        DatasetKind::Crowdsourced => {
            label_model_labels(&mut split.train, spec.weak_quality, cfg);
        }
    }
}

/// The paper's fully-clean regime: uniform-random probability vectors,
/// uncorrelated with ground truth. Storage-generic (the draw order
/// depends only on `n` and the class count), so weakening an on-disk
/// `MmapStore` and its in-memory materialization installs bit-identical
/// labels — the property the out-of-core equivalence tests rely on.
pub fn random_probabilistic_labels(train: &mut dyn chef_model::DatasetStore, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_1abe1);
    let c = train.num_classes();
    for i in 0..train.len() {
        let weights: Vec<f64> = (0..c).map(|_| rng.gen_range(0.01..1.0)).collect();
        train.set_label(i, SoftLabel::from_weights(&weights));
        train.mark_uncleaned(i);
    }
}

/// The crowdsourced regime: derive `num_lfs` noisy hyperplane LFs from the
/// class geometry at the given quality, fit the label model, install its
/// posteriors.
pub fn label_model_labels(train: &mut Dataset, quality: f64, cfg: &WeakenConfig) {
    let (reference, bias) = centroid_direction(train);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x1f5_cafe);
    let lfs: Vec<Box<dyn LabelingFunction>> = (0..cfg.num_lfs)
        .map(|j| {
            // Per-LF quality jitter so the label model has something to
            // learn; mean equals the spec's weak_quality.
            let q = (quality + rng.gen_range(-0.15..0.15)).clamp(0.0, 1.0);
            Box::new(HyperplaneLf::derive(
                &reference,
                bias,
                q,
                cfg.margin,
                cfg.seed.wrapping_add(j as u64 * 7919),
            )) as Box<dyn LabelingFunction>
        })
        .collect();
    let mut lm = LabelModel::new(lfs.len());
    let posteriors = lm.fit_predict(&lfs, train);
    for (i, p) in posteriors.into_iter().enumerate() {
        train.set_label(i, p);
        train.mark_uncleaned(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_data::{generate, paper_suite};

    #[test]
    fn fully_clean_regime_is_uninformative() {
        let spec = paper_suite(200)
            .into_iter()
            .find(|s| s.name == "MIMIC")
            .unwrap();
        let mut split = generate(&spec, 3);
        weaken_split(&mut split, &spec, &WeakenConfig::default());
        // Every training sample is uncleaned with a non-degenerate label.
        assert_eq!(split.train.uncleaned_indices().len(), split.train.len());
        // Error rate of random labels hovers around 50%.
        let err = split.train.weak_label_error_rate().unwrap();
        assert!(err > 0.3 && err < 0.7, "error rate {err}");
    }

    #[test]
    fn crowdsourced_regime_is_informative_but_noisy() {
        let spec = paper_suite(100)
            .into_iter()
            .find(|s| s.name == "Twitter")
            .unwrap();
        let mut split = generate(&spec, 5);
        weaken_split(&mut split, &spec, &WeakenConfig::default());
        let err = split.train.weak_label_error_rate().unwrap();
        assert!(err < 0.45, "weak labels should beat chance: {err}");
        assert!(err > 0.02, "weak labels must stay noisy: {err}");
        // Labels are genuinely probabilistic, not one-hot.
        let soft = split
            .train
            .uncleaned_indices()
            .iter()
            .filter(|&&i| !split.train.label(i).is_deterministic())
            .count();
        assert!(soft > split.train.len() / 2);
    }

    #[test]
    fn val_and_test_untouched() {
        let spec = paper_suite(200)
            .into_iter()
            .find(|s| s.name == "Fact")
            .unwrap();
        let mut split = generate(&spec, 9);
        let val_before: Vec<_> = (0..split.val.len())
            .map(|i| split.val.label(i).clone())
            .collect();
        weaken_split(&mut split, &spec, &WeakenConfig::default());
        for (i, l) in val_before.iter().enumerate() {
            assert_eq!(split.val.label(i), l);
            assert!(split.val.is_clean(i));
        }
    }

    #[test]
    fn weakening_is_deterministic_per_seed() {
        let spec = paper_suite(200)
            .into_iter()
            .find(|s| s.name == "Fashion")
            .unwrap();
        let mut a = generate(&spec, 2);
        let mut b = generate(&spec, 2);
        weaken_split(&mut a, &spec, &WeakenConfig::default());
        weaken_split(&mut b, &spec, &WeakenConfig::default());
        for i in 0..a.train.len() {
            assert_eq!(a.train.label(i), b.train.label(i));
        }
    }
}
