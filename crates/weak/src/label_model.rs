//! The generative label model combining labeling-function votes.
//!
//! Snorkel's label model estimates each LF's accuracy without ground
//! truth and produces a posterior over classes per sample. We implement
//! the standard lightweight variant:
//!
//! 1. initialize every LF's accuracy at a prior (0.7),
//! 2. E-step: form per-sample posteriors by weighted log-odds voting,
//! 3. M-step: re-estimate each LF's accuracy as its expected agreement
//!    with the current posteriors,
//! 4. repeat for a fixed number of rounds (2 suffices at this scale).
//!
//! The output probabilistic labels are exactly what the paper's pipeline
//! consumes as `Z_p`; their quality is controlled upstream by the LFs'
//! `quality` parameter.

use crate::lf::LabelingFunction;
use chef_linalg::vector;
use chef_model::{Dataset, SoftLabel};

/// Accuracy-weighted vote combiner over binary labeling functions.
#[derive(Debug, Clone)]
pub struct LabelModel {
    accuracies: Vec<f64>,
    rounds: usize,
    temperature: f64,
}

impl LabelModel {
    /// Create a label model for `num_lfs` labeling functions.
    ///
    /// Posteriors are calibrated by dividing the accumulated log-odds by
    /// `√num_lfs` before the softmax: the naive product-of-independent-LFs
    /// posterior is badly over-confident because LF errors correlate
    /// (they all read the same features), and the paper's pipeline needs
    /// genuinely *probabilistic* labels as its starting point.
    pub fn new(num_lfs: usize) -> Self {
        Self {
            accuracies: vec![0.7; num_lfs],
            rounds: 2,
            temperature: (num_lfs.max(1) as f64).sqrt(),
        }
    }

    /// Override the calibration temperature (≥ 1 softens posteriors).
    pub fn with_temperature(mut self, temperature: f64) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        self.temperature = temperature;
        self
    }

    /// Estimated per-LF accuracies (after [`Self::fit_predict`]).
    pub fn accuracies(&self) -> &[f64] {
        &self.accuracies
    }

    /// Collect the vote matrix: `votes[i][j]` is LF `j`'s vote on sample
    /// `i` (`None` = abstain).
    fn collect_votes(lfs: &[Box<dyn LabelingFunction>], data: &Dataset) -> Vec<Vec<Option<usize>>> {
        (0..data.len())
            .map(|i| lfs.iter().map(|lf| lf.vote(data.feature(i))).collect())
            .collect()
    }

    /// Posterior for one sample given current accuracies: weighted
    /// log-odds with weight `log(acc/(1−acc))` per non-abstaining vote.
    fn posterior(&self, votes: &[Option<usize>], num_classes: usize) -> SoftLabel {
        let mut log_scores = vec![0.0; num_classes];
        let mut any = false;
        for (j, v) in votes.iter().enumerate() {
            if let Some(c) = v {
                any = true;
                let acc = self.accuracies[j].clamp(0.05, 0.95);
                let w = (acc / (1.0 - acc)).ln();
                log_scores[*c] += w;
                // Spread the complementary mass over the other classes.
                let penalty = w / (num_classes - 1) as f64;
                for (k, s) in log_scores.iter_mut().enumerate() {
                    if k != *c {
                        *s -= penalty;
                    }
                }
            }
        }
        if !any {
            return SoftLabel::uniform(num_classes);
        }
        vector::scale(1.0 / self.temperature, &mut log_scores);
        SoftLabel::new(vector::softmax(&log_scores))
    }

    /// Fit LF accuracies on `data` and return one probabilistic label per
    /// sample.
    ///
    /// # Panics
    /// Panics if an LF's class count disagrees with the dataset's.
    pub fn fit_predict(
        &mut self,
        lfs: &[Box<dyn LabelingFunction>],
        data: &Dataset,
    ) -> Vec<SoftLabel> {
        assert_eq!(lfs.len(), self.accuracies.len(), "LabelModel: LF count");
        for lf in lfs {
            assert_eq!(lf.num_classes(), data.num_classes(), "LabelModel: classes");
        }
        let votes = Self::collect_votes(lfs, data);
        let mut posteriors: Vec<SoftLabel> = Vec::new();
        for _ in 0..=self.rounds {
            // E-step.
            posteriors = votes
                .iter()
                .map(|v| self.posterior(v, data.num_classes()))
                .collect();
            // M-step: expected agreement of each LF with the posteriors.
            for j in 0..lfs.len() {
                let mut agree = 0.0;
                let mut total = 0.0;
                for (i, v) in votes.iter().enumerate() {
                    if let Some(c) = v[j] {
                        agree += posteriors[i].prob(c);
                        total += 1.0;
                    }
                }
                if total > 0.0 {
                    self.accuracies[j] = (agree / total).clamp(0.05, 0.95);
                }
            }
        }
        posteriors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lf::HyperplaneLf;
    use chef_linalg::Matrix;

    fn lf(wx: f64, wy: f64) -> Box<dyn LabelingFunction> {
        Box::new(HyperplaneLf::new(vec![wx, wy], 0.0, 0.0, 2))
    }

    fn line_data(n: usize) -> Dataset {
        // Points along the x axis: class = sign(x).
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        let mut truth = Vec::new();
        for i in 0..n {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            raw.extend_from_slice(&[x + 0.01 * i as f64, 0.3]);
            let t = usize::from(x > 0.0);
            labels.push(SoftLabel::onehot(t, 2));
            truth.push(Some(t));
        }
        Dataset::new(Matrix::from_vec(n, 2, raw), labels, vec![true; n], truth, 2)
    }

    #[test]
    fn unanimous_lfs_give_confident_labels() {
        let lfs = vec![lf(1.0, 0.0), lf(1.0, 0.1), lf(1.0, -0.1)];
        let data = line_data(40);
        let mut lm = LabelModel::new(3);
        let out = lm.fit_predict(&lfs, &data);
        for (i, l) in out.iter().enumerate() {
            let truth = data.ground_truth(i).unwrap();
            assert!(l.prob(truth) > 0.8, "sample {i}: {:?}", l.probs());
        }
    }

    #[test]
    fn accuracy_estimates_rank_good_above_bad() {
        // Two aligned LFs and one anti-aligned LF; the label model should
        // discover that the contrarian is worse.
        let lfs = vec![lf(1.0, 0.0), lf(1.0, 0.05), lf(-1.0, 0.0)];
        let data = line_data(60);
        let mut lm = LabelModel::new(3);
        let _ = lm.fit_predict(&lfs, &data);
        let acc = lm.accuracies();
        assert!(acc[0] > acc[2], "{acc:?}");
        assert!(acc[1] > acc[2], "{acc:?}");
    }

    #[test]
    fn all_abstaining_gives_uniform() {
        let abstainer = HyperplaneLf::new(vec![0.0, 0.0], 0.0, 1.0, 2);
        let lfs: Vec<Box<dyn LabelingFunction>> = vec![Box::new(abstainer)];
        let data = line_data(10);
        let mut lm = LabelModel::new(1);
        let out = lm.fit_predict(&lfs, &data);
        for l in &out {
            assert_eq!(l.probs(), &[0.5, 0.5]);
        }
    }

    #[test]
    fn outputs_are_valid_probabilities() {
        let lfs = vec![lf(1.0, 0.3), lf(0.2, 1.0)];
        let data = line_data(30);
        let mut lm = LabelModel::new(2);
        for l in lm.fit_predict(&lfs, &data) {
            let s: f64 = l.probs().iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
