//! Property-based tests for the weak-supervision substrate.

use chef_linalg::Matrix;
use chef_model::{Dataset, SoftLabel};
use chef_weak::{
    majority_vote, AnnotatorPanel, HyperplaneLf, LabelModel, LabelingFunction, VoteOutcome,
};
use proptest::prelude::*;

fn line_data(n: usize) -> Dataset {
    let mut raw = Vec::new();
    let mut labels = Vec::new();
    let mut truth = Vec::new();
    for i in 0..n {
        let x = if i % 2 == 0 { 1.0 } else { -1.0 };
        raw.extend_from_slice(&[x, 0.1 * i as f64]);
        let t = usize::from(x > 0.0);
        labels.push(SoftLabel::onehot(t, 2));
        truth.push(Some(t));
    }
    Dataset::new(Matrix::from_vec(n, 2, raw), labels, vec![true; n], truth, 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn majority_vote_agrees_with_counting(
        votes in prop::collection::vec(0usize..3, 1..12),
    ) {
        let outcome = majority_vote(&votes, 3);
        let mut counts = [0usize; 3];
        for &v in &votes {
            counts[v] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let winners = counts.iter().filter(|&&c| c == max).count();
        match outcome {
            VoteOutcome::Majority(c) => {
                prop_assert_eq!(winners, 1);
                prop_assert_eq!(counts[c], max);
            }
            VoteOutcome::Tie => prop_assert!(winners > 1),
        }
    }

    #[test]
    fn odd_binary_panels_never_tie(
        votes in prop::collection::vec(0usize..2, 1..12),
    ) {
        prop_assume!(votes.len() % 2 == 1);
        prop_assert!(matches!(majority_vote(&votes, 2), VoteOutcome::Majority(_)));
    }

    #[test]
    fn annotator_consistency_and_validity(
        error in 0.0f64..0.9,
        seed in any::<u64>(),
        truth in 0usize..3,
        sample in 0usize..10_000,
    ) {
        let panel = AnnotatorPanel::uniform(3, error, seed);
        let a = panel.clean(sample, truth, 3, None);
        let b = panel.clean(sample, truth, 3, None);
        prop_assert_eq!(a.clone(), b); // deterministic per (panel, sample)
        if let Some(label) = a {
            prop_assert!(label.is_deterministic());
            prop_assert!(label.argmax() < 3);
        }
    }

    #[test]
    fn suggestion_is_decisive_on_even_panels(
        seed in any::<u64>(),
        truth in 0usize..2,
        suggestion in 0usize..2,
        sample in 0usize..1000,
    ) {
        // 2 annotators + suggestion = 3 binary votes → never ambiguous.
        let panel = AnnotatorPanel::uniform(2, 0.3, seed);
        let out = panel.clean(sample, truth, 2, Some(suggestion));
        prop_assert!(out.is_some());
    }

    #[test]
    fn label_model_outputs_are_probabilities(
        w0 in -1.0f64..1.0,
        w1 in -1.0f64..1.0,
        margin in 0.0f64..0.5,
        n in 6usize..40,
    ) {
        prop_assume!(w0.abs() + w1.abs() > 0.1);
        let lfs: Vec<Box<dyn LabelingFunction>> = vec![
            Box::new(HyperplaneLf::new(vec![w0, w1], 0.0, margin, 2)),
            Box::new(HyperplaneLf::new(vec![w1, w0], 0.0, margin, 2)),
        ];
        let data = line_data(n);
        let mut lm = LabelModel::new(2);
        let out = lm.fit_predict(&lfs, &data);
        prop_assert_eq!(out.len(), n);
        for l in &out {
            prop_assert!((l.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for &acc in lm.accuracies() {
            prop_assert!((0.05..=0.95).contains(&acc));
        }
    }

    #[test]
    fn lf_abstention_band_is_monotone(
        w0 in -2.0f64..2.0,
        w1 in -2.0f64..2.0,
        x0 in -3.0f64..3.0,
        x1 in -3.0f64..3.0,
        m1 in 0.0f64..1.0,
        m2 in 0.0f64..1.0,
    ) {
        prop_assume!(w0.abs() + w1.abs() > 0.1);
        let (small, large) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        let narrow = HyperplaneLf::new(vec![w0, w1], 0.0, small, 2);
        let wide = HyperplaneLf::new(vec![w0, w1], 0.0, large, 2);
        // A wider margin can only turn votes into abstentions, never
        // change a vote's class or invent a vote.
        match (narrow.vote(&[x0, x1]), wide.vote(&[x0, x1])) {
            (None, Some(_)) => prop_assert!(false, "wide margin voted where narrow abstained"),
            (Some(a), Some(b)) => prop_assert_eq!(a, b),
            _ => {}
        }
    }
}
