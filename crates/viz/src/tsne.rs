//! Exact t-SNE (van der Maaten & Hinton, JMLR 2008).
//!
//! The O(n²) reference algorithm, sufficient for the few hundred
//! validation/test points Figure 3 embeds:
//!
//! 1. squared Euclidean distances `d_ij²` in the input space;
//! 2. per-point binary search for the Gaussian bandwidth `σ_i` matching
//!    the target perplexity;
//! 3. symmetrized affinities `P = (P_cond + P_condᵀ) / 2n`, inflated by
//!    the early-exaggeration factor for the first phase;
//! 4. gradient descent with momentum on the Kullback–Leibler divergence
//!    between `P` and the Student-t affinities `Q` of the embedding.

use chef_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// t-SNE hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Output dimensionality (2 for figures).
    pub out_dim: usize,
    /// Target perplexity (effective neighbour count).
    pub perplexity: f64,
    /// Total gradient-descent iterations.
    pub iters: usize,
    /// Iterations with early exaggeration applied.
    pub exaggeration_iters: usize,
    /// Early-exaggeration factor.
    pub exaggeration: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum (switches from 0.5 to this after the exaggeration phase).
    pub momentum: f64,
    /// RNG seed for the initial embedding.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            out_dim: 2,
            perplexity: 15.0,
            iters: 400,
            exaggeration_iters: 100,
            exaggeration: 4.0,
            learning_rate: 100.0,
            momentum: 0.8,
            seed: 42,
        }
    }
}

/// Pairwise squared Euclidean distances of row vectors.
fn pairwise_sq(data: &Matrix) -> Vec<f64> {
    let n = data.rows();
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = chef_linalg::vector::distance(data.row(i), data.row(j));
            let sq = dist * dist;
            d[i * n + j] = sq;
            d[j * n + i] = sq;
        }
    }
    d
}

/// Binary-search the precision `β_i = 1/(2σ_i²)` so the conditional
/// distribution of row `i` hits the target perplexity; fills `p_row`.
fn search_beta(dist_row: &[f64], i: usize, target_entropy: f64, p_row: &mut [f64]) {
    let (mut beta, mut beta_min, mut beta_max) = (1.0, f64::NEG_INFINITY, f64::INFINITY);
    for _ in 0..64 {
        // Conditional probabilities and entropy at the current beta.
        let mut sum = 0.0;
        for (j, (&d, p)) in dist_row.iter().zip(p_row.iter_mut()).enumerate() {
            *p = if j == i { 0.0 } else { (-beta * d).exp() };
            sum += *p;
        }
        if sum <= 0.0 {
            sum = f64::MIN_POSITIVE;
        }
        let mut entropy = 0.0;
        for p in p_row.iter_mut() {
            *p /= sum;
            if *p > 1e-12 {
                entropy -= *p * p.ln();
            }
        }
        let diff = entropy - target_entropy;
        if diff.abs() < 1e-5 {
            break;
        }
        if diff > 0.0 {
            beta_min = beta;
            beta = if beta_max.is_infinite() {
                beta * 2.0
            } else {
                0.5 * (beta + beta_max)
            };
        } else {
            beta_max = beta;
            beta = if beta_min.is_infinite() {
                beta / 2.0
            } else {
                0.5 * (beta + beta_min)
            };
        }
    }
}

/// Run exact t-SNE on the rows of `data`; returns an `n × out_dim`
/// embedding.
///
/// # Panics
/// Panics if there are fewer than 3 rows.
pub fn tsne(data: &Matrix, cfg: &TsneConfig) -> Matrix {
    let n = data.rows();
    assert!(n >= 3, "tsne: need at least 3 points");
    let perplexity = cfg.perplexity.min((n - 1) as f64 / 3.0).max(2.0);
    let target_entropy = perplexity.ln();

    // Symmetrized input affinities.
    let d2 = pairwise_sq(data);
    let mut p = vec![0.0; n * n];
    {
        let mut row = vec![0.0; n];
        for i in 0..n {
            search_beta(&d2[i * n..(i + 1) * n], i, target_entropy, &mut row);
            p[i * n..(i + 1) * n].copy_from_slice(&row);
        }
    }
    let mut pij = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }

    // Initialize the embedding with small Gaussian noise.
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let dim = cfg.out_dim;
    let mut y: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-1e-2..1e-2)).collect();
    let mut velocity = vec![0.0; n * dim];
    let mut gains = vec![1.0f64; n * dim];
    let mut grad = vec![0.0; n * dim];
    let mut q_num = vec![0.0; n * n];

    for iter in 0..cfg.iters {
        let exaggerate = if iter < cfg.exaggeration_iters {
            cfg.exaggeration
        } else {
            1.0
        };
        let momentum = if iter < cfg.exaggeration_iters {
            0.5
        } else {
            cfg.momentum
        };

        // Student-t numerators and their sum.
        let mut q_sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let mut sq = 0.0;
                for k in 0..dim {
                    let diff = y[i * dim + k] - y[j * dim + k];
                    sq += diff * diff;
                }
                let num = 1.0 / (1.0 + sq);
                q_num[i * n + j] = num;
                q_num[j * n + i] = num;
                q_sum += 2.0 * num;
            }
        }
        let q_sum = q_sum.max(1e-12);

        // Gradient: 4 Σ_j (p_ij·ex − q_ij) num_ij (y_i − y_j).
        grad.fill(0.0);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let num = q_num[i * n + j];
                let q = (num / q_sum).max(1e-12);
                let coeff = 4.0 * (exaggerate * pij[i * n + j] - q) * num;
                for k in 0..dim {
                    grad[i * dim + k] += coeff * (y[i * dim + k] - y[j * dim + k]);
                }
            }
        }

        // Momentum update with adaptive per-coordinate gains (the
        // reference implementation's stabilizer), then re-centre.
        for idx in 0..n * dim {
            gains[idx] = if (grad[idx] > 0.0) != (velocity[idx] > 0.0) {
                gains[idx] + 0.2
            } else {
                (gains[idx] * 0.8).max(0.01)
            };
            velocity[idx] = momentum * velocity[idx] - cfg.learning_rate * gains[idx] * grad[idx];
            y[idx] += velocity[idx];
        }
        for k in 0..dim {
            let mean: f64 = (0..n).map(|i| y[i * dim + k]).sum::<f64>() / n as f64;
            for i in 0..n {
                y[i * dim + k] -= mean;
            }
        }
    }

    Matrix::from_vec(n, dim, y)
}

/// KL divergence between the input affinities of `data` and the Student-t
/// affinities of `embedding` — the quantity t-SNE minimizes (exposed for
/// tests and convergence diagnostics).
pub fn kl_divergence(data: &Matrix, embedding: &Matrix, perplexity: f64) -> f64 {
    let n = data.rows();
    let target_entropy = perplexity.min((n - 1) as f64 / 3.0).max(2.0).ln();
    let d2 = pairwise_sq(data);
    let mut p = vec![0.0; n * n];
    let mut row = vec![0.0; n];
    for i in 0..n {
        search_beta(&d2[i * n..(i + 1) * n], i, target_entropy, &mut row);
        p[i * n..(i + 1) * n].copy_from_slice(&row);
    }
    let mut kl = 0.0;
    let mut q = vec![0.0; n * n];
    let mut q_sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let dist = chef_linalg::vector::distance(embedding.row(i), embedding.row(j));
            let num = 1.0 / (1.0 + dist * dist);
            q[i * n + j] = num;
            q_sum += num;
        }
    }
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let pij = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
            let qij = (q[i * n + j] / q_sum).max(1e-12);
            kl += pij * (pij / qij).ln();
        }
    }
    kl
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_linalg::vector;

    /// Two well-separated Gaussian blobs in 8 dimensions.
    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dim = 8;
        let mut raw = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            let center = if c == 0 { -4.0 } else { 4.0 };
            for _ in 0..n_per {
                for _ in 0..dim {
                    raw.push(center + rng.gen_range(-1.0..1.0));
                }
                labels.push(c);
            }
        }
        (Matrix::from_vec(2 * n_per, dim, raw), labels)
    }

    fn quick_cfg() -> TsneConfig {
        TsneConfig {
            iters: 250,
            exaggeration_iters: 60,
            learning_rate: 10.0,
            perplexity: 10.0,
            ..TsneConfig::default()
        }
    }

    #[test]
    fn separated_blobs_stay_separated() {
        let (data, labels) = blobs(25, 1);
        let emb = tsne(&data, &quick_cfg());
        assert_eq!(emb.rows(), 50);
        assert_eq!(emb.cols(), 2);
        // Mean intra-cluster distance must be far below inter-cluster.
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for i in 0..50 {
            for j in (i + 1)..50 {
                let d = vector::distance(emb.row(i), emb.row(j));
                if labels[i] == labels[j] {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            inter_mean > 2.0 * intra_mean,
            "intra {intra_mean}, inter {inter_mean}"
        );
    }

    #[test]
    fn embedding_is_centered_and_finite() {
        let (data, _) = blobs(15, 2);
        let emb = tsne(&data, &quick_cfg());
        for k in 0..2 {
            let mean: f64 = (0..emb.rows()).map(|i| emb.row(i)[k]).sum::<f64>() / emb.rows() as f64;
            assert!(mean.abs() < 1e-9, "dimension {k} mean {mean}");
        }
        assert!(emb.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_in_seed() {
        let (data, _) = blobs(10, 3);
        let a = tsne(&data, &quick_cfg());
        let b = tsne(&data, &quick_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn optimization_reduces_kl() {
        let (data, _) = blobs(12, 4);
        let short = tsne(
            &data,
            &TsneConfig {
                iters: 5,
                exaggeration_iters: 0,
                ..quick_cfg()
            },
        );
        let long = tsne(&data, &quick_cfg());
        let kl_short = kl_divergence(&data, &short, 10.0);
        let kl_long = kl_divergence(&data, &long, 10.0);
        assert!(kl_long < kl_short, "KL {kl_short} → {kl_long}");
    }

    #[test]
    fn perplexity_search_hits_target_entropy() {
        let (data, _) = blobs(20, 5);
        let d2 = pairwise_sq(&data);
        let n = data.rows();
        let target = 10.0f64.ln();
        let mut row = vec![0.0; n];
        for i in 0..n {
            search_beta(&d2[i * n..(i + 1) * n], i, target, &mut row);
            let entropy: f64 = -row
                .iter()
                .filter(|&&p| p > 1e-12)
                .map(|&p| p * p.ln())
                .sum::<f64>();
            assert!(
                (entropy - target).abs() < 1e-3,
                "row {i}: entropy {entropy}"
            );
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn too_few_points_panics() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let _ = tsne(&data, &TsneConfig::default());
    }
}
