//! Minimal SVG scatter plots and CSV export.
//!
//! The experiment harness persists every figure twice: as CSV (the raw
//! series, diff-friendly) and as a dependency-free SVG scatter so Figure 3
//! can be eyeballed directly.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One named point series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
    /// Fill color (any SVG color string).
    pub color: String,
    /// Marker radius in pixels.
    pub radius: f64,
    /// Marker shape.
    pub marker: Marker,
}

/// Scatter marker shapes (mirroring the paper's '+', '−', '×' glyphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Marker {
    /// Filled circle.
    Circle,
    /// Plus glyph.
    Plus,
    /// Cross glyph.
    Cross,
}

impl Series {
    /// Convenience constructor with a circle marker.
    pub fn new(label: impl Into<String>, color: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
            color: color.into(),
            radius: 3.0,
            marker: Marker::Circle,
        }
    }

    /// Set the marker shape.
    pub fn with_marker(mut self, marker: Marker) -> Self {
        self.marker = marker;
        self
    }
}

/// A 2-D scatter plot.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    /// Plot title.
    pub title: String,
    /// Point series.
    pub series: Vec<Series>,
    /// Canvas width in pixels.
    pub width: f64,
    /// Canvas height in pixels.
    pub height: f64,
}

impl ScatterPlot {
    /// New empty plot.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            series: Vec::new(),
            width: 640.0,
            height: 480.0,
        }
    }

    /// Add a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Data bounding box `(xmin, xmax, ymin, ymax)`; unit box if empty.
    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut b = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for s in &self.series {
            for &(x, y) in &s.points {
                b.0 = b.0.min(x);
                b.1 = b.1.max(x);
                b.2 = b.2.min(y);
                b.3 = b.3.max(y);
            }
        }
        if !b.0.is_finite() {
            return (0.0, 1.0, 0.0, 1.0);
        }
        // Avoid degenerate spans.
        if b.1 - b.0 < 1e-12 {
            b.1 = b.0 + 1.0;
        }
        if b.3 - b.2 < 1e-12 {
            b.3 = b.2 + 1.0;
        }
        (b.0, b.1, b.2, b.3)
    }

    /// Render to an SVG string.
    pub fn to_svg(&self) -> String {
        let margin = 40.0;
        let (xmin, xmax, ymin, ymax) = self.bounds();
        let sx = (self.width - 2.0 * margin) / (xmax - xmin);
        let sy = (self.height - 2.0 * margin) / (ymax - ymin);
        let px = |x: f64| margin + (x - xmin) * sx;
        let py = |y: f64| self.height - margin - (y - ymin) * sy;

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
            self.width, self.height, self.width, self.height
        );
        let _ = writeln!(
            svg,
            r#"<rect width="100%" height="100%" fill="white"/><text x="{}" y="20" text-anchor="middle" font-family="sans-serif" font-size="14">{}</text>"#,
            self.width / 2.0,
            self.title
        );
        for (si, s) in self.series.iter().enumerate() {
            for &(x, y) in &s.points {
                let (cx, cy) = (px(x), py(y));
                match s.marker {
                    Marker::Circle => {
                        let _ = writeln!(
                            svg,
                            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{}" fill="{}"/>"#,
                            s.radius, s.color
                        );
                    }
                    Marker::Plus => {
                        let r = s.radius;
                        let _ = writeln!(
                            svg,
                            r#"<path d="M {:.2} {cy:.2} H {:.2} M {cx:.2} {:.2} V {:.2}" stroke="{}" stroke-width="1.5"/>"#,
                            cx - r,
                            cx + r,
                            cy - r,
                            cy + r,
                            s.color
                        );
                    }
                    Marker::Cross => {
                        let r = s.radius;
                        let _ = writeln!(
                            svg,
                            r#"<path d="M {:.2} {:.2} L {:.2} {:.2} M {:.2} {:.2} L {:.2} {:.2}" stroke="{}" stroke-width="2"/>"#,
                            cx - r,
                            cy - r,
                            cx + r,
                            cy + r,
                            cx - r,
                            cy + r,
                            cx + r,
                            cy - r,
                            s.color
                        );
                    }
                }
            }
            // Legend row.
            let ly = 30.0 + 16.0 * si as f64;
            let _ = writeln!(
                svg,
                r#"<circle cx="{}" cy="{ly}" r="4" fill="{}"/><text x="{}" y="{}" font-family="sans-serif" font-size="11">{}</text>"#,
                self.width - 130.0,
                s.color,
                self.width - 120.0,
                ly + 4.0,
                s.label
            );
        }
        svg.push_str("</svg>\n");
        svg
    }

    /// Write the SVG to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_svg())
    }
}

/// Write rows of named columns as CSV (header + `rows`).
pub fn write_csv(path: impl AsRef<Path>, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        debug_assert_eq!(row.len(), header.len(), "csv row width");
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_contains_all_points_and_legend() {
        let mut plot = ScatterPlot::new("demo");
        let mut s = Series::new("positive", "steelblue");
        s.points = vec![(0.0, 0.0), (1.0, 2.0), (-1.0, 0.5)];
        plot.push(s);
        let mut m = Series::new("S", "crimson").with_marker(Marker::Cross);
        m.points = vec![(0.5, 0.5)];
        plot.push(m);
        let svg = plot.to_svg();
        assert_eq!(svg.matches("<circle").count(), 3 + 2); // 3 points + 2 legend dots
        assert!(svg.contains("crimson"));
        assert!(svg.contains("demo"));
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn empty_plot_renders() {
        let plot = ScatterPlot::new("empty");
        let svg = plot.to_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("chef_viz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn markers_render_distinct_shapes() {
        let mut plot = ScatterPlot::new("markers");
        for (marker, label) in [(Marker::Plus, "p"), (Marker::Cross, "x")] {
            let mut s = Series::new(label, "black").with_marker(marker);
            s.points = vec![(0.0, 0.0)];
            plot.push(s);
        }
        let svg = plot.to_svg();
        assert!(svg.matches("<path").count() >= 2);
    }
}
