//! Principal component analysis via power iteration with deflation.
//!
//! Used as a fast linear alternative to t-SNE and as a test oracle for
//! the embedding code: the top-k eigenvectors of the sample covariance
//! are found one at a time with the same power method Appendix D uses,
//! deflating the covariance operator after each component.

use chef_linalg::power::{power_method, PowerConfig};
use chef_linalg::{vector, LinearOperator, Matrix};

/// Covariance operator `v ↦ (Xᶜ)ᵀ Xᶜ v / (n−1)` with deflation, applied
/// without materializing the covariance matrix.
struct CovOp<'a> {
    centered: &'a Matrix,
    deflated: Vec<(f64, Vec<f64>)>,
}

impl LinearOperator for CovOp<'_> {
    fn dim(&self) -> usize {
        self.centered.cols()
    }
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        let n = self.centered.rows();
        let mut t = vec![0.0; n];
        self.centered.matvec(v, &mut t);
        self.centered.matvec_t(&t, out);
        let denom = (n.max(2) - 1) as f64;
        vector::scale(1.0 / denom, out);
        for (lambda, u) in &self.deflated {
            let proj = vector::dot(u, v);
            vector::axpy(-lambda * proj, u, out);
        }
    }
}

/// Project the rows of `data` onto their top `k` principal components.
///
/// Returns `(projection (n × k), components (k × dim), eigenvalues)`.
///
/// # Panics
/// Panics if `k` exceeds the feature dimension or the input is empty.
pub fn pca(data: &Matrix, k: usize) -> (Matrix, Matrix, Vec<f64>) {
    let n = data.rows();
    let d = data.cols();
    assert!(n > 0, "pca: empty input");
    assert!(k >= 1 && k <= d, "pca: invalid component count");

    // Centre the data.
    let mut means = vec![0.0; d];
    for i in 0..n {
        vector::axpy(1.0, data.row(i), &mut means);
    }
    vector::scale(1.0 / n as f64, &mut means);
    let mut centered = data.clone();
    for i in 0..n {
        for (v, m) in centered.row_mut(i).iter_mut().zip(&means) {
            *v -= m;
        }
    }

    let mut op = CovOp {
        centered: &centered,
        deflated: Vec::new(),
    };
    let mut components = Matrix::zeros(k, d);
    let mut eigenvalues = Vec::with_capacity(k);
    for c in 0..k {
        let out = power_method(
            &op,
            &PowerConfig {
                max_iters: 500,
                tol: 1e-12,
                seed: 0x5eed + c as u64,
            },
        );
        components.row_mut(c).copy_from_slice(&out.eigenvector);
        eigenvalues.push(out.eigenvalue.max(0.0));
        op.deflated.push((out.eigenvalue, out.eigenvector));
    }

    let mut proj = Matrix::zeros(n, k);
    for i in 0..n {
        for c in 0..k {
            proj[(i, c)] = vector::dot(centered.row(i), components.row(c));
        }
    }
    (proj, components, eigenvalues)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_axis() {
        // Points spread along the x axis with tiny y noise.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, ((i * 7) % 3) as f64 * 0.01])
            .collect();
        let data = Matrix::from_rows(&rows);
        let (_, comps, evals) = pca(&data, 2);
        // First component ≈ ±e_x.
        assert!(comps[(0, 0)].abs() > 0.999, "{comps:?}");
        assert!(evals[0] > 100.0 * evals[1], "{evals:?}");
    }

    #[test]
    fn components_are_orthonormal() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let t = i as f64 * 0.4;
                vec![t.sin() * 3.0, t.cos(), t * 0.2, (t * 1.3).sin()]
            })
            .collect();
        let data = Matrix::from_rows(&rows);
        let (_, comps, _) = pca(&data, 3);
        for a in 0..3 {
            for b in 0..3 {
                let dot = vector::dot(comps.row(a), comps.row(b));
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-6, "({a},{b}): {dot}");
            }
        }
    }

    #[test]
    fn projection_variance_matches_eigenvalues() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64;
                vec![2.0 * t, -t, 0.5 * t + ((i % 5) as f64)]
            })
            .collect();
        let data = Matrix::from_rows(&rows);
        let (proj, _, evals) = pca(&data, 1);
        let n = proj.rows();
        let mean: f64 = (0..n).map(|i| proj[(i, 0)]).sum::<f64>() / n as f64;
        let var: f64 = (0..n).map(|i| (proj[(i, 0)] - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(
            (var - evals[0]).abs() < 1e-6 * evals[0],
            "var {var} vs eigenvalue {}",
            evals[0]
        );
    }

    #[test]
    #[should_panic(expected = "invalid component count")]
    fn too_many_components_panics() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let _ = pca(&data, 3);
    }
}
