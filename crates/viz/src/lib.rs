//! # chef-viz
//!
//! Visualization substrate for the CHEF reproduction.
//!
//! Figure 3 of the paper embeds the validation/test samples of the
//! Twitter and Fashion datasets with **t-SNE** and marks the most
//! influential training sample `S` to show that Infl's suggested label
//! matches the ground-truth labels of `S`'s neighbours. This crate
//! implements the pieces from scratch:
//!
//! * [`mod@tsne`] — exact (O(n²)) t-SNE with the standard perplexity binary
//!   search, early exaggeration and momentum gradient descent (van der
//!   Maaten & Hinton, JMLR 2008);
//! * [`mod@pca`] — top-k principal components via power iteration with
//!   deflation (used both as a t-SNE initializer option and as a cheap
//!   alternative projection);
//! * [`plot`] — a minimal SVG scatter writer and a CSV exporter so the
//!   harness can persist figures without any plotting dependency.

pub mod pca;
pub mod plot;
pub mod tsne;

pub use pca::pca;
pub use plot::{write_csv, ScatterPlot, Series};
pub use tsne::{tsne, TsneConfig};
