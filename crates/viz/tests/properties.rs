//! Property-based tests for the visualization substrate.

use chef_linalg::{vector, Matrix};
use chef_viz::pca::pca;
use chef_viz::plot::{write_csv, Marker, ScatterPlot, Series};
use chef_viz::tsne::{tsne, TsneConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pca_components_are_orthonormal_for_random_data(
        raw in prop::collection::vec(-5.0f64..5.0, 60),
        k in 1usize..4,
    ) {
        let data = Matrix::from_vec(15, 4, raw);
        let (proj, comps, evals) = pca(&data, k);
        prop_assert_eq!(proj.rows(), 15);
        prop_assert_eq!(proj.cols(), k);
        for a in 0..k {
            for b in 0..k {
                let dot = vector::dot(comps.row(a), comps.row(b));
                let expect = if a == b { 1.0 } else { 0.0 };
                prop_assert!((dot - expect).abs() < 1e-5, "({a},{b}): {dot}");
            }
        }
        // Eigenvalues are non-negative and sorted descending.
        for w in evals.windows(2) {
            prop_assert!(w[0] + 1e-9 >= w[1]);
        }
        prop_assert!(evals.iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn tsne_preserves_point_count_and_centering(
        raw in prop::collection::vec(-3.0f64..3.0, 48),
        seed in 0u64..100,
    ) {
        let data = Matrix::from_vec(12, 4, raw);
        let cfg = TsneConfig {
            iters: 30,
            exaggeration_iters: 10,
            learning_rate: 5.0,
            seed,
            ..TsneConfig::default()
        };
        let emb = tsne(&data, &cfg);
        prop_assert_eq!(emb.rows(), 12);
        prop_assert_eq!(emb.cols(), 2);
        prop_assert!(emb.as_slice().iter().all(|v| v.is_finite()));
        for k in 0..2 {
            let mean: f64 = (0..12).map(|i| emb.row(i)[k]).sum::<f64>() / 12.0;
            prop_assert!(mean.abs() < 1e-8);
        }
    }

    #[test]
    fn svg_is_well_formed_for_any_points(
        points in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 0..30),
    ) {
        let mut plot = ScatterPlot::new("prop");
        let mut s = Series::new("s", "black").with_marker(Marker::Circle);
        s.points = points.clone();
        plot.push(s);
        let svg = plot.to_svg();
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.trim_end().ends_with("</svg>"));
        // One <circle> per point plus one legend marker.
        prop_assert_eq!(svg.matches("<circle").count(), points.len() + 1);
    }

    #[test]
    fn csv_writer_emits_one_line_per_row(
        rows in prop::collection::vec(prop::collection::vec(0i32..100, 2), 0..20),
    ) {
        let dir = std::env::temp_dir().join("chef_viz_proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("rows_{}.csv", rows.len()));
        let string_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        write_csv(&path, &["a", "b"], &string_rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        prop_assert_eq!(text.lines().count(), rows.len() + 1);
        let _ = std::fs::remove_file(path);
    }
}
