//! Training/validation/test datasets.
//!
//! A [`Dataset`] is the paper's `Z = Z_d ∪ Z_p`: a feature matrix plus one
//! [`SoftLabel`] per sample and a `clean` flag distinguishing the
//! deterministic (`Z_d`, weight 1) from the probabilistic (`Z_p`,
//! weight γ) part. For simulation the generator can also attach the true
//! class of every sample (`ground_truth`), which plays the role of the
//! paper's fully-clean datasets: probabilistic labels are observed, truth
//! is known only to the evaluation harness and the simulated annotators.

use crate::label::SoftLabel;
use chef_linalg::Matrix;

/// An in-memory classification dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<SoftLabel>,
    clean: Vec<bool>,
    ground_truth: Vec<Option<usize>>,
    num_classes: usize,
}

impl Dataset {
    /// Build a dataset from parts.
    ///
    /// # Panics
    /// Panics if lengths disagree, a label has the wrong class count, or a
    /// ground-truth class is out of range.
    pub fn new(
        features: Matrix,
        labels: Vec<SoftLabel>,
        clean: Vec<bool>,
        ground_truth: Vec<Option<usize>>,
        num_classes: usize,
    ) -> Self {
        let n = features.rows();
        assert_eq!(labels.len(), n, "Dataset: labels length");
        assert_eq!(clean.len(), n, "Dataset: clean flags length");
        assert_eq!(ground_truth.len(), n, "Dataset: ground truth length");
        for l in &labels {
            assert_eq!(l.num_classes(), num_classes, "Dataset: label class count");
        }
        for g in ground_truth.iter().flatten() {
            assert!(*g < num_classes, "Dataset: ground truth out of range");
        }
        Self {
            features,
            labels,
            clean,
            ground_truth,
            num_classes,
        }
    }

    /// Empty dataset with the given feature dimension and class count.
    pub fn empty(dim: usize, num_classes: usize) -> Self {
        Self {
            features: Matrix::zeros(0, dim),
            labels: Vec::new(),
            clean: Vec::new(),
            ground_truth: Vec::new(),
            num_classes,
        }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// Whether the dataset has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimension (before the implicit bias column models add).
    #[inline]
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature row of sample `i`.
    #[inline]
    pub fn feature(&self, i: usize) -> &[f64] {
        self.features.row(i)
    }

    /// The feature rows `lo..hi` as one contiguous row-major slice
    /// (`(hi − lo) × dim`). Batched kernels use this to feed consecutive
    /// sample blocks straight into a GEMM without gathering a copy.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > len()`.
    #[inline]
    pub fn feature_rows(&self, lo: usize, hi: usize) -> &[f64] {
        assert!(
            lo <= hi && hi <= self.len(),
            "Dataset: row range {lo}..{hi}"
        );
        &self.features.as_slice()[lo * self.dim()..hi * self.dim()]
    }

    /// Label of sample `i`.
    #[inline]
    pub fn label(&self, i: usize) -> &SoftLabel {
        &self.labels[i]
    }

    /// Whether sample `i` is clean (deterministic label, weight 1).
    #[inline]
    pub fn is_clean(&self, i: usize) -> bool {
        self.clean[i]
    }

    /// Per-sample weight `γ_z` from Eq. 1: 1 for clean samples, `gamma`
    /// for uncleaned ones.
    #[inline]
    pub fn weight(&self, i: usize, gamma: f64) -> f64 {
        if self.clean[i] {
            1.0
        } else {
            gamma
        }
    }

    /// Ground-truth class of sample `i` (simulation only).
    #[inline]
    pub fn ground_truth(&self, i: usize) -> Option<usize> {
        self.ground_truth[i]
    }

    /// Replace the label of sample `i` and mark it clean; this is the
    /// "delete probabilistic + insert cleaned" update of §4.2.
    pub fn clean_label(&mut self, i: usize, label: SoftLabel) {
        assert_eq!(label.num_classes(), self.num_classes);
        self.labels[i] = label;
        self.clean[i] = true;
    }

    /// Replace the label of sample `i` *without* marking it clean (used by
    /// the Fact/Twitter "ambiguous aggregate" rule, Appendix F.1).
    pub fn set_label(&mut self, i: usize, label: SoftLabel) {
        assert_eq!(label.num_classes(), self.num_classes);
        self.labels[i] = label;
    }

    /// Mark sample `i` as uncleaned (weight γ). Used by the
    /// weak-supervision substrate when replacing ground-truth labels with
    /// probabilistic ones.
    pub fn mark_uncleaned(&mut self, i: usize) {
        self.clean[i] = false;
    }

    /// Indices of all currently uncleaned samples (the `Z_p` part).
    pub fn uncleaned_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.clean[i]).collect()
    }

    /// Number of clean samples.
    pub fn num_clean(&self) -> usize {
        self.clean.iter().filter(|&&c| c).count()
    }

    /// Append a sample.
    pub fn push(&mut self, features: &[f64], label: SoftLabel, clean: bool, truth: Option<usize>) {
        assert_eq!(features.len(), self.dim(), "Dataset::push: feature dim");
        assert_eq!(label.num_classes(), self.num_classes);
        if let Some(g) = truth {
            assert!(g < self.num_classes);
        }
        let (rows, cols) = (self.features.rows(), self.features.cols());
        let mut raw = Vec::with_capacity((rows + 1) * cols);
        raw.extend_from_slice(self.features.as_slice());
        raw.extend_from_slice(features);
        self.features = Matrix::from_vec(rows + 1, cols, raw);
        self.labels.push(label);
        self.clean.push(clean);
        self.ground_truth.push(truth);
    }

    /// Select a sub-dataset by indices (features are copied).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut raw = Vec::with_capacity(indices.len() * self.dim());
        let mut labels = Vec::with_capacity(indices.len());
        let mut clean = Vec::with_capacity(indices.len());
        let mut truth = Vec::with_capacity(indices.len());
        for &i in indices {
            raw.extend_from_slice(self.feature(i));
            labels.push(self.labels[i].clone());
            clean.push(self.clean[i]);
            truth.push(self.ground_truth[i]);
        }
        Dataset {
            features: Matrix::from_vec(indices.len(), self.dim(), raw),
            labels,
            clean,
            ground_truth: truth,
            num_classes: self.num_classes,
        }
    }

    /// Fraction of uncleaned labels whose argmax disagrees with ground
    /// truth (diagnostic for generated datasets; `None` if no sample has
    /// ground truth).
    pub fn weak_label_error_rate(&self) -> Option<f64> {
        let mut total = 0usize;
        let mut wrong = 0usize;
        for i in 0..self.len() {
            if self.clean[i] {
                continue;
            }
            if let Some(g) = self.ground_truth[i] {
                total += 1;
                if self.labels[i].argmax() != g {
                    wrong += 1;
                }
            }
        }
        if total == 0 {
            None
        } else {
            Some(wrong as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]),
            vec![
                SoftLabel::onehot(0, 2),
                SoftLabel::new(vec![0.4, 0.6]),
                SoftLabel::new(vec![0.2, 0.8]),
            ],
            vec![true, false, false],
            vec![Some(0), Some(1), Some(0)],
            2,
        )
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.feature(2), &[1.0, 1.0]);
        assert!(d.is_clean(0));
        assert!(!d.is_clean(1));
        assert_eq!(d.weight(0, 0.8), 1.0);
        assert_eq!(d.weight(1, 0.8), 0.8);
        assert_eq!(d.ground_truth(1), Some(1));
        assert_eq!(d.uncleaned_indices(), vec![1, 2]);
        assert_eq!(d.num_clean(), 1);
    }

    #[test]
    fn cleaning_updates_weight_and_flag() {
        let mut d = toy();
        d.clean_label(1, SoftLabel::onehot(1, 2));
        assert!(d.is_clean(1));
        assert_eq!(d.weight(1, 0.5), 1.0);
        assert_eq!(d.label(1), &SoftLabel::onehot(1, 2));
        assert_eq!(d.uncleaned_indices(), vec![2]);
    }

    #[test]
    fn set_label_keeps_uncleaned() {
        let mut d = toy();
        d.set_label(1, SoftLabel::new(vec![0.5, 0.5]));
        assert!(!d.is_clean(1));
    }

    #[test]
    fn push_and_subset() {
        let mut d = toy();
        d.push(&[2.0, 3.0], SoftLabel::uniform(2), false, None);
        assert_eq!(d.len(), 4);
        assert_eq!(d.feature(3), &[2.0, 3.0]);
        let s = d.subset(&[3, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.feature(0), &[2.0, 3.0]);
        assert_eq!(s.feature(1), &[1.0, 0.0]);
        assert!(s.is_clean(1));
    }

    #[test]
    fn weak_error_rate() {
        let d = toy();
        // Uncleaned: sample 1 argmax=1 truth=1 (right), sample 2 argmax=1
        // truth=0 (wrong) → 1/2.
        assert_eq!(d.weak_label_error_rate(), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "labels length")]
    fn mismatched_lengths_panic() {
        let _ = Dataset::new(
            Matrix::zeros(2, 2),
            vec![SoftLabel::uniform(2)],
            vec![false, false],
            vec![None, None],
            2,
        );
    }
}
