//! A small multilayer perceptron with manual backpropagation.
//!
//! Appendix G.2 of the paper repeats the Exp1 comparison with a LeNet CNN
//! to show that Infl's rankings and suggested labels still help outside
//! the strongly-convex regime. Mature Rust autodiff for this is the gated
//! capability flagged in the repro assessment, so we substitute the
//! smallest non-convex classifier that exercises the same code paths: a
//! one-hidden-layer tanh MLP with hand-derived backprop. Hessian-vector
//! products (needed by the conjugate-gradient solve inside Infl) use the
//! standard central-difference-of-gradients estimator with damping — the
//! same practical recipe Koh & Liang use for deep models.
//!
//! Parameter layout: `[W₁ (h × (d+1)) ‖ W₂ (C × (h+1))]`, biases folded
//! in as trailing columns, all row-major.

use crate::label::SoftLabel;
use crate::model::Model;
use chef_linalg::power::{power_method, PowerConfig};
use chef_linalg::{vector, Workspace};

/// One-hidden-layer tanh MLP classifier.
#[derive(Debug, Clone)]
pub struct Mlp {
    dim: usize,
    hidden: usize,
    num_classes: usize,
}

impl Mlp {
    /// Create an MLP description with `hidden` tanh units.
    ///
    /// # Panics
    /// Panics unless `dim, hidden ≥ 1` and `num_classes ≥ 2`.
    pub fn new(dim: usize, hidden: usize, num_classes: usize) -> Self {
        assert!(dim >= 1 && hidden >= 1, "Mlp: dim and hidden must be ≥ 1");
        assert!(num_classes >= 2, "Mlp: need ≥ 2 classes");
        Self {
            dim,
            hidden,
            num_classes,
        }
    }

    #[inline]
    fn w1_len(&self) -> usize {
        self.hidden * (self.dim + 1)
    }

    #[inline]
    fn w2_len(&self) -> usize {
        self.num_classes * (self.hidden + 1)
    }

    /// Hidden layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Glorot-style random initialization.
    pub fn init_params(&self, seed: u64) -> Vec<f64> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut w = vec![0.0; self.num_params()];
        let s1 = (2.0 / (self.dim + self.hidden) as f64).sqrt();
        let s2 = (2.0 / (self.hidden + self.num_classes) as f64).sqrt();
        for (i, wi) in w.iter_mut().enumerate() {
            let s = if i < self.w1_len() { s1 } else { s2 };
            *wi = rng.gen_range(-s..s);
        }
        w
    }

    /// Forward pass: hidden activations `a = tanh(W₁x̃)` and output
    /// probabilities `p = softmax(W₂ã)`.
    fn forward(&self, w: &[f64], x: &[f64], a: &mut [f64], p: &mut [f64]) {
        debug_assert_eq!(w.len(), self.num_params());
        debug_assert_eq!(x.len(), self.dim);
        let c1 = self.dim + 1;
        for (h, ah) in a.iter_mut().enumerate() {
            let row = &w[h * c1..(h + 1) * c1];
            *ah = (vector::dot(&row[..self.dim], x) + row[self.dim]).tanh();
        }
        let w2 = &w[self.w1_len()..];
        let c2 = self.hidden + 1;
        for (c, pc) in p.iter_mut().enumerate() {
            let row = &w2[c * c2..(c + 1) * c2];
            *pc = vector::dot(&row[..self.hidden], a) + row[self.hidden];
        }
        vector::softmax_in_place(p);
    }

    /// Backprop with caller-provided scratch: `a` (length `hidden`) and
    /// `p` (length `C`). `p` doubles as the output-layer delta δ₂ after
    /// the forward pass, so no third buffer is needed — the shared body
    /// of [`Model::grad`] and [`Model::grad_ws`].
    fn grad_with_scratch(
        &self,
        w: &[f64],
        x: &[f64],
        y: &SoftLabel,
        out: &mut [f64],
        a: &mut [f64],
        p: &mut [f64],
    ) {
        debug_assert_eq!(out.len(), self.num_params());
        self.forward(w, x, a, p);

        // Output-layer delta in place: δ₂ = p − y.
        for (c, pc) in p.iter_mut().enumerate() {
            *pc -= y.prob(c);
        }
        let d2: &[f64] = p;

        // ∇W₂ = δ₂ ãᵀ.
        let (g1, g2) = out.split_at_mut(self.w1_len());
        let c2 = self.hidden + 1;
        for (c, &dc) in d2.iter().enumerate() {
            let row = &mut g2[c * c2..(c + 1) * c2];
            for (ri, ai) in row[..self.hidden].iter_mut().zip(&*a) {
                *ri = dc * ai;
            }
            row[self.hidden] = dc;
        }

        // Hidden delta: δ₁ = (W₂ᵀ δ₂) ∘ (1 − a²).
        let w2 = &w[self.w1_len()..];
        let c1 = self.dim + 1;
        for h in 0..self.hidden {
            let mut back = 0.0;
            for (c, &dc) in d2.iter().enumerate() {
                back += w2[c * c2 + h] * dc;
            }
            let d1 = back * (1.0 - a[h] * a[h]);
            let row = &mut g1[h * c1..(h + 1) * c1];
            for (ri, xi) in row[..self.dim].iter_mut().zip(x) {
                *ri = d1 * xi;
            }
            row[self.dim] = d1;
        }
    }

    /// Central-difference HVP with caller-provided scratch (`wp`, `wm`,
    /// `gm` of length `num_params`; `a`, `p` as in
    /// [`Self::grad_with_scratch`]) — the shared body of [`Model::hvp`]
    /// and [`Model::hvp_ws`].
    #[allow(clippy::too_many_arguments)]
    fn hvp_with_scratch(
        &self,
        w: &[f64],
        x: &[f64],
        y: &SoftLabel,
        v: &[f64],
        out: &mut [f64],
        wp: &mut [f64],
        wm: &mut [f64],
        gm: &mut [f64],
        a: &mut [f64],
        p: &mut [f64],
    ) {
        let vnorm = vector::norm2(v);
        if vnorm == 0.0 {
            out.fill(0.0);
            return;
        }
        let eps = 1e-5 * (1.0 + vector::norm2(w)) / vnorm;
        for (i, (wi, vi)) in w.iter().zip(v).enumerate() {
            wp[i] = wi + eps * vi;
            wm[i] = wi - eps * vi;
        }
        self.grad_with_scratch(wp, x, y, out, a, p);
        self.grad_with_scratch(wm, x, y, gm, a, p);
        for (oi, gi) in out.iter_mut().zip(&*gm) {
            *oi = (*oi - gi) / (2.0 * eps);
        }
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.w1_len() + self.w2_len()
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn feature_dim(&self) -> usize {
        self.dim
    }

    fn predict_proba(&self, w: &[f64], x: &[f64], out: &mut [f64]) {
        let mut a = vec![0.0; self.hidden];
        self.forward(w, x, &mut a, out);
    }

    /// Glorot-style random init — a zero start would freeze the hidden
    /// layer (zero output weights give zero hidden deltas forever).
    fn initial_params(&self, seed: u64) -> Vec<f64> {
        self.init_params(seed)
    }

    fn grad(&self, w: &[f64], x: &[f64], y: &SoftLabel, out: &mut [f64]) {
        let mut a = vec![0.0; self.hidden];
        let mut p = vec![0.0; self.num_classes];
        self.grad_with_scratch(w, x, y, out, &mut a, &mut p);
    }

    /// Central finite difference of gradients:
    /// `Hv ≈ (∇F(w + εv) − ∇F(w − εv)) / 2ε`.
    fn hvp(&self, w: &[f64], x: &[f64], y: &SoftLabel, v: &[f64], out: &mut [f64]) {
        let m = self.num_params();
        let (mut wp, mut wm, mut gm) = (vec![0.0; m], vec![0.0; m], vec![0.0; m]);
        let mut a = vec![0.0; self.hidden];
        let mut p = vec![0.0; self.num_classes];
        self.hvp_with_scratch(w, x, y, v, out, &mut wp, &mut wm, &mut gm, &mut a, &mut p);
    }

    fn grad_ws(&self, w: &[f64], x: &[f64], y: &SoftLabel, out: &mut [f64], ws: &mut Workspace) {
        let mut a = ws.take(self.hidden);
        let mut p = ws.take(self.num_classes);
        self.grad_with_scratch(w, x, y, out, &mut a, &mut p);
        ws.put(p);
        ws.put(a);
    }

    fn hvp_ws(
        &self,
        w: &[f64],
        x: &[f64],
        y: &SoftLabel,
        v: &[f64],
        out: &mut [f64],
        ws: &mut Workspace,
    ) {
        let m = self.num_params();
        let mut wp = ws.take(m);
        let mut wm = ws.take(m);
        let mut gm = ws.take(m);
        let mut a = ws.take(self.hidden);
        let mut p = ws.take(self.num_classes);
        self.hvp_with_scratch(w, x, y, v, out, &mut wp, &mut wm, &mut gm, &mut a, &mut p);
        ws.put(p);
        ws.put(a);
        ws.put(gm);
        ws.put(wm);
        ws.put(wp);
    }

    fn hessian_norm(&self, w: &[f64], x: &[f64], y: &SoftLabel) -> f64 {
        struct Op<'a> {
            m: &'a Mlp,
            w: &'a [f64],
            x: &'a [f64],
            y: &'a SoftLabel,
        }
        impl chef_linalg::LinearOperator for Op<'_> {
            fn dim(&self) -> usize {
                self.m.num_params()
            }
            fn apply(&self, v: &[f64], out: &mut [f64]) {
                self.m.hvp(self.w, self.x, self.y, v, out);
            }
        }
        let op = Op { m: self, w, x, y };
        power_method(
            &op,
            &PowerConfig {
                max_iters: 50,
                tol: 1e-6,
                ..PowerConfig::default()
            },
        )
        .eigenvalue
        .abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{grad_check, hvp_check};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_vec(n: usize, rng: &mut SmallRng) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn output_is_probability_vector() {
        let m = Mlp::new(4, 5, 3);
        let w = m.init_params(11);
        let p = m.predict(&w, &[0.1, -0.2, 0.5, 1.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(p.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn backprop_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(21);
        for trial in 0..8 {
            let m = Mlp::new(3, 4, 3);
            let w = m.init_params(trial);
            let x = rand_vec(3, &mut rng);
            let y = SoftLabel::from_weights(&[
                rng.gen_range(0.01..1.0),
                rng.gen_range(0.01..1.0),
                rng.gen_range(0.01..1.0),
            ]);
            let err = grad_check(&m, &w, &x, &y, 1e-6);
            assert!(err < 1e-5, "trial {trial}: grad error {err}");
        }
    }

    #[test]
    fn fd_hvp_is_self_consistent() {
        // hvp() *is* a finite-difference scheme, so hvp_check with a
        // different epsilon validates stability rather than tautology.
        let mut rng = SmallRng::seed_from_u64(22);
        let m = Mlp::new(3, 3, 2);
        let w = m.init_params(9);
        let x = rand_vec(3, &mut rng);
        let v = rand_vec(m.num_params(), &mut rng);
        let y = SoftLabel::onehot(1, 2);
        let err = hvp_check(&m, &w, &x, &y, &v, 1e-4);
        assert!(err < 1e-3, "hvp error {err}");
    }

    #[test]
    fn hvp_of_zero_vector_is_zero() {
        let m = Mlp::new(2, 3, 2);
        let w = m.init_params(3);
        let mut out = vec![1.0; m.num_params()];
        m.hvp(
            &w,
            &[0.5, 0.5],
            &SoftLabel::uniform(2),
            &vec![0.0; m.num_params()],
            &mut out,
        );
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn training_step_reduces_loss() {
        let mut rng = SmallRng::seed_from_u64(23);
        let m = Mlp::new(2, 6, 2);
        let mut w = m.init_params(5);
        let x = rand_vec(2, &mut rng);
        let y = SoftLabel::onehot(0, 2);
        let mut g = vec![0.0; m.num_params()];
        let before = m.loss(&w, &x, &y);
        for _ in 0..20 {
            m.grad(&w, &x, &y, &mut g);
            vector::axpy(-0.5, &g, &mut w);
        }
        assert!(m.loss(&w, &x, &y) < before);
    }

    #[test]
    fn hessian_norm_is_nonnegative_and_finite() {
        let m = Mlp::new(3, 4, 2);
        let w = m.init_params(1);
        let n = m.hessian_norm(&w, &[0.2, -0.4, 0.9], &SoftLabel::uniform(2));
        assert!(n.is_finite() && n >= 0.0);
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let m = Mlp::new(3, 4, 2);
        assert_eq!(m.init_params(7), m.init_params(7));
        assert_ne!(m.init_params(7), m.init_params(8));
    }
}
