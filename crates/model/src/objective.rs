//! The weighted training objective of paper Eq. 1.
//!
//! ```text
//! F(w) = (1/N) [ Σ_{z ∈ Z_d} F(w, z) + Σ_{z̃ ∈ Z_p} γ F(w, z̃) ] + (λ/2)‖w‖²
//! ```
//!
//! Uncleaned samples carry the user weight `γ ∈ (0, 1]`; cleaned samples
//! carry weight 1. The L2 term (weight decay `λ`) makes the objective
//! μ-strongly convex with μ = λ for [`crate::LogisticRegression`], which
//! is the assumption Increm-Infl and DeltaGrad-L need (§3.2). Minibatch
//! gradients follow the paper's convention of dividing by the batch size
//! (not the weight sum).

use crate::label::SoftLabel;
use crate::model::Model;
use crate::store::DatasetStore;
use chef_linalg::{vector, LinearOperator, Workspace};

/// Minimum number of per-sample terms before the `parallel` feature fans
/// an accumulation out to the thread pool. Below this the scoped-thread
/// overhead outweighs the work, so the serial path runs. The gate
/// depends only on the input length — never the machine — so which code
/// path computes a result is reproducible everywhere.
pub const PAR_GRAIN: usize = 512;

/// Samples per task when a gradient accumulation splits into
/// [`crate::Model::grad_block`] calls. Always compiled: the serial and
/// parallel gradient paths share this *identical* chunk partitioning
/// (and combine the per-chunk partial sums in chunk order), so their
/// floating-point reductions associate the same way and the two paths
/// are **bit-identical** at every batch size — not merely ~1e-10 close.
/// Half of [`PAR_GRAIN`] so a batch right at the parallel threshold
/// still yields more than one task.
const GRAD_CHUNK: usize = PAR_GRAIN / 2;

/// Shared body of the gradient accumulations: overwrite `out` with the
/// raw weighted sum `Σ γ_z ∇F(w, z)` over `batch` (no normalization, no
/// L2), chunked by [`GRAD_CHUNK`] once the batch reaches [`PAR_GRAIN`].
/// Below the grain a single [`crate::Model::grad_block`] call runs; the
/// dispatching entry points fan the *same* chunks out over the thread
/// pool and combine them in the same order.
fn grad_weighted_sum_serial<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    batch: &[usize],
    gamma: f64,
    w: &[f64],
    out: &mut [f64],
) {
    let mut ws = Workspace::new();
    if batch.len() >= PAR_GRAIN {
        out.fill(0.0);
        let mut part = vec![0.0; model.num_params()];
        for chunk in batch.chunks(GRAD_CHUNK) {
            model.grad_block(w, data, chunk, gamma, &mut part, &mut ws);
            vector::axpy(1.0, &part, out);
        }
    } else {
        model.grad_block(w, data, batch, gamma, out, &mut ws);
    }
}

/// Parallel twin of [`grad_weighted_sum_serial`]: the same
/// [`GRAD_CHUNK`] partitioning fanned out with one task per chunk,
/// partial sums combined in chunk order — bit-identical to the serial
/// path by construction. Callers gate on batch size *and* pool size;
/// the gate cannot change results, only which code computes them.
#[cfg(feature = "parallel")]
fn grad_weighted_sum_parallel<M: Model + ?Sized>(
    model: &M,
    data: &dyn DatasetStore,
    batch: &[usize],
    gamma: f64,
    w: &[f64],
    out: &mut [f64],
) {
    use rayon::prelude::*;
    let m = model.num_params();
    let nchunks = batch.len().div_ceil(GRAD_CHUNK);
    let parts: Vec<Vec<f64>> = (0..nchunks)
        .into_par_iter()
        .map_init(Workspace::new, |ws, ci| {
            let lo = ci * GRAD_CHUNK;
            let hi = (lo + GRAD_CHUNK).min(batch.len());
            let mut part = vec![0.0; m];
            model.grad_block(w, data, &batch[lo..hi], gamma, &mut part, ws);
            part
        })
        .collect();
    out.fill(0.0);
    for part in &parts {
        vector::axpy(1.0, part, out);
    }
}

/// Samples per task when the parallel Hessian path splits a batch into
/// [`crate::Model::hvp_block`] calls. Half of [`PAR_GRAIN`] so a batch
/// right at the parallel threshold still yields more than one task.
#[cfg(feature = "parallel")]
const HVP_CHUNK: usize = PAR_GRAIN / 2;

/// Weighted, L2-regularized empirical risk (paper Eq. 1).
#[derive(Debug, Clone, Copy)]
pub struct WeightedObjective {
    /// Weight `γ` on uncleaned training samples.
    pub gamma: f64,
    /// L2 regularization strength `λ` (the strong-convexity constant μ).
    pub l2: f64,
}

impl WeightedObjective {
    /// Create an objective description.
    ///
    /// # Panics
    /// Panics unless `0 ≤ γ ≤ 1` and `λ ≥ 0`.
    pub fn new(gamma: f64, l2: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        assert!(l2 >= 0.0, "l2 must be non-negative");
        Self { gamma, l2 }
    }

    /// Full-dataset objective value `F(w)`.
    pub fn loss<M: Model + ?Sized>(&self, model: &M, data: &dyn DatasetStore, w: &[f64]) -> f64 {
        let idx: Vec<usize> = (0..data.len()).collect();
        self.batch_loss(model, data, &idx, w)
    }

    /// Weighted mean loss over the index set plus the L2 term.
    pub fn batch_loss<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        batch: &[usize],
        w: &[f64],
    ) -> f64 {
        if batch.is_empty() {
            return 0.5 * self.l2 * vector::norm2_sq(w);
        }
        let mut sum = 0.0;
        for &i in batch {
            sum += data.weight(i, self.gamma) * model.loss(w, data.feature(i), data.label(i));
        }
        sum / batch.len() as f64 + 0.5 * self.l2 * vector::norm2_sq(w)
    }

    /// Full-dataset gradient `∇F(w)` into `out` (overwrites).
    pub fn grad<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        w: &[f64],
        out: &mut [f64],
    ) {
        let idx: Vec<usize> = (0..data.len()).collect();
        self.batch_grad(model, data, &idx, w, out);
    }

    /// Minibatch gradient
    /// `∇F(w, B) = (1/|B|) Σ_{z∈B} γ_z ∇F(w, z) + λw` into `out`.
    ///
    /// Runs the model's batched [`Model::grad_block`] kernel
    /// (closed-form GEMM panels for logistic regression, a per-sample
    /// fallback otherwise). With the `parallel` feature (default) and a
    /// thread pool larger than one worker, batches of at least
    /// [`PAR_GRAIN`] samples fan `GRAD_CHUNK`-sized tasks out across
    /// the pool; the serial and parallel paths share the same chunk
    /// partitioning and combination order, so dispatch is bit-identical
    /// to [`Self::batch_grad_serial`] at every size (which is what makes
    /// the pool-size gate safe: it can only change *which code* computes
    /// the result).
    pub fn batch_grad<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        batch: &[usize],
        w: &[f64],
        out: &mut [f64],
    ) {
        #[cfg(feature = "parallel")]
        if batch.len() >= PAR_GRAIN && rayon::current_num_threads() > 1 {
            grad_weighted_sum_parallel(model, data, batch, self.gamma, w, out);
            vector::scale(1.0 / batch.len() as f64, out);
            vector::axpy(self.l2, w, out);
            return;
        }
        self.batch_grad_serial(model, data, batch, w, out)
    }

    /// Single-threaded [`Self::batch_grad`]. Always compiled; the public
    /// entry point falls back to it below the parallel grain size (and
    /// on single-worker pools, where fan-out overhead buys nothing).
    pub fn batch_grad_serial<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        batch: &[usize],
        w: &[f64],
        out: &mut [f64],
    ) {
        grad_weighted_sum_serial(model, data, batch, self.gamma, w, out);
        if !batch.is_empty() {
            vector::scale(1.0 / batch.len() as f64, out);
        }
        vector::axpy(self.l2, w, out);
    }

    /// Full-dataset Hessian-vector product
    /// `H(w) v = (1/N) Σ γ_z H(w, z) v + λ v` into `out`.
    ///
    /// Runs the model's batched [`Model::hvp_block`] kernel (closed-form
    /// GEMM blocks for logistic regression, a per-sample fallback
    /// otherwise), parallelized above [`PAR_GRAIN`] samples.
    pub fn hvp<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        w: &[f64],
        v: &[f64],
        out: &mut [f64],
    ) {
        let idx: Vec<usize> = (0..data.len()).collect();
        self.batch_hvp(model, data, &idx, w, v, out)
    }

    /// Single-threaded [`Self::hvp`]. Always compiled; the public entry
    /// point falls back to it below the parallel grain size.
    pub fn hvp_serial<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        w: &[f64],
        v: &[f64],
        out: &mut [f64],
    ) {
        let idx: Vec<usize> = (0..data.len()).collect();
        self.batch_hvp_serial(model, data, &idx, w, v, out)
    }

    /// [`Self::hvp`] restricted to an index subset (the subsampled-Hessian
    /// estimator of Koh & Liang): `(1/|batch|) Σ_{i∈batch} γ_z H(w, z_i) v
    /// + λ v` into `out`.
    ///
    /// Above [`PAR_GRAIN`] samples the batch splits into `HVP_CHUNK`
    /// tasks, each a blocked [`Model::hvp_block`] call, combined with
    /// the same chunk-ordered deterministic reduction as
    /// [`Self::batch_grad`] — and, like it, only on a pool with more
    /// than one worker (the fan-out's partial-sum allocations are pure
    /// overhead at one worker).
    pub fn batch_hvp<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        batch: &[usize],
        w: &[f64],
        v: &[f64],
        out: &mut [f64],
    ) {
        #[cfg(feature = "parallel")]
        if batch.len() >= PAR_GRAIN && rayon::current_num_threads() > 1 {
            use rayon::prelude::*;
            let m = model.num_params();
            let nchunks = batch.len().div_ceil(HVP_CHUNK);
            // map_init rather than fold: each task returns its partial sum
            // and keeps only a per-worker-chunk Workspace as state. (A
            // fold threading a (acc, scratch, workspace) tuple through
            // every step costs ~2x here — the moved accumulator defeats
            // the optimizer — and buys nothing, since partial sums are
            // combined in chunk order either way.)
            let parts: Vec<Vec<f64>> = (0..nchunks)
                .into_par_iter()
                .map_init(Workspace::new, |ws, ci| {
                    let lo = ci * HVP_CHUNK;
                    let hi = (lo + HVP_CHUNK).min(batch.len());
                    let mut part = vec![0.0; m];
                    model.hvp_block(w, data, &batch[lo..hi], self.gamma, v, &mut part, ws);
                    part
                })
                .collect();
            out.fill(0.0);
            for part in &parts {
                vector::axpy(1.0, part, out);
            }
            vector::scale(1.0 / batch.len() as f64, out);
            vector::axpy(self.l2, v, out);
            return;
        }
        self.batch_hvp_serial(model, data, batch, w, v, out)
    }

    /// Single-threaded [`Self::batch_hvp`]. Always compiled; the public
    /// entry point falls back to it below the parallel grain size.
    pub fn batch_hvp_serial<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        batch: &[usize],
        w: &[f64],
        v: &[f64],
        out: &mut [f64],
    ) {
        let mut ws = Workspace::new();
        model.hvp_block(w, data, batch, self.gamma, v, out, &mut ws);
        if !batch.is_empty() {
            vector::scale(1.0 / batch.len() as f64, out);
        }
        vector::axpy(self.l2, v, out);
    }

    /// Unweighted, unregularized mean cross-entropy over a validation set
    /// — the `F(w, Z_val)` the influence functions differentiate.
    pub fn val_loss<M: Model + ?Sized>(&self, model: &M, val: &dyn DatasetStore, w: &[f64]) -> f64 {
        assert!(!val.is_empty(), "val_loss: empty validation set");
        let mut sum = 0.0;
        for i in 0..val.len() {
            sum += model.loss(w, val.feature(i), val.label(i));
        }
        sum / val.len() as f64
    }

    /// Gradient of [`Self::val_loss`]: `∇_w F(w, Z_val)` into `out`.
    ///
    /// Runs [`Model::grad_block`] with an explicit `γ = 1` (validation
    /// samples are never down-weighted, so the objective's own `γ` and
    /// `λ` are irrelevant here — any two objectives produce bitwise
    /// equal validation gradients). Parallelized above [`PAR_GRAIN`]
    /// samples like [`Self::batch_grad`], with the same bit-identical
    /// serial/parallel guarantee.
    pub fn val_grad<M: Model + ?Sized>(
        &self,
        model: &M,
        val: &dyn DatasetStore,
        w: &[f64],
        out: &mut [f64],
    ) {
        #[cfg(feature = "parallel")]
        if val.len() >= PAR_GRAIN && rayon::current_num_threads() > 1 {
            assert!(!val.is_empty(), "val_grad: empty validation set");
            let batch: Vec<usize> = (0..val.len()).collect();
            grad_weighted_sum_parallel(model, val, &batch, 1.0, w, out);
            vector::scale(1.0 / val.len() as f64, out);
            return;
        }
        self.val_grad_serial(model, val, w, out)
    }

    /// Single-threaded [`Self::val_grad`]. Always compiled; the public
    /// entry point falls back to it below the parallel grain size (and
    /// on single-worker pools).
    pub fn val_grad_serial<M: Model + ?Sized>(
        &self,
        model: &M,
        val: &dyn DatasetStore,
        w: &[f64],
        out: &mut [f64],
    ) {
        assert!(!val.is_empty(), "val_grad: empty validation set");
        let batch: Vec<usize> = (0..val.len()).collect();
        grad_weighted_sum_serial(model, val, &batch, 1.0, w, out);
        vector::scale(1.0 / val.len() as f64, out);
    }

    /// Loss of a single *hypothetical* sample: feature of index `i` but an
    /// arbitrary label (used when scoring candidate cleaned labels).
    pub fn sample_loss_with_label<M: Model + ?Sized>(
        &self,
        model: &M,
        data: &dyn DatasetStore,
        i: usize,
        label: &SoftLabel,
        w: &[f64],
    ) -> f64 {
        model.loss(w, data.feature(i), label)
    }

    /// The training-set Hessian as a [`LinearOperator`] for the CG solver.
    pub fn hessian_operator<'a, M: Model + ?Sized>(
        &self,
        model: &'a M,
        data: &'a dyn DatasetStore,
        w: &'a [f64],
    ) -> HessianOperator<'a, M> {
        HessianOperator {
            objective: *self,
            model,
            data,
            w,
            batch: None,
            applies: std::cell::Cell::new(0),
        }
    }

    /// [`Self::hessian_operator`] over a subsampled index set — the
    /// stochastic Hessian estimator that keeps the conjugate-gradient
    /// solve cheap on large training sets.
    pub fn hessian_operator_on<'a, M: Model + ?Sized>(
        &self,
        model: &'a M,
        data: &'a dyn DatasetStore,
        w: &'a [f64],
        batch: Vec<usize>,
    ) -> HessianOperator<'a, M> {
        HessianOperator {
            objective: *self,
            model,
            data,
            w,
            batch: Some(batch),
            applies: std::cell::Cell::new(0),
        }
    }
}

/// `v ↦ H(w) v` for the weighted objective, fed to conjugate gradients to
/// form `H⁻¹(w) ∇F(w, Z_val)` without materializing `H` (§4.1.1).
pub struct HessianOperator<'a, M: Model + ?Sized> {
    objective: WeightedObjective,
    model: &'a M,
    data: &'a dyn DatasetStore,
    w: &'a [f64],
    batch: Option<Vec<usize>>,
    /// Hessian-vector products applied so far (telemetry: the CG solve's
    /// dominant cost, reported as `hvp_evals` in telemetry.v1).
    applies: std::cell::Cell<usize>,
}

impl<M: Model + ?Sized> HessianOperator<'_, M> {
    /// Number of times [`LinearOperator::apply`] ran on this operator.
    pub fn applies(&self) -> usize {
        self.applies.get()
    }
}

impl<M: Model + ?Sized> LinearOperator for HessianOperator<'_, M> {
    fn dim(&self) -> usize {
        self.model.num_params()
    }

    fn apply(&self, v: &[f64], out: &mut [f64]) {
        self.applies.set(self.applies.get() + 1);
        match &self.batch {
            Some(batch) => self
                .objective
                .batch_hvp(self.model, self.data, batch, self.w, v, out),
            None => self.objective.hvp(self.model, self.data, self.w, v, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::logreg::LogisticRegression;
    use chef_linalg::Matrix;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn toy_data(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut raw = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        let mut clean = Vec::with_capacity(n);
        for i in 0..n {
            for _ in 0..dim {
                raw.push(rng.gen_range(-1.0..1.0));
            }
            let p = rng.gen_range(0.05..0.95);
            labels.push(SoftLabel::new(vec![p, 1.0 - p]));
            clean.push(i % 3 == 0);
        }
        Dataset::new(
            Matrix::from_vec(n, dim, raw),
            labels,
            clean,
            vec![None; n],
            2,
        )
    }

    #[test]
    fn full_grad_matches_finite_differences() {
        let data = toy_data(12, 3, 1);
        let model = LogisticRegression::new(3, 2);
        let obj = WeightedObjective::new(0.8, 0.05);
        let mut rng = SmallRng::seed_from_u64(2);
        let w: Vec<f64> = (0..model.num_params())
            .map(|_| rng.gen_range(-0.5..0.5))
            .collect();
        let mut g = vec![0.0; model.num_params()];
        obj.grad(&model, &data, &w, &mut g);
        let eps = 1e-6;
        let mut wbuf = w.clone();
        for i in 0..w.len() {
            wbuf[i] = w[i] + eps;
            let lp = obj.loss(&model, &data, &wbuf);
            wbuf[i] = w[i] - eps;
            let lm = obj.loss(&model, &data, &wbuf);
            wbuf[i] = w[i];
            assert!(((lp - lm) / (2.0 * eps) - g[i]).abs() < 1e-6, "coord {i}");
        }
    }

    #[test]
    fn hvp_matches_fd_of_grad() {
        let data = toy_data(10, 2, 3);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.7, 0.1);
        let mut rng = SmallRng::seed_from_u64(4);
        let w: Vec<f64> = (0..model.num_params())
            .map(|_| rng.gen_range(-0.5..0.5))
            .collect();
        let v: Vec<f64> = (0..model.num_params())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let mut hv = vec![0.0; model.num_params()];
        obj.hvp(&model, &data, &w, &v, &mut hv);
        let eps = 1e-6;
        let wp: Vec<f64> = w.iter().zip(&v).map(|(a, b)| a + eps * b).collect();
        let wm: Vec<f64> = w.iter().zip(&v).map(|(a, b)| a - eps * b).collect();
        let mut gp = vec![0.0; model.num_params()];
        let mut gm = vec![0.0; model.num_params()];
        obj.grad(&model, &data, &wp, &mut gp);
        obj.grad(&model, &data, &wm, &mut gm);
        for i in 0..w.len() {
            let fd = (gp[i] - gm[i]) / (2.0 * eps);
            assert!((fd - hv[i]).abs() < 1e-5, "coord {i}: {fd} vs {}", hv[i]);
        }
    }

    #[test]
    fn hessian_operator_is_strongly_convex() {
        // vᵀHv ≥ λ‖v‖² must hold for every v when the model's CE Hessian
        // is PSD.
        let data = toy_data(8, 3, 5);
        let model = LogisticRegression::new(3, 2);
        let l2 = 0.05;
        let obj = WeightedObjective::new(0.8, l2);
        let w = model.init_params();
        let op = obj.hessian_operator(&model, &data, &w);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..10 {
            let v: Vec<f64> = (0..model.num_params())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            let mut hv = vec![0.0; model.num_params()];
            op.apply(&v, &mut hv);
            let quad = vector::dot(&v, &hv);
            assert!(quad >= l2 * vector::norm2_sq(&v) - 1e-10);
        }
    }

    #[test]
    fn gamma_weights_uncleaned_samples() {
        // With γ = 0 the uncleaned samples must not contribute.
        let mut data = toy_data(6, 2, 7);
        let model = LogisticRegression::new(2, 2);
        let w = vec![0.3; model.num_params()];
        let obj0 = WeightedObjective::new(0.0, 0.0);
        let clean_only: Vec<usize> = (0..data.len()).filter(|&i| data.is_clean(i)).collect();
        let loss_clean_only: f64 = clean_only
            .iter()
            .map(|&i| model.loss(&w, data.feature(i), data.label(i)))
            .sum::<f64>()
            / data.len() as f64;
        assert!((obj0.loss(&model, &data, &w) - loss_clean_only).abs() < 1e-12);

        // Cleaning a sample moves its weight from γ to 1.
        let obj = WeightedObjective::new(0.5, 0.0);
        let before = obj.loss(&model, &data, &w);
        let uncleaned = data.uncleaned_indices()[0];
        let keep_label = data.label(uncleaned).clone();
        data.clean_label(uncleaned, keep_label.rounded());
        let after = obj.loss(&model, &data, &w);
        // Weight went up; with the rounded label the contribution changed.
        assert_ne!(before, after);
        let _ = keep_label;
    }

    #[test]
    fn empty_batch_is_pure_regularization() {
        let data = toy_data(4, 2, 8);
        let model = LogisticRegression::new(2, 2);
        let obj = WeightedObjective::new(0.8, 0.2);
        let w = vec![1.0; model.num_params()];
        assert!((obj.batch_loss(&model, &data, &[], &w) - 0.1 * w.len() as f64).abs() < 1e-12);
        let mut g = vec![0.0; model.num_params()];
        obj.batch_grad(&model, &data, &[], &w, &mut g);
        for gi in &g {
            assert!((gi - 0.2).abs() < 1e-12);
        }
    }

    /// The chunk-ordered parallel reduction may associate the sum
    /// differently than the flat serial loop, so equality is up to
    /// floating-point drift far below anything the selector can resolve.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_accumulation_matches_serial() {
        let n = PAR_GRAIN * 2 + 17;
        let data = toy_data(n, 4, 11);
        let model = LogisticRegression::new(4, 2);
        let obj = WeightedObjective::new(0.7, 0.03);
        let m = model.num_params();
        let mut rng = SmallRng::seed_from_u64(12);
        let w: Vec<f64> = (0..m).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let v: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let batch: Vec<usize> = (0..n).collect();
        let close = |a: &[f64], b: &[f64], what: &str| {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-10, "{what}: {x} vs {y}");
            }
        };
        let (mut pa, mut se) = (vec![0.0; m], vec![0.0; m]);
        obj.batch_grad(&model, &data, &batch, &w, &mut pa);
        obj.batch_grad_serial(&model, &data, &batch, &w, &mut se);
        close(&pa, &se, "batch_grad");
        obj.hvp(&model, &data, &w, &v, &mut pa);
        obj.hvp_serial(&model, &data, &w, &v, &mut se);
        close(&pa, &se, "hvp");
        obj.batch_hvp(&model, &data, &batch, &w, &v, &mut pa);
        obj.batch_hvp_serial(&model, &data, &batch, &w, &v, &mut se);
        close(&pa, &se, "batch_hvp");
        obj.val_grad(&model, &data, &w, &mut pa);
        obj.val_grad_serial(&model, &data, &w, &mut se);
        close(&pa, &se, "val_grad");
    }

    /// Unlike the HVP reduction, the gradient paths share one chunk
    /// partitioning between serial and parallel dispatch, so equality is
    /// exact — at, below, and above the parallel grain.
    #[cfg(feature = "parallel")]
    #[test]
    fn batch_grad_dispatch_is_bit_identical_to_serial() {
        let model = LogisticRegression::new(3, 2);
        let obj = WeightedObjective::new(0.6, 0.02);
        let m = model.num_params();
        let mut rng = SmallRng::seed_from_u64(21);
        let w: Vec<f64> = (0..m).map(|_| rng.gen_range(-0.5..0.5)).collect();
        for n in [PAR_GRAIN - 1, PAR_GRAIN, PAR_GRAIN * 2 + 17] {
            let data = toy_data(n, 3, n as u64);
            let batch: Vec<usize> = (0..n).collect();
            let (mut pa, mut se) = (vec![0.0; m], vec![0.0; m]);
            obj.batch_grad(&model, &data, &batch, &w, &mut pa);
            obj.batch_grad_serial(&model, &data, &batch, &w, &mut se);
            assert_eq!(pa, se, "batch_grad at n={n}");
            obj.val_grad(&model, &data, &w, &mut pa);
            obj.val_grad_serial(&model, &data, &w, &mut se);
            assert_eq!(pa, se, "val_grad at n={n}");
        }
    }

    #[test]
    fn val_loss_and_grad_ignore_weights() {
        let data = toy_data(5, 2, 9);
        let model = LogisticRegression::new(2, 2);
        let w = vec![0.1; model.num_params()];
        let a = WeightedObjective::new(0.1, 0.5);
        let b = WeightedObjective::new(1.0, 0.0);
        assert_eq!(a.val_loss(&model, &data, &w), b.val_loss(&model, &data, &w));
        let mut ga = vec![0.0; model.num_params()];
        let mut gb = vec![0.0; model.num_params()];
        a.val_grad(&model, &data, &w, &mut ga);
        b.val_grad(&model, &data, &w, &mut gb);
        assert_eq!(ga, gb);
    }
}
