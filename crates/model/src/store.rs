//! The [`DatasetStore`] trait: the access surface every cleaning-loop
//! layer consumes, abstracted over *where the features live*.
//!
//! [`Dataset`] keeps everything in one in-memory matrix; the
//! `chef-data` mmap columnar store keeps features in fixed-width
//! on-disk shards. Both expose the same surface:
//!
//! * **Zero-copy blocks** — [`DatasetStore::feature_rows`] returns a
//!   contiguous row-major slice so the GEMM kernels of `score_block` /
//!   `grad_block` / `hvp_block` consume either store unchanged. A
//!   sharded store cannot splice two shards into one slice, so callers
//!   requesting blocks must stay within [`DatasetStore::contiguous_limit`];
//!   the block kernels' gather fallback covers arbitrary index sets.
//! * **Patch semantics** — labels, clean flags and ground truth are
//!   small (O(n·C)) and always RAM-resident; [`DatasetStore::clean_label`]
//!   and [`DatasetStore::set_label`] mutate them in place exactly like
//!   [`Dataset`], so `checkpoint.v1` label-patch replay works against
//!   any store.
//! * **Residency hints** — [`DatasetStore::prefetch_rows`] and
//!   [`DatasetStore::advise_scanned`] are no-ops in memory and
//!   `madvise` calls on the mmap store, letting streaming passes
//!   (DeltaGrad-L minibatch replay, per-shard scoring sweeps) bound
//!   their resident set.
//!
//! Every former `&Dataset` parameter in the kernels, objective,
//! influence functions, trainer and pipeline is now `&dyn DatasetStore`
//! — existing call sites coerce without edits, and the trait stays
//! object-safe so [`crate::Model`] and the selector trait remain
//! object-safe too.
//!
//! # Examples
//!
//! ```
//! use chef_model::{Dataset, DatasetStore, SoftLabel};
//! use chef_linalg::Matrix;
//!
//! let mut data = Dataset::new(
//!     Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
//!     (0..3).map(|_| SoftLabel::uniform(2)).collect(),
//!     vec![false; 3],
//!     vec![Some(0), Some(1), Some(0)],
//!     2,
//! );
//! // Any `&Dataset` is a `&dyn DatasetStore`:
//! let store: &dyn DatasetStore = &data;
//! assert_eq!(store.len(), 3);
//! assert_eq!(store.feature_rows(1, 3), &[3.0, 4.0, 5.0, 6.0]);
//! assert_eq!(store.contiguous_limit(0), 3); // fully in memory
//! assert_eq!(store.shard_boundaries(), vec![0, 3]);
//!
//! // Label patches flow through the same trait surface:
//! data.clean_label(1, SoftLabel::onehot(1, 2));
//! assert_eq!(data.uncleaned_indices(), vec![0, 2]);
//! ```

use crate::dataset::Dataset;
use crate::label::SoftLabel;

/// Cumulative I/O-side counters a [`DatasetStore`] may expose through
/// [`DatasetStore::io_stats`]: how much work integrity verification and
/// background prefetch did over the store's lifetime. The cleaning
/// pipeline folds these into the `store.*` telemetry counters at the end
/// of a run. Plain data (no `chef-obs` dependency) so any store
/// implementation can report without pulling in the telemetry machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreIoStats {
    /// Total milliseconds spent checksum-verifying shard bytes (eager
    /// open streaming plus lazy first-touch checks plus background
    /// prefetch verification).
    pub verify_ms: u64,
    /// Integrity units actually checksummed: whole shards under eager
    /// verification, individual blocks under lazy first-touch.
    pub blocks_verified: u64,
    /// Access-path verification lookups satisfied by the first-touch
    /// bitmap (the block was already verified) — evidence each block is
    /// checked exactly once, not once per read.
    pub lazy_verify_hits: u64,
    /// Milliseconds the background prefetch worker spent verifying and
    /// warming upcoming windows — work overlapped with foreground
    /// compute rather than serialized into the scan.
    pub prefetch_overlap_ms: u64,
}

/// Storage-agnostic access to a training set: the exact surface the
/// influence kernels, weighted objective, trainer and cleaning loop
/// consume. See the [module docs](self) for the contract.
pub trait DatasetStore: Send + Sync {
    /// Number of samples.
    fn len(&self) -> usize;

    /// Whether the store has no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimension (before the implicit bias column models add).
    fn dim(&self) -> usize;

    /// Number of classes.
    fn num_classes(&self) -> usize;

    /// Feature row of sample `i` as a borrowed slice (zero-copy for
    /// both the in-memory matrix and an mmap'd shard).
    fn feature(&self, i: usize) -> &[f64];

    /// The feature rows `lo..hi` as one contiguous row-major slice
    /// (`(hi − lo) × dim`), zero-copy. Batched kernels use this to feed
    /// consecutive sample blocks straight into a GEMM.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, `hi > len()`, or the range crosses a
    /// storage boundary (`hi > contiguous_limit(lo)`). Callers that
    /// split work by [`Self::shard_boundaries`] or check
    /// [`Self::contiguous_limit`] never hit the latter.
    fn feature_rows(&self, lo: usize, hi: usize) -> &[f64];

    /// The largest `hi` for which `feature_rows(lo, hi)` is guaranteed
    /// to succeed: the end of the contiguous storage unit containing
    /// `lo`. `len()` for in-memory stores; the end of the chunk holding
    /// `lo` for sharded ones.
    fn contiguous_limit(&self, lo: usize) -> usize {
        let _ = lo;
        self.len()
    }

    /// Cut points of the store's contiguous units, as a sorted list
    /// `[0, b₁, …, len]`. In-memory stores are one unit (`[0, len]`);
    /// sharded stores return one entry per chunk boundary. Sharded
    /// scoring passes iterate these so every `feature_rows` call stays
    /// within one unit.
    fn shard_boundaries(&self) -> Vec<usize> {
        vec![0, self.len()]
    }

    /// Label of sample `i`.
    fn label(&self, i: usize) -> &SoftLabel;

    /// Whether sample `i` is clean (deterministic label, weight 1).
    fn is_clean(&self, i: usize) -> bool;

    /// Per-sample weight `γ_z` from Eq. 1: 1 for clean samples, `gamma`
    /// for uncleaned ones.
    fn weight(&self, i: usize, gamma: f64) -> f64 {
        if self.is_clean(i) {
            1.0
        } else {
            gamma
        }
    }

    /// Ground-truth class of sample `i` (simulation only).
    fn ground_truth(&self, i: usize) -> Option<usize>;

    /// Replace the label of sample `i` and mark it clean (the "delete
    /// probabilistic + insert cleaned" update of §4.2).
    fn clean_label(&mut self, i: usize, label: SoftLabel);

    /// Replace the label of sample `i` *without* marking it clean (the
    /// Fact/Twitter "ambiguous aggregate" rule, Appendix F.1).
    fn set_label(&mut self, i: usize, label: SoftLabel);

    /// Mark sample `i` as uncleaned (weight γ).
    fn mark_uncleaned(&mut self, i: usize);

    /// Indices of all currently uncleaned samples (the `Z_p` part).
    fn uncleaned_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.is_clean(i)).collect()
    }

    /// Number of clean samples.
    fn num_clean(&self) -> usize {
        (0..self.len()).filter(|&i| self.is_clean(i)).count()
    }

    /// Hint that `rows` will be read soon. Streaming consumers (the
    /// SGD/DeltaGrad-L minibatch loops) call this one batch ahead; the
    /// mmap store turns it into `madvise(WILLNEED)` readahead and, when
    /// a residency budget is set, releases the chunks that fall out of
    /// the prefetch window. No-op in memory.
    fn prefetch_rows(&self, rows: &[usize]) {
        let _ = rows;
    }

    /// Hint that a sequential scan over rows `lo..hi` is about to start
    /// (`madvise(WILLNEED)` readahead for the covered chunks in the
    /// mmap store). No-op in memory.
    fn advise_range(&self, lo: usize, hi: usize) {
        let _ = (lo, hi);
    }

    /// Hint that the sequential scan over `lo..hi` is finished and the
    /// range will not be re-read soon; the mmap store drops the
    /// residency of the covered chunks (`madvise(DONTNEED)`). No-op in
    /// memory.
    fn advise_scanned(&self, lo: usize, hi: usize) {
        let _ = (lo, hi);
    }

    /// Hint that rows `lo..hi` will be scanned *after* the caller's
    /// current work — the asynchronous sibling of [`Self::advise_range`].
    /// Sharded selector passes call this for shard `s+1` while scoring
    /// shard `s`; a store with a background prefetch worker verifies and
    /// warms the window concurrently, overlapping I/O + checksum work
    /// with compute. Purely a performance hint: implementations must not
    /// change any visible data, so results stay bit-identical with the
    /// hint ignored (the in-memory and serial stores ignore it).
    fn prefetch_upcoming(&self, lo: usize, hi: usize) {
        let _ = (lo, hi);
    }

    /// Cumulative I/O-side counters ([`StoreIoStats`]) for stores that
    /// track integrity/prefetch work; `None` (the default) for stores
    /// with nothing to report. The pipeline records the totals as
    /// `store.*` telemetry counters when a run finishes.
    fn io_stats(&self) -> Option<StoreIoStats> {
        None
    }

    /// Materialize the store as an in-memory [`Dataset`] (features are
    /// copied). Intended for baselines and tests that need an owned,
    /// mutable snapshot — O(n·d), so not for hot paths.
    fn to_dataset(&self) -> Dataset {
        let n = self.len();
        let mut raw = Vec::with_capacity(n * self.dim());
        let mut labels = Vec::with_capacity(n);
        let mut clean = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for i in 0..n {
            raw.extend_from_slice(self.feature(i));
            labels.push(self.label(i).clone());
            clean.push(self.is_clean(i));
            truth.push(self.ground_truth(i));
        }
        Dataset::new(
            chef_linalg::Matrix::from_vec(n, self.dim(), raw),
            labels,
            clean,
            truth,
            self.num_classes(),
        )
    }
}

impl DatasetStore for Dataset {
    #[inline]
    fn len(&self) -> usize {
        Dataset::len(self)
    }

    #[inline]
    fn dim(&self) -> usize {
        Dataset::dim(self)
    }

    #[inline]
    fn num_classes(&self) -> usize {
        Dataset::num_classes(self)
    }

    #[inline]
    fn feature(&self, i: usize) -> &[f64] {
        Dataset::feature(self, i)
    }

    #[inline]
    fn feature_rows(&self, lo: usize, hi: usize) -> &[f64] {
        Dataset::feature_rows(self, lo, hi)
    }

    #[inline]
    fn label(&self, i: usize) -> &SoftLabel {
        Dataset::label(self, i)
    }

    #[inline]
    fn is_clean(&self, i: usize) -> bool {
        Dataset::is_clean(self, i)
    }

    #[inline]
    fn ground_truth(&self, i: usize) -> Option<usize> {
        Dataset::ground_truth(self, i)
    }

    fn clean_label(&mut self, i: usize, label: SoftLabel) {
        Dataset::clean_label(self, i, label);
    }

    fn set_label(&mut self, i: usize, label: SoftLabel) {
        Dataset::set_label(self, i, label);
    }

    fn mark_uncleaned(&mut self, i: usize) {
        Dataset::mark_uncleaned(self, i);
    }

    fn uncleaned_indices(&self) -> Vec<usize> {
        Dataset::uncleaned_indices(self)
    }

    fn num_clean(&self) -> usize {
        Dataset::num_clean(self)
    }

    fn to_dataset(&self) -> Dataset {
        self.clone()
    }
}

/// A read-only view of a base store with a sparse set of label/flag
/// patches layered on top.
///
/// The cleaning loop needs "the dataset as it was before this round's
/// annotations" to drive DeltaGrad-L's delete+insert corrections
/// (constructor `old_data`). Cloning the whole store per round is
/// impossible for an on-disk store and wasteful for an in-memory one;
/// an overlay that remembers the handful of pre-annotation labels is
/// equivalent everywhere the constructor looks — features come straight
/// from the base, labels/flags from the patch set where present.
///
/// Mutating methods panic: the overlay is a snapshot, not a store.
///
/// # Examples
///
/// ```
/// use chef_model::{Dataset, DatasetStore, LabelOverlay, SoftLabel};
/// use chef_linalg::Matrix;
///
/// let mut data = Dataset::new(
///     Matrix::from_vec(2, 1, vec![1.0, 2.0]),
///     vec![SoftLabel::uniform(2), SoftLabel::uniform(2)],
///     vec![false, false],
///     vec![Some(0), Some(1)],
///     2,
/// );
/// // Snapshot sample 1's pre-cleaning state, then clean it.
/// let mut overlay = LabelOverlay::new();
/// overlay.insert(1, data.label(1).clone(), data.is_clean(1));
/// data.clean_label(1, SoftLabel::onehot(1, 2));
///
/// let old = overlay.over(&data);
/// assert!(!old.is_clean(1)); // the overlay still sees the old state
/// assert_eq!(old.label(1), &SoftLabel::uniform(2));
/// assert_eq!(old.feature(1), &[2.0]); // features pass through
/// ```
#[derive(Debug, Clone, Default)]
pub struct LabelOverlay {
    patches: std::collections::HashMap<usize, (SoftLabel, bool)>,
}

impl LabelOverlay {
    /// Empty overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that sample `i` had `label` and clean-flag `clean` at
    /// snapshot time. Later inserts for the same index overwrite.
    pub fn insert(&mut self, i: usize, label: SoftLabel, clean: bool) {
        self.patches.insert(i, (label, clean));
    }

    /// Number of patched samples.
    pub fn len(&self) -> usize {
        self.patches.len()
    }

    /// Whether the overlay patches nothing.
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty()
    }

    /// View `base` through this overlay.
    pub fn over<'a>(&'a self, base: &'a dyn DatasetStore) -> OverlayView<'a> {
        OverlayView {
            base,
            overlay: self,
        }
    }
}

/// The [`DatasetStore`] view produced by [`LabelOverlay::over`].
pub struct OverlayView<'a> {
    base: &'a dyn DatasetStore,
    overlay: &'a LabelOverlay,
}

impl DatasetStore for OverlayView<'_> {
    fn len(&self) -> usize {
        self.base.len()
    }

    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn num_classes(&self) -> usize {
        self.base.num_classes()
    }

    fn feature(&self, i: usize) -> &[f64] {
        self.base.feature(i)
    }

    fn feature_rows(&self, lo: usize, hi: usize) -> &[f64] {
        self.base.feature_rows(lo, hi)
    }

    fn contiguous_limit(&self, lo: usize) -> usize {
        self.base.contiguous_limit(lo)
    }

    fn shard_boundaries(&self) -> Vec<usize> {
        self.base.shard_boundaries()
    }

    fn label(&self, i: usize) -> &SoftLabel {
        match self.overlay.patches.get(&i) {
            Some((label, _)) => label,
            None => self.base.label(i),
        }
    }

    fn is_clean(&self, i: usize) -> bool {
        match self.overlay.patches.get(&i) {
            Some(&(_, clean)) => clean,
            None => self.base.is_clean(i),
        }
    }

    fn ground_truth(&self, i: usize) -> Option<usize> {
        self.base.ground_truth(i)
    }

    fn clean_label(&mut self, _i: usize, _label: SoftLabel) {
        panic!("LabelOverlay views are read-only");
    }

    fn set_label(&mut self, _i: usize, _label: SoftLabel) {
        panic!("LabelOverlay views are read-only");
    }

    fn mark_uncleaned(&mut self, _i: usize) {
        panic!("LabelOverlay views are read-only");
    }

    fn prefetch_rows(&self, rows: &[usize]) {
        self.base.prefetch_rows(rows);
    }

    fn advise_range(&self, lo: usize, hi: usize) {
        self.base.advise_range(lo, hi);
    }

    fn advise_scanned(&self, lo: usize, hi: usize) {
        self.base.advise_scanned(lo, hi);
    }

    fn prefetch_upcoming(&self, lo: usize, hi: usize) {
        self.base.prefetch_upcoming(lo, hi);
    }

    fn io_stats(&self) -> Option<StoreIoStats> {
        self.base.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_linalg::Matrix;

    fn toy() -> Dataset {
        Dataset::new(
            Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]),
            vec![
                SoftLabel::onehot(0, 2),
                SoftLabel::new(vec![0.4, 0.6]),
                SoftLabel::new(vec![0.2, 0.8]),
            ],
            vec![true, false, false],
            vec![Some(0), Some(1), Some(0)],
            2,
        )
    }

    #[test]
    fn dataset_implements_the_trait_faithfully() {
        let d = toy();
        let s: &dyn DatasetStore = &d;
        assert_eq!(s.len(), 3);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.num_classes(), 2);
        assert_eq!(s.feature(1), &[0.0, 1.0]);
        assert_eq!(s.feature_rows(0, 2), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(s.contiguous_limit(0), 3);
        assert_eq!(s.contiguous_limit(2), 3);
        assert_eq!(s.shard_boundaries(), vec![0, 3]);
        assert_eq!(s.weight(0, 0.8), 1.0);
        assert_eq!(s.weight(1, 0.8), 0.8);
        assert_eq!(s.uncleaned_indices(), vec![1, 2]);
        assert_eq!(s.num_clean(), 1);
        // Residency hints are no-ops but must be callable.
        s.prefetch_rows(&[0, 2]);
        s.advise_scanned(0, 3);
    }

    #[test]
    fn to_dataset_round_trips() {
        let d = toy();
        let copy = (&d as &dyn DatasetStore).to_dataset();
        assert_eq!(copy.len(), d.len());
        for i in 0..d.len() {
            assert_eq!(copy.feature(i), d.feature(i));
            assert_eq!(copy.label(i), d.label(i));
            assert_eq!(copy.is_clean(i), d.is_clean(i));
            assert_eq!(copy.ground_truth(i), d.ground_truth(i));
        }
    }

    #[test]
    fn overlay_restores_pre_patch_state() {
        let mut d = toy();
        let mut overlay = LabelOverlay::new();
        overlay.insert(1, d.label(1).clone(), d.is_clean(1));
        overlay.insert(2, d.label(2).clone(), d.is_clean(2));
        d.clean_label(1, SoftLabel::onehot(1, 2));
        d.clean_label(2, SoftLabel::onehot(0, 2));

        let old = overlay.over(&d);
        assert_eq!(old.label(1), &SoftLabel::new(vec![0.4, 0.6]));
        assert!(!old.is_clean(1));
        assert_eq!(old.label(2), &SoftLabel::new(vec![0.2, 0.8]));
        assert!(!old.is_clean(2));
        // Unpatched samples and features read through.
        assert_eq!(old.label(0), d.label(0));
        assert_eq!(old.feature_rows(0, 3), d.feature_rows(0, 3));
        assert_eq!(old.uncleaned_indices(), vec![1, 2]);
        // The live store really is cleaned.
        assert!(d.is_clean(1) && d.is_clean(2));
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn overlay_view_rejects_mutation() {
        let d = toy();
        let overlay = LabelOverlay::new();
        let mut view = overlay.over(&d);
        view.clean_label(0, SoftLabel::onehot(0, 2));
    }
}
