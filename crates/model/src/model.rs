//! The [`Model`] trait: everything the CHEF pipeline needs from a
//! classifier.
//!
//! The sample selector (Infl/Increm-Infl), the model constructor
//! (Retrain/DeltaGrad-L) and every baseline consume models exclusively
//! through this interface. Losses/gradients here are per-sample
//! cross-entropy terms (Eq. 8) *without* regularization or γ-weighting —
//! those belong to [`crate::WeightedObjective`], which owns Eq. 1.

use crate::label::SoftLabel;
use crate::store::DatasetStore;
use chef_linalg::{vector, KernelBackend, Workspace};

/// Which kernel implementation served a batched [`Model`] call.
///
/// The batched entry points ([`Model::score_block`],
/// [`Model::hvp_block`]) report which path actually ran so the caller
/// can surface it in telemetry; [`Model::scoring_kernel`] advertises it
/// up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPath {
    /// Structure-aware closed form: block GEMMs, no per-sample gradient
    /// vectors ever materialized ([`crate::LogisticRegression`]).
    Gemm,
    /// Generic fallback looping per-sample `grad`/`class_grad`/`hvp`
    /// (any model without a closed form, e.g. [`crate::Mlp`]).
    #[default]
    PerSample,
}

impl KernelPath {
    /// Stable lowercase name used in telemetry documents.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Gemm => "gemm",
            KernelPath::PerSample => "per_sample",
        }
    }
}

/// A differentiable C-class classifier with flattened parameters `w`.
pub trait Model: Send + Sync {
    /// Total number of parameters (dimension of `w`).
    fn num_params(&self) -> usize;

    /// Number of classes `C`.
    fn num_classes(&self) -> usize;

    /// Expected feature dimension (without bias; models append their own).
    fn feature_dim(&self) -> usize;

    /// Class-probability vector `p(w, x)` into `out` (length `C`).
    fn predict_proba(&self, w: &[f64], x: &[f64], out: &mut [f64]);

    /// Cross-entropy loss `F(w, z)` of one sample (Eq. 8).
    fn loss(&self, w: &[f64], x: &[f64], y: &SoftLabel) -> f64 {
        let mut p = vec![0.0; self.num_classes()];
        self.predict_proba(w, x, &mut p);
        y.cross_entropy(&p)
    }

    /// Per-sample gradient `∇_w F(w, z)` into `out` (length
    /// `num_params()`), overwriting it.
    fn grad(&self, w: &[f64], x: &[f64], y: &SoftLabel, out: &mut [f64]);

    /// Per-sample Hessian-vector product `H(w, z) · v` into `out`,
    /// overwriting it.
    fn hvp(&self, w: &[f64], x: &[f64], y: &SoftLabel, v: &[f64], out: &mut [f64]);

    /// Per-class gradient `∇_w (−log p⁽ᶜ⁾(w, x))` — column `c` of the
    /// mixed derivative `∇_y ∇_w F` (Eq. 9).
    ///
    /// For cross-entropy this equals the ordinary gradient with a one-hot
    /// label, which is the default implementation.
    fn class_grad(&self, w: &[f64], x: &[f64], class: usize, out: &mut [f64]) {
        let y = SoftLabel::onehot(class, self.num_classes());
        self.grad(w, x, &y, out);
    }

    /// Scratch-routed [`Model::grad`]: identical result, but any
    /// per-call buffers come from `ws` instead of fresh heap
    /// allocations. Hot loops (objective reductions, influence scoring,
    /// provenance) call this; the default forwards to `grad`.
    fn grad_ws(&self, w: &[f64], x: &[f64], y: &SoftLabel, out: &mut [f64], ws: &mut Workspace) {
        let _ = ws;
        self.grad(w, x, y, out);
    }

    /// Scratch-routed [`Model::hvp`] (see [`Model::grad_ws`]).
    fn hvp_ws(
        &self,
        w: &[f64],
        x: &[f64],
        y: &SoftLabel,
        v: &[f64],
        out: &mut [f64],
        ws: &mut Workspace,
    ) {
        let _ = ws;
        self.hvp(w, x, y, v, out);
    }

    /// Scratch-routed [`Model::class_grad`] (see [`Model::grad_ws`]).
    fn class_grad_ws(
        &self,
        w: &[f64],
        x: &[f64],
        class: usize,
        out: &mut [f64],
        ws: &mut Workspace,
    ) {
        let _ = ws;
        self.class_grad(w, x, class, out);
    }

    /// Which kernel [`Model::score_block`] / [`Model::hvp_block`] will
    /// run for this model. Purely informational (telemetry); the block
    /// entry points also report it from each call.
    fn scoring_kernel(&self) -> KernelPath {
        KernelPath::PerSample
    }

    /// Which precision/ILP backend the model's GEMM panels run on.
    /// Purely informational (telemetry): only meaningful when
    /// [`Model::scoring_kernel`] is [`KernelPath::Gemm`] — the
    /// per-sample fallback has no panel kernel to select, so the default
    /// reports [`KernelBackend::Reference`].
    fn kernel_backend(&self) -> KernelBackend {
        KernelBackend::Reference
    }

    /// Batched influence dot products for a block of samples.
    ///
    /// For every `r` (indexing `block`) and class `c` this fills
    ///
    /// * `class_dots[r*C + c] = vᵀ ∇_w(−log p⁽ᶜ⁾)(w, x_r)` — the
    ///   per-class gradient dots of Eq. 9, and
    /// * `label_dots[r] = vᵀ ∇_w F(w, z_r)` — the observed-label
    ///   gradient dot driving the `(1−γ)` upweighting term of Eq. 6,
    ///
    /// without the caller ever seeing a gradient vector. The default
    /// loops the per-sample scratch-routed gradients and returns
    /// [`KernelPath::PerSample`]; structured models override it with a
    /// closed form (logistic regression: two block GEMMs then O(C) per
    /// sample) and return [`KernelPath::Gemm`]. Overrides must agree
    /// with this default to ~1e-10.
    #[allow(clippy::too_many_arguments)]
    fn score_block(
        &self,
        w: &[f64],
        data: &dyn DatasetStore,
        block: &[usize],
        v: &[f64],
        class_dots: &mut [f64],
        label_dots: &mut [f64],
        ws: &mut Workspace,
    ) -> KernelPath {
        let c = self.num_classes();
        debug_assert_eq!(class_dots.len(), block.len() * c);
        debug_assert_eq!(label_dots.len(), block.len());
        let mut g = ws.take(self.num_params());
        for (r, &i) in block.iter().enumerate() {
            let x = data.feature(i);
            for k in 0..c {
                self.class_grad_ws(w, x, k, &mut g, ws);
                class_dots[r * c + k] = vector::dot(v, &g);
            }
            self.grad_ws(w, x, data.label(i), &mut g, ws);
            label_dots[r] = vector::dot(v, &g);
        }
        ws.put(g);
        KernelPath::PerSample
    }

    /// Batched weighted gradient over an index set: overwrites `out`
    /// with `Σ_{i∈batch} γ_{z_i} ∇_w F(w, z_i)` — the raw weighted sum,
    /// with no `1/|batch|` normalization and no L2 term (both belong to
    /// [`crate::WeightedObjective`], which is the caller). This is the
    /// minibatch-SGD / DeltaGrad-replay twin of [`Model::hvp_block`]:
    /// the default loops per-sample [`Model::grad_ws`] and returns
    /// [`KernelPath::PerSample`]; structured models override it with a
    /// blocked closed form (logistic regression: one `B×C` probability
    /// panel, then `C` axpys per sample — the `Xᵀ·P̃` accumulation) and
    /// return [`KernelPath::Gemm`]. Overrides must agree with this
    /// default to ~1e-10.
    fn grad_block(
        &self,
        w: &[f64],
        data: &dyn DatasetStore,
        batch: &[usize],
        gamma: f64,
        out: &mut [f64],
        ws: &mut Workspace,
    ) -> KernelPath {
        out.fill(0.0);
        let mut g = ws.take(self.num_params());
        for &i in batch {
            self.grad_ws(w, data.feature(i), data.label(i), &mut g, ws);
            vector::axpy(data.weight(i, gamma), &g, out);
        }
        ws.put(g);
        KernelPath::PerSample
    }

    /// Batched weighted Hessian-vector product over an index set:
    /// overwrites `out` with `Σ_{i∈batch} γ_{z_i} H(w, z_i) v` — the raw
    /// weighted sum, with no `1/|batch|` normalization and no L2 term
    /// (both belong to [`crate::WeightedObjective`], which is the
    /// caller). The default loops per-sample [`Model::hvp_ws`];
    /// structured models override it with a blocked closed form.
    /// Overrides must agree with this default to ~1e-10.
    #[allow(clippy::too_many_arguments)]
    fn hvp_block(
        &self,
        w: &[f64],
        data: &dyn DatasetStore,
        batch: &[usize],
        gamma: f64,
        v: &[f64],
        out: &mut [f64],
        ws: &mut Workspace,
    ) -> KernelPath {
        out.fill(0.0);
        let mut h = ws.take(self.num_params());
        for &i in batch {
            self.hvp_ws(w, data.feature(i), data.label(i), v, &mut h, ws);
            vector::axpy(data.weight(i, gamma), &h, out);
        }
        ws.put(h);
        KernelPath::PerSample
    }

    /// Spectral norm of the per-sample cross-entropy Hessian
    /// `‖H(w, z)‖₂` (pre-computed as provenance by Increm-Infl,
    /// Appendix D).
    fn hessian_norm(&self, w: &[f64], x: &[f64], y: &SoftLabel) -> f64;

    /// Spectral norm of the per-class Hessian
    /// `‖−∇²_w log p⁽ʲ⁾(w, x)‖₂` (Theorem 1).
    ///
    /// For softmax cross-entropy `−log p⁽ʲ⁾ = −w_jᵀx̃ + logsumexp(Wx̃)`,
    /// whose Hessian is the logsumexp Hessian — identical for every class —
    /// so the default forwards to [`Model::hessian_norm`] with an
    /// arbitrary one-hot label (the CE Hessian is label-independent for
    /// the models in this crate).
    fn class_hessian_norm(&self, w: &[f64], x: &[f64], _class: usize) -> f64 {
        self.hessian_norm(w, x, &SoftLabel::onehot(0, self.num_classes()))
    }

    /// Initial parameter vector for training. Convex models start at
    /// zero; non-convex models must break symmetry (seeded).
    fn initial_params(&self, seed: u64) -> Vec<f64> {
        let _ = seed;
        vec![0.0; self.num_params()]
    }

    /// Convenience: probability vector as a fresh `Vec`.
    fn predict(&self, w: &[f64], x: &[f64]) -> Vec<f64> {
        let mut p = vec![0.0; self.num_classes()];
        self.predict_proba(w, x, &mut p);
        p
    }

    /// Convenience: predicted class (argmax probability).
    fn predict_class(&self, w: &[f64], x: &[f64]) -> usize {
        chef_linalg::vector::argmax(&self.predict(w, x))
    }
}

/// Finite-difference gradient check helper shared by model tests.
///
/// Returns the maximum absolute difference between `grad` and a central
/// finite difference of `loss` over all coordinates.
pub fn grad_check<M: Model + ?Sized>(
    model: &M,
    w: &[f64],
    x: &[f64],
    y: &SoftLabel,
    eps: f64,
) -> f64 {
    let mut g = vec![0.0; model.num_params()];
    model.grad(w, x, y, &mut g);
    let mut wbuf = w.to_vec();
    let mut max_err = 0.0f64;
    for i in 0..w.len() {
        wbuf[i] = w[i] + eps;
        let lp = model.loss(&wbuf, x, y);
        wbuf[i] = w[i] - eps;
        let lm = model.loss(&wbuf, x, y);
        wbuf[i] = w[i];
        let fd = (lp - lm) / (2.0 * eps);
        max_err = max_err.max((fd - g[i]).abs());
    }
    max_err
}

/// Finite-difference Hessian-vector-product check helper.
///
/// Compares `hvp` against `(∇F(w+εv) − ∇F(w−εv)) / 2ε`.
pub fn hvp_check<M: Model + ?Sized>(
    model: &M,
    w: &[f64],
    x: &[f64],
    y: &SoftLabel,
    v: &[f64],
    eps: f64,
) -> f64 {
    let m = model.num_params();
    let mut hv = vec![0.0; m];
    model.hvp(w, x, y, v, &mut hv);
    let wp: Vec<f64> = w.iter().zip(v).map(|(wi, vi)| wi + eps * vi).collect();
    let wm: Vec<f64> = w.iter().zip(v).map(|(wi, vi)| wi - eps * vi).collect();
    let mut gp = vec![0.0; m];
    let mut gm = vec![0.0; m];
    model.grad(&wp, x, y, &mut gp);
    model.grad(&wm, x, y, &mut gm);
    let mut max_err = 0.0f64;
    for i in 0..m {
        let fd = (gp[i] - gm[i]) / (2.0 * eps);
        max_err = max_err.max((fd - hv[i]).abs());
    }
    max_err
}
