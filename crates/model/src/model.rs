//! The [`Model`] trait: everything the CHEF pipeline needs from a
//! classifier.
//!
//! The sample selector (Infl/Increm-Infl), the model constructor
//! (Retrain/DeltaGrad-L) and every baseline consume models exclusively
//! through this interface. Losses/gradients here are per-sample
//! cross-entropy terms (Eq. 8) *without* regularization or γ-weighting —
//! those belong to [`crate::WeightedObjective`], which owns Eq. 1.

use crate::label::SoftLabel;

/// A differentiable C-class classifier with flattened parameters `w`.
pub trait Model: Send + Sync {
    /// Total number of parameters (dimension of `w`).
    fn num_params(&self) -> usize;

    /// Number of classes `C`.
    fn num_classes(&self) -> usize;

    /// Expected feature dimension (without bias; models append their own).
    fn feature_dim(&self) -> usize;

    /// Class-probability vector `p(w, x)` into `out` (length `C`).
    fn predict_proba(&self, w: &[f64], x: &[f64], out: &mut [f64]);

    /// Cross-entropy loss `F(w, z)` of one sample (Eq. 8).
    fn loss(&self, w: &[f64], x: &[f64], y: &SoftLabel) -> f64 {
        let mut p = vec![0.0; self.num_classes()];
        self.predict_proba(w, x, &mut p);
        y.cross_entropy(&p)
    }

    /// Per-sample gradient `∇_w F(w, z)` into `out` (length
    /// `num_params()`), overwriting it.
    fn grad(&self, w: &[f64], x: &[f64], y: &SoftLabel, out: &mut [f64]);

    /// Per-sample Hessian-vector product `H(w, z) · v` into `out`,
    /// overwriting it.
    fn hvp(&self, w: &[f64], x: &[f64], y: &SoftLabel, v: &[f64], out: &mut [f64]);

    /// Per-class gradient `∇_w (−log p⁽ᶜ⁾(w, x))` — column `c` of the
    /// mixed derivative `∇_y ∇_w F` (Eq. 9).
    ///
    /// For cross-entropy this equals the ordinary gradient with a one-hot
    /// label, which is the default implementation.
    fn class_grad(&self, w: &[f64], x: &[f64], class: usize, out: &mut [f64]) {
        let y = SoftLabel::onehot(class, self.num_classes());
        self.grad(w, x, &y, out);
    }

    /// Spectral norm of the per-sample cross-entropy Hessian
    /// `‖H(w, z)‖₂` (pre-computed as provenance by Increm-Infl,
    /// Appendix D).
    fn hessian_norm(&self, w: &[f64], x: &[f64], y: &SoftLabel) -> f64;

    /// Spectral norm of the per-class Hessian
    /// `‖−∇²_w log p⁽ʲ⁾(w, x)‖₂` (Theorem 1).
    ///
    /// For softmax cross-entropy `−log p⁽ʲ⁾ = −w_jᵀx̃ + logsumexp(Wx̃)`,
    /// whose Hessian is the logsumexp Hessian — identical for every class —
    /// so the default forwards to [`Model::hessian_norm`] with an
    /// arbitrary one-hot label (the CE Hessian is label-independent for
    /// the models in this crate).
    fn class_hessian_norm(&self, w: &[f64], x: &[f64], _class: usize) -> f64 {
        self.hessian_norm(w, x, &SoftLabel::onehot(0, self.num_classes()))
    }

    /// Initial parameter vector for training. Convex models start at
    /// zero; non-convex models must break symmetry (seeded).
    fn initial_params(&self, seed: u64) -> Vec<f64> {
        let _ = seed;
        vec![0.0; self.num_params()]
    }

    /// Convenience: probability vector as a fresh `Vec`.
    fn predict(&self, w: &[f64], x: &[f64]) -> Vec<f64> {
        let mut p = vec![0.0; self.num_classes()];
        self.predict_proba(w, x, &mut p);
        p
    }

    /// Convenience: predicted class (argmax probability).
    fn predict_class(&self, w: &[f64], x: &[f64]) -> usize {
        chef_linalg::vector::argmax(&self.predict(w, x))
    }
}

/// Finite-difference gradient check helper shared by model tests.
///
/// Returns the maximum absolute difference between `grad` and a central
/// finite difference of `loss` over all coordinates.
pub fn grad_check<M: Model + ?Sized>(
    model: &M,
    w: &[f64],
    x: &[f64],
    y: &SoftLabel,
    eps: f64,
) -> f64 {
    let mut g = vec![0.0; model.num_params()];
    model.grad(w, x, y, &mut g);
    let mut wbuf = w.to_vec();
    let mut max_err = 0.0f64;
    for i in 0..w.len() {
        wbuf[i] = w[i] + eps;
        let lp = model.loss(&wbuf, x, y);
        wbuf[i] = w[i] - eps;
        let lm = model.loss(&wbuf, x, y);
        wbuf[i] = w[i];
        let fd = (lp - lm) / (2.0 * eps);
        max_err = max_err.max((fd - g[i]).abs());
    }
    max_err
}

/// Finite-difference Hessian-vector-product check helper.
///
/// Compares `hvp` against `(∇F(w+εv) − ∇F(w−εv)) / 2ε`.
pub fn hvp_check<M: Model + ?Sized>(
    model: &M,
    w: &[f64],
    x: &[f64],
    y: &SoftLabel,
    v: &[f64],
    eps: f64,
) -> f64 {
    let m = model.num_params();
    let mut hv = vec![0.0; m];
    model.hvp(w, x, y, v, &mut hv);
    let wp: Vec<f64> = w.iter().zip(v).map(|(wi, vi)| wi + eps * vi).collect();
    let wm: Vec<f64> = w.iter().zip(v).map(|(wi, vi)| wi - eps * vi).collect();
    let mut gp = vec![0.0; m];
    let mut gm = vec![0.0; m];
    model.grad(&wp, x, y, &mut gp);
    model.grad(&wm, x, y, &mut gm);
    let mut max_err = 0.0f64;
    for i in 0..m {
        let fd = (gp[i] - gm[i]) / (2.0 * eps);
        max_err = max_err.max((fd - hv[i]).abs());
    }
    max_err
}
