//! # chef-model
//!
//! Model substrate for the CHEF label-cleaning pipeline.
//!
//! This crate provides the pieces of §3 of the paper that sit *below* the
//! contribution itself:
//!
//! * [`SoftLabel`] — probabilistic label vectors (the output of weak
//!   supervision) with the one-hot / `δ_y` helpers that Infl needs,
//! * [`Dataset`] — training data `Z = Z_d ∪ Z_p` holding features, labels,
//!   clean/uncleaned flags and ground truth for simulation,
//! * the [`Model`] trait — everything CHEF requires of a classifier:
//!   per-sample losses, gradients, Hessian-vector products, per-class
//!   gradients `−∇_w log p⁽ᶜ⁾` (paper Eq. 9) and Hessian norms, plus
//!   batched block entry points (`score_block`/`hvp_block`) that
//!   structured models back with GEMM kernels ([`KernelPath`] reports
//!   which implementation ran),
//! * [`LogisticRegression`] — the paper's μ-strongly-convex model class
//!   (softmax regression with L2), with exact closed forms throughout,
//! * [`Mlp`] — a small neural network with manual backprop used to
//!   reproduce the Appendix G.2 "CNN" experiments,
//! * [`WeightedObjective`] — the weighted objective of Eq. 1, gluing a
//!   model, a dataset, the uncleaned-sample weight γ and L2 strength λ
//!   into full-dataset losses/gradients/HVPs (exposed to the CG solver as
//!   a [`chef_linalg::LinearOperator`]),
//! * [`DatasetStore`] — the storage-agnostic access surface those pieces
//!   actually consume; [`Dataset`] is its in-memory impl and `chef-data`
//!   provides a memory-mapped sharded one (DESIGN.md §15).

#![warn(missing_docs)]

pub mod dataset;
pub mod label;
pub mod logreg;
pub mod mlp;
pub mod model;
pub mod objective;
pub mod store;

pub use chef_linalg::KernelBackend;
pub use dataset::Dataset;
pub use label::SoftLabel;
pub use logreg::LogisticRegression;
pub use mlp::Mlp;
pub use model::{KernelPath, Model};
pub use objective::{HessianOperator, WeightedObjective, PAR_GRAIN};
pub use store::{DatasetStore, LabelOverlay, OverlayView, StoreIoStats};
