//! Probabilistic ("weak") labels.
//!
//! The paper represents the label of an uncleaned sample as a probability
//! vector of length C (§3.1). Cleaning replaces it with a one-hot vector;
//! the difference `δ_y = onehot(c) − ỹ` is the label perturbation that
//! drives the Infl influence score (Eq. 6) and the Increm-Infl bounds
//! (Theorem 1).

use chef_linalg::vector;

/// A probability vector over `C` classes.
///
/// Invariants (enforced by the constructors): entries are finite,
/// non-negative, and sum to 1 within `1e-6`.
///
/// ```
/// use chef_model::SoftLabel;
///
/// let weak = SoftLabel::new(vec![0.3, 0.7]);
/// assert_eq!(weak.argmax(), 1);
/// assert!(!weak.is_deterministic());
/// // The label perturbation Infl scores (δ_y = onehot(c) − ỹ):
/// let delta = weak.delta_to(0);
/// assert!((delta[0] - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SoftLabel {
    probs: Vec<f64>,
}

impl SoftLabel {
    /// Build from raw probabilities.
    ///
    /// # Panics
    /// Panics if the vector is empty, has negative/non-finite entries, or
    /// does not sum to 1 within `1e-6`.
    pub fn new(probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "SoftLabel: empty probability vector");
        let mut sum = 0.0;
        for &p in &probs {
            assert!(p.is_finite() && p >= 0.0, "SoftLabel: invalid entry {p}");
            sum += p;
        }
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "SoftLabel: probabilities sum to {sum}, expected 1"
        );
        Self { probs }
    }

    /// Build from probabilities already known to form a valid
    /// distribution — e.g. decoded from a checksummed store sidecar
    /// whose bytes were written from validated `SoftLabel`s in the
    /// first place.
    ///
    /// Release builds skip the per-entry validation scan (debug builds
    /// still run it), which matters when a cold open decodes millions
    /// of rows. Callers must guarantee the invariant themselves; for
    /// anything not provenance-checked, use [`SoftLabel::new`].
    pub fn from_verified(probs: Vec<f64>) -> Self {
        if cfg!(debug_assertions) {
            Self::new(probs)
        } else {
            Self { probs }
        }
    }

    /// Build from arbitrary non-negative weights, normalizing to sum 1.
    ///
    /// # Panics
    /// Panics if all weights are zero or any is negative/non-finite.
    pub fn from_weights(weights: &[f64]) -> Self {
        let sum: f64 = weights.iter().sum();
        assert!(
            sum > 0.0 && sum.is_finite(),
            "SoftLabel::from_weights: weights sum to {sum}"
        );
        Self::new(weights.iter().map(|w| w / sum).collect())
    }

    /// One-hot (deterministic) label for `class` out of `num_classes`.
    ///
    /// # Panics
    /// Panics if `class >= num_classes`.
    pub fn onehot(class: usize, num_classes: usize) -> Self {
        assert!(
            class < num_classes,
            "SoftLabel::onehot: class {class} out of {num_classes}"
        );
        let mut probs = vec![0.0; num_classes];
        probs[class] = 1.0;
        Self { probs }
    }

    /// Uniform label (maximal uncertainty).
    pub fn uniform(num_classes: usize) -> Self {
        assert!(num_classes > 0, "SoftLabel::uniform: zero classes");
        Self {
            probs: vec![1.0 / num_classes as f64; num_classes],
        }
    }

    /// Number of classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.probs.len()
    }

    /// Borrow the probability vector.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability of class `c`.
    #[inline]
    pub fn prob(&self, c: usize) -> f64 {
        self.probs[c]
    }

    /// Most likely class (first on ties).
    pub fn argmax(&self) -> usize {
        vector::argmax(&self.probs)
    }

    /// Whether some class has probability ≥ `1 − 1e-9` (a deterministic
    /// label in the paper's sense).
    pub fn is_deterministic(&self) -> bool {
        self.probs.iter().any(|&p| p >= 1.0 - 1e-9)
    }

    /// Shannon entropy in nats. 0 for one-hot labels, `ln C` for uniform.
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }

    /// Label perturbation `δ_y = onehot(class) − ỹ` (paper Algorithm 1,
    /// line 2).
    pub fn delta_to(&self, class: usize) -> Vec<f64> {
        assert!(class < self.num_classes());
        self.probs
            .iter()
            .enumerate()
            .map(|(k, &p)| if k == class { 1.0 - p } else { -p })
            .collect()
    }

    /// Round to the nearest deterministic label (used for the TARS
    /// comparison, paper Appendix G.3).
    pub fn rounded(&self) -> Self {
        Self::onehot(self.argmax(), self.num_classes())
    }

    /// Cross-entropy of a prediction `p` against this label (Eq. 8):
    /// `−Σ_k ỹ⁽ᵏ⁾ log p⁽ᵏ⁾`, clamping probabilities away from zero for
    /// numerical safety.
    pub fn cross_entropy(&self, prediction: &[f64]) -> f64 {
        debug_assert_eq!(prediction.len(), self.num_classes());
        -self
            .probs
            .iter()
            .zip(prediction)
            .filter(|(&y, _)| y > 0.0)
            .map(|(&y, &p)| y * p.max(1e-300).ln())
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onehot_is_deterministic() {
        let l = SoftLabel::onehot(1, 3);
        assert_eq!(l.probs(), &[0.0, 1.0, 0.0]);
        assert!(l.is_deterministic());
        assert_eq!(l.argmax(), 1);
        assert_eq!(l.entropy(), 0.0);
    }

    #[test]
    fn uniform_has_max_entropy() {
        let l = SoftLabel::uniform(4);
        assert!(!l.is_deterministic());
        assert!((l.entropy() - 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn from_weights_normalizes() {
        let l = SoftLabel::from_weights(&[2.0, 2.0]);
        assert_eq!(l.probs(), &[0.5, 0.5]);
    }

    #[test]
    fn delta_sums_to_zero() {
        let l = SoftLabel::new(vec![0.3, 0.7]);
        let d = l.delta_to(0);
        assert!((d[0] - 0.7).abs() < 1e-12);
        assert!((d[1] + 0.7).abs() < 1e-12);
        assert!((d.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn delta_to_own_argmax_of_onehot_is_zero() {
        let l = SoftLabel::onehot(2, 4);
        assert!(l.delta_to(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rounding() {
        let l = SoftLabel::new(vec![0.4, 0.6]);
        assert_eq!(l.rounded(), SoftLabel::onehot(1, 2));
    }

    #[test]
    fn cross_entropy_against_itself_is_entropy() {
        let l = SoftLabel::new(vec![0.25, 0.75]);
        assert!((l.cross_entropy(l.probs()) - l.entropy()).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_zero() {
        let l = SoftLabel::onehot(0, 2);
        assert!(l.cross_entropy(&[1.0, 0.0]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn rejects_unnormalized() {
        let _ = SoftLabel::new(vec![0.5, 0.6]);
    }

    #[test]
    #[should_panic(expected = "invalid entry")]
    fn rejects_negative() {
        let _ = SoftLabel::new(vec![-0.1, 1.1]);
    }
}
